//! SQL conformance of the engine substrate through the public facade:
//! golden outputs for a battery of statements across the function library.

use soft_repro::engine::{Engine, ExecOutcome};

fn engine() -> Engine {
    Engine::with_default_functions(Default::default())
}

/// Executes `sql` and returns the rendered scalar result.
fn scalar(e: &mut Engine, sql: &str) -> String {
    match e.execute(sql) {
        ExecOutcome::Rows(rs) => rs
            .scalar()
            .unwrap_or_else(|| panic!("{sql}: not scalar: {rs:?}"))
            .render(),
        other => panic!("{sql}: unexpected outcome {other:?}"),
    }
}

#[test]
fn string_function_golden_outputs() {
    let mut e = engine();
    for (sql, want) in [
        ("SELECT LENGTH('hello')", "5"),
        ("SELECT CHAR_LENGTH('héllo')", "5"),
        ("SELECT UPPER('mixed Case')", "MIXED CASE"),
        ("SELECT LOWER('MIXED Case')", "mixed case"),
        ("SELECT INITCAP('hello world')", "Hello World"),
        ("SELECT CONCAT('a', 'b', 'c')", "abc"),
        ("SELECT CONCAT_WS('-', 'a', NULL, 'b')", "a-b"),
        ("SELECT SUBSTR('abcdef', 2, 3)", "bcd"),
        ("SELECT SUBSTR('abcdef', -2)", "ef"),
        ("SELECT SUBSTR('abcdef', 0)", ""),
        ("SELECT LEFT('abcdef', 2)", "ab"),
        ("SELECT RIGHT('abcdef', 2)", "ef"),
        ("SELECT LPAD('5', 3, '0')", "005"),
        ("SELECT RPAD('5', 3, '0')", "500"),
        ("SELECT TRIM('  x  ')", "x"),
        ("SELECT REPLACE('banana', 'na', 'NA')", "baNANA"),
        ("SELECT REPEAT('ab', 3)", "ababab"),
        ("SELECT REVERSE('abc')", "cba"),
        ("SELECT POSITION('c', 'abc')", "3"),
        ("SELECT INSTR('abc', 'z')", "0"),
        ("SELECT LOCATE('a', 'banana', 3)", "4"),
        ("SELECT ASCII('A')", "65"),
        ("SELECT CHR(66)", "B"),
        ("SELECT HEX(255)", "FF"),
        ("SELECT SOUNDEX('Robert')", "R163"),
        ("SELECT SPACE(3)", "   "),
        ("SELECT STRCMP('a', 'b')", "-1"),
        ("SELECT FIELD('b', 'a', 'b', 'c')", "2"),
        ("SELECT ELT(2, 'x', 'y')", "y"),
        ("SELECT FIND_IN_SET('b', 'a,b,c')", "2"),
        ("SELECT SPLIT_PART('a,b,c', ',', 2)", "b"),
        ("SELECT SPLIT_PART('a,b,c', ',', -1)", "c"),
        ("SELECT TRANSLATE('abcd', 'bd', 'BD')", "aBcD"),
        ("SELECT STARTS_WITH('abc', 'ab')", "1"),
        ("SELECT TO_BASE64('abc')", "YWJj"),
        ("SELECT INSERT('Quadratic', 3, 4, 'What')", "QuWhattic"),
        ("SELECT FORMAT(1234567.891, 2)", "1,234,567.89"),
        ("SELECT QUOTE('it''s')", "'it''s'"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
}

#[test]
fn regex_function_golden_outputs() {
    let mut e = engine();
    for (sql, want) in [
        ("SELECT REGEXP_LIKE('abc123', '[0-9]+')", "1"),
        ("SELECT REGEXP_LIKE('abc', '^z')", "0"),
        ("SELECT REGEXP_SUBSTR('abc123def', '[0-9]+')", "123"),
        ("SELECT REGEXP_INSTR('abc123', '[0-9]')", "4"),
        ("SELECT REGEXP_REPLACE('a1b22c', '[0-9]+', '#')", "a#b#c"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
    // Invalid patterns error; enormous bounds are rejected (CVE-2016-0773's
    // guarded behaviour).
    assert!(matches!(
        e.execute("SELECT REGEXP_LIKE('x', '(')"),
        ExecOutcome::Error(_)
    ));
    assert!(matches!(
        e.execute("SELECT REGEXP_LIKE('x', 'a{999999999}')"),
        ExecOutcome::Error(_)
    ));
}

#[test]
fn math_function_golden_outputs() {
    let mut e = engine();
    for (sql, want) in [
        ("SELECT ABS(-5)", "5"),
        ("SELECT ABS(-1.25)", "1.25"),
        ("SELECT CEIL(1.2)", "2"),
        ("SELECT FLOOR(-1.2)", "-2"),
        ("SELECT ROUND(2.567, 2)", "2.57"),
        ("SELECT TRUNCATE(2.567, 2)", "2.56"),
        ("SELECT MOD(10, 3)", "1"),
        ("SELECT MOD(10, 0)", "NULL"),
        ("SELECT SIGN(-3.5)", "-1"),
        ("SELECT GREATEST(1, 9, 4)", "9"),
        ("SELECT LEAST(1, 9, 4)", "1"),
        ("SELECT GREATEST(1, NULL, 4)", "NULL"),
        ("SELECT DIV(17, 5)", "3"),
        ("SELECT GCD(12, 18)", "6"),
        ("SELECT LCM(4, 6)", "12"),
        ("SELECT FACTORIAL(5)", "120"),
        ("SELECT BIT_COUNT(7)", "3"),
        ("SELECT LN(0)", "NULL"),
        ("SELECT SQRT(-1)", "NULL"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
}

#[test]
fn datetime_function_golden_outputs() {
    let mut e = engine();
    for (sql, want) in [
        ("SELECT YEAR('2024-02-29')", "2024"),
        ("SELECT MONTH('2024-02-29')", "2"),
        ("SELECT DAY('2024-02-29')", "29"),
        ("SELECT DAYOFWEEK('2024-02-29')", "5"), // Thursday, MySQL 1=Sunday
        ("SELECT WEEKDAY('2024-02-29')", "3"),   // Thursday, 0=Monday
        ("SELECT DAYNAME('2024-02-29')", "Thursday"),
        ("SELECT MONTHNAME('2024-02-29')", "February"),
        ("SELECT QUARTER('2024-02-29')", "1"),
        ("SELECT LAST_DAY('2024-02-01')", "2024-02-29"),
        ("SELECT DATEDIFF('2024-03-01', '2024-02-01')", "29"),
        ("SELECT DATE_ADD('2024-01-31', INTERVAL 1 MONTH)", "2024-02-29"),
        ("SELECT DATE_SUB('2024-03-01', INTERVAL 1 DAY)", "2024-02-29"),
        ("SELECT MAKEDATE(2024, 60)", "2024-02-29"),
        ("SELECT MAKETIME(12, 30, 45)", "12:30:45"),
        ("SELECT SEC_TO_TIME(3661)", "01:01:01"),
        ("SELECT TIME_TO_SEC('01:01:01')", "3661"),
        ("SELECT PERIOD_ADD(202401, 2)", "202403"),
        ("SELECT PERIOD_DIFF(202403, 202401)", "2"),
        ("SELECT DATE_FORMAT('2024-02-29', '%Y/%m/%d')", "2024/02/29"),
        ("SELECT STR_TO_DATE('29-02-2024', '%d-%m-%Y')", "2024-02-29"),
        ("SELECT TIMESTAMPDIFF('DAY', '2024-02-01', '2024-03-01')", "29"),
        ("SELECT DATEDIFF(DATE '2024-01-02', DATE '2024-01-01')", "1"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
    // Invalid dates surface as errors/NULLs, never panics.
    assert!(matches!(
        e.execute("SELECT YEAR('2023-02-29')"),
        ExecOutcome::Error(_)
    ));
}

#[test]
fn json_function_golden_outputs() {
    let mut e = engine();
    for (sql, want) in [
        ("SELECT JSON_VALID('{\"a\": 1}')", "1"),
        ("SELECT JSON_VALID('{oops')", "0"),
        ("SELECT JSON_LENGTH('[1, 2, 3]')", "3"),
        ("SELECT JSON_LENGTH('{\"a\":1,\"b\":2}')", "2"),
        ("SELECT JSON_DEPTH('[[1]]')", "3"),
        ("SELECT JSON_TYPE('[1]')", "ARRAY"),
        ("SELECT JSON_EXTRACT('{\"a\": {\"b\": 7}}', '$.a.b')", "7"),
        ("SELECT JSON_KEYS('{\"x\":1,\"y\":2}')", "[\"x\",\"y\"]"),
        ("SELECT JSON_ARRAY(1, 'two')", "[1,\"two\"]"),
        ("SELECT JSON_OBJECT('k', 5)", "{\"k\":5}"),
        ("SELECT JSON_QUOTE('a\"b')", "\"a\\\"b\""),
        ("SELECT JSON_UNQUOTE('\"abc\"')", "abc"),
        ("SELECT JSON_CONTAINS('[1,2]', '2')", "1"),
        ("SELECT JSON_MERGE('[1]', '[2]')", "[1,2]"),
        ("SELECT JSON_SET('{\"a\":1}', '$.a', 9)", "{\"a\":9}"),
        ("SELECT JSON_REMOVE('{\"a\":1,\"b\":2}', '$.a')", "{\"b\":2}"),
        ("SELECT JSON_SEARCH('[\"x\",\"y\"]', 'one', 'y')", "$[1]"),
        ("SELECT COLUMN_JSON(COLUMN_CREATE('n', 42))", "{\"n\":42}"),
        ("SELECT COLUMN_GET(COLUMN_CREATE('n', 42), 'n')", "42"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
}

#[test]
fn xml_and_spatial_golden_outputs() {
    let mut e = engine();
    for (sql, want) in [
        ("SELECT ExtractValue('<a><b>text</b></a>', '/a/b')", "text"),
        (
            "SELECT UpdateXML('<a><c></c></a>', '/a/c[1]', '<b></b>')",
            "<a><b/></a>",
        ),
        ("SELECT XML_VALID('<a><b/></a>')", "1"),
        ("SELECT XML_VALID('<a>')", "0"),
        ("SELECT ST_ASTEXT(ST_GEOMFROMTEXT('POINT(1 2)'))", "POINT(1 2)"),
        ("SELECT ST_X(POINT(3.5, 4.5))", "3.5"),
        ("SELECT ST_DIMENSION(ST_GEOMFROMTEXT('POLYGON((0 0,1 0,1 1,0 0))'))", "2"),
        ("SELECT ST_NUMPOINTS(ST_GEOMFROMTEXT('LINESTRING(0 0,1 1,2 2)'))", "3"),
        ("SELECT ST_LENGTH(ST_GEOMFROMTEXT('LINESTRING(0 0,3 4)'))", "5"),
        (
            "SELECT ST_ASTEXT(BOUNDARY(ST_GEOMFROMTEXT('LINESTRING(0 0,5 5)')))",
            "GEOMETRYCOLLECTION(POINT(0 0),POINT(5 5))",
        ),
        ("SELECT INET_NTOA(INET_ATON('192.168.1.1'))", "192.168.1.1"),
        ("SELECT INET6_NTOA(INET6_ATON('2001:db8::1'))", "2001:db8::1"),
        ("SELECT IS_IPV4('10.0.0.1')", "1"),
        ("SELECT IS_IPV6('10.0.0.1')", "0"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
}

#[test]
fn container_function_golden_outputs() {
    let mut e = engine();
    for (sql, want) in [
        ("SELECT ARRAY_LENGTH([1, 2, 3])", "3"),
        ("SELECT ELEMENT_AT([10, 20, 30], 2)", "20"),
        ("SELECT ELEMENT_AT([10, 20, 30], -1)", "30"),
        ("SELECT ELEMENT_AT([10], 5)", "NULL"),
        ("SELECT ARRAY_CONCAT([1], [2, 3])", "[1, 2, 3]"),
        ("SELECT ARRAY_SLICE([1, 2, 3, 4], 2, 3)", "[2, 3]"),
        ("SELECT ARRAY_CONTAINS([1, 2], 2)", "1"),
        ("SELECT ARRAY_POSITION([5, 6], 6)", "2"),
        ("SELECT ARRAY_DISTINCT([1, 1, 2])", "[1, 2]"),
        ("SELECT ARRAY_SORT([3, 1, 2])", "[1, 2, 3]"),
        ("SELECT ARRAY_MIN([3, 1, 2])", "1"),
        ("SELECT ARRAY_SUM([1, 2, 3])", "6"),
        ("SELECT CARDINALITY(MAP('a', 1, 'b', 2))", "2"),
        ("SELECT MAP_KEYS(MAP('a', 1))", "[a]"),
        ("SELECT MAP_CONTAINS_KEY(MAP('a', 1), 'a')", "1"),
        ("SELECT ELEMENT_AT(MAP('k', 9), 'k')", "9"),
        ("SELECT LIST_VALUE(1, 'x')", "[1, x]"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
}

#[test]
fn aggregate_golden_outputs() {
    let mut e = engine();
    e.execute("CREATE TABLE n (v INTEGER)");
    e.execute("INSERT INTO n VALUES (1), (2), (3), (4), (NULL)");
    for (sql, want) in [
        ("SELECT COUNT(*) FROM n", "5"),
        ("SELECT COUNT(v) FROM n", "4"),
        ("SELECT SUM(v) FROM n", "10"),
        ("SELECT AVG(v) FROM n", "2.5000"),
        ("SELECT MIN(v) FROM n", "1"),
        ("SELECT MAX(v) FROM n", "4"),
        ("SELECT GROUP_CONCAT(v) FROM n", "1,2,3,4"),
        ("SELECT BIT_OR(v) FROM n", "7"),
        ("SELECT BIT_AND(v) FROM n", "0"),
        ("SELECT BIT_XOR(v) FROM n", "4"),
        ("SELECT MEDIAN(v) FROM n", "2.5"),
        ("SELECT VAR_POP(v) FROM n", "1.25"),
        ("SELECT BOOL_AND(v) FROM n", "1"),
        ("SELECT ARRAY_AGG(v) FROM n", "[1, 2, 3, 4, NULL]"),
        ("SELECT JSON_ARRAYAGG(v) FROM n", "[1,2,3,4,null]"),
        ("SELECT JSON_OBJECTAGG(v, v) FROM n WHERE v < 3", "{\"1\":1,\"2\":2}"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
}

#[test]
fn casting_and_condition_golden_outputs() {
    let mut e = engine();
    for (sql, want) in [
        ("SELECT CAST('42abc' AS INTEGER)", "42"),
        ("SELECT CAST(3.99 AS INTEGER)", "3"),
        ("SELECT '5'::DOUBLE + 0.5", "5.5"),
        ("SELECT toDecimalString(1.25, 4)", "1.2500"),
        ("SELECT TRY_CAST('nope', 'INTEGER')", "0"),
        ("SELECT IF(1 > 2, 'a', 'b')", "b"),
        ("SELECT IFNULL(NULL, 7)", "7"),
        ("SELECT NULLIF(3, 3)", "NULL"),
        ("SELECT COALESCE(NULL, NULL, 9)", "9"),
        ("SELECT INTERVAL(5, 1, 3, 7)", "2"),
        ("SELECT DECODE(2, 1, 'one', 2, 'two', 'other')", "two"),
        ("SELECT NVL2(NULL, 'a', 'b')", "b"),
        ("SELECT TYPEOF(1.5)", "DECIMAL"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
}

#[test]
fn nested_paper_style_chains() {
    let mut e = engine();
    for (sql, want) in [
        // The Listing 10 shape on valid JSON.
        ("SELECT JSON_LENGTH(CONCAT(REPEAT('[1,', 3), '1', REPEAT(']', 3)), '$[0]')", "1"),
        // Nested casting chain.
        ("SELECT LENGTH(CAST(CAST(12345 AS TEXT) AS BINARY))", "5"),
        // Nested date chain.
        ("SELECT YEAR(DATE_ADD('2023-12-31', INTERVAL 1 DAY))", "2024"),
        // INET chain into text.
        ("SELECT LENGTH(INET6_ATON('255.255.255.255'))", "4"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
}
