//! Cross-dialect differential suite: the shared seed corpus against all
//! seven dialect profiles.
//!
//! The seven simulated targets share one engine implementation, so the
//! shared seed queries act as a PQS-style oracle: they must be crash-free
//! everywhere, classify identically across repeated runs, and — on the
//! fault-free build — evaluate to the same rows on every dialect that
//! accepts them. Catalog agreement pins the aliasing layer: a name exposed
//! by all seven registries must resolve to the same canonical definition.

use soft_repro::dialects::seeds::{SHARED_PREP, SHARED_QUERIES};
use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::engine::{Engine, ExecOutcome};

/// How a statement's outcome is bucketed for differential comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Class {
    /// Ran to completion; carries the rendered result rows (or, for
    /// non-query statements, the acknowledgement tag).
    Ok(Vec<Vec<String>>),
    /// Rejected with an error; carries the error's debug shape.
    Error(String),
    /// Crashed; carries the fault id. Never acceptable for seed queries.
    Crash(String),
}

fn prepared(mut engine: Engine) -> Engine {
    for prep in SHARED_PREP {
        let out = engine.execute(prep);
        assert!(!out.is_crash(), "shared prep {prep} crashed: {out:?}");
    }
    engine
}

fn classify(engine: &mut Engine, sql: &str) -> Class {
    match engine.execute(sql) {
        ExecOutcome::Rows(rs) => Class::Ok(
            rs.rows.iter().map(|row| row.iter().map(|v| v.render()).collect()).collect(),
        ),
        ExecOutcome::Ok(tag) => Class::Ok(vec![vec![tag]]),
        ExecOutcome::Error(e) => Class::Error(format!("{e:?}")),
        ExecOutcome::Crash(c) => Class::Crash(c.fault_id),
    }
}

/// The full classification matrix of one dialect: every shared query, in
/// order, against a freshly prepared engine.
fn classification_matrix(profile: &DialectProfile, armed: bool) -> Vec<Class> {
    let mut engine =
        prepared(if armed { profile.engine() } else { profile.engine_without_faults() });
    SHARED_QUERIES.iter().map(|sql| classify(&mut engine, sql)).collect()
}

/// Every shared seed query runs crash-free on every dialect's *armed*
/// engine: the seeds are the paper's collected corpus, and collection never
/// yields a crashing statement — crashes only enter via pattern mutation.
#[test]
fn shared_seeds_are_crash_free_on_every_dialect() {
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        let mut engine = prepared(profile.engine());
        for sql in SHARED_QUERIES {
            let out = engine.execute(sql);
            assert!(!out.is_crash(), "{}: seed {sql} crashed: {out:?}", id.name());
        }
    }
}

/// Names exposed by all seven registries resolve to the same canonical
/// definition everywhere: same canonical name, category, arity window, and
/// aggregate-ness. This pins the aliasing layer — a dialect may rename or
/// omit functions, but never quietly rebind a shared name.
#[test]
fn catalogs_agree_on_common_functions() {
    let profiles: Vec<DialectProfile> =
        DialectId::ALL.into_iter().map(DialectProfile::build).collect();
    let mut common: Vec<String> = profiles[0].registry.names();
    common.retain(|name| profiles.iter().all(|p| p.registry.resolve(name).is_some()));
    assert!(
        common.len() >= 40,
        "suspiciously small common catalog ({} names) — did an alias table break?",
        common.len()
    );
    for name in &common {
        let reference = profiles[0].registry.resolve(name).expect("name is common");
        for p in &profiles[1..] {
            let def = p.registry.resolve(name).expect("name is common");
            assert_eq!(
                def.name,
                reference.name,
                "{}: {} resolves to a different canonical function",
                p.id,
                name
            );
            assert_eq!(def.category, reference.category, "{}: {} category", p.id, name);
            assert_eq!(def.min_args, reference.min_args, "{}: {} min_args", p.id, name);
            assert_eq!(def.max_args, reference.max_args, "{}: {} max_args", p.id, name);
            assert_eq!(
                def.is_aggregate(),
                reference.is_aggregate(),
                "{}: {} aggregate-ness",
                p.id,
                name
            );
        }
    }
}

/// The ok/error/crash classification of the shared corpus is stable: two
/// independent prepared engines produce identical matrices, on both the
/// armed and the fault-free build, and the armed build never classifies a
/// seed as a crash.
#[test]
fn classification_matrix_is_stable_per_dialect() {
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        for armed in [true, false] {
            let first = classification_matrix(&profile, armed);
            let second = classification_matrix(&profile, armed);
            assert_eq!(
                first,
                second,
                "{} (armed={armed}): classification is not reproducible",
                id.name()
            );
            for (sql, class) in SHARED_QUERIES.iter().zip(&first) {
                assert!(
                    !matches!(class, Class::Crash(_)),
                    "{} (armed={armed}): seed {sql} classified as crash",
                    id.name()
                );
            }
        }
    }
}

/// The differential oracle proper: on the fault-free build, a shared query
/// that evaluates to rows on every dialect must evaluate to the *same* rows
/// on every dialect — the dialects differ in catalog and fault corpus, not
/// in the semantics of shared functions.
#[test]
fn fault_free_dialects_agree_on_shared_query_results() {
    let matrices: Vec<(DialectId, Vec<Class>)> = DialectId::ALL
        .into_iter()
        .map(|id| (id, classification_matrix(&DialectProfile::build(id), false)))
        .collect();
    let mut compared = 0usize;
    for (qi, sql) in SHARED_QUERIES.iter().enumerate() {
        let everywhere_ok =
            matrices.iter().all(|(_, m)| matches!(&m[qi], Class::Ok(_)));
        if !everywhere_ok {
            continue;
        }
        let (ref_id, reference) = (&matrices[0].0, &matrices[0].1[qi]);
        for (id, matrix) in &matrices[1..] {
            assert_eq!(
                &matrix[qi],
                reference,
                "{sql}: {} disagrees with {}",
                id.name(),
                ref_id.name()
            );
        }
        compared += 1;
    }
    assert!(
        compared >= SHARED_QUERIES.len() / 2,
        "only {compared} of {} shared queries ran everywhere — the differential \
         oracle has lost most of its surface",
        SHARED_QUERIES.len()
    );
}

/// The campaign-time differential oracle (`soft::oracle::differential_check`)
/// stays quiet on every shipped profile with the shipped (empty) allowlist:
/// no armed dialect's logic quirks are reachable from the shared corpus
/// today, so `KNOWN_DIVERGENCES` can start empty. A dialect that gains a
/// corpus-reachable quirk must either be caught by a campaign (the point) or
/// consciously allowlisted here — never silently absorbed.
#[test]
fn campaign_differential_oracle_is_quiet_on_every_shipped_profile() {
    use soft_repro::soft::oracle::{differential_check, KNOWN_DIVERGENCES};
    assert!(
        KNOWN_DIVERGENCES.is_empty(),
        "the shipped allowlist grew — keep this test's claim in sync"
    );
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        let hits = differential_check(&profile);
        assert!(
            hits.is_empty(),
            "{}: shipped profile diverges from its fault-free peers: {:?}",
            id.name(),
            hits.iter().map(|(fault, _, _)| fault.as_str()).collect::<Vec<_>>()
        );
    }
}
