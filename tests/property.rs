//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;
use soft_repro::engine::Engine;
use soft_repro::types::decimal::Decimal;

fn i128_to_dec(v: i128) -> Decimal {
    Decimal::from_i128(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decimal integer arithmetic agrees with the i128 oracle.
    #[test]
    fn decimal_add_matches_i128(a in -10_000_000_000i128..10_000_000_000, b in -10_000_000_000i128..10_000_000_000) {
        let d = i128_to_dec(a).checked_add(&i128_to_dec(b)).unwrap();
        prop_assert_eq!(d.to_string(), (a + b).to_string());
    }

    #[test]
    fn decimal_mul_matches_i128(a in -1_000_000i128..1_000_000, b in -1_000_000i128..1_000_000) {
        let d = i128_to_dec(a).checked_mul(&i128_to_dec(b)).unwrap();
        prop_assert_eq!(d.to_string(), (a * b).to_string());
    }

    #[test]
    fn decimal_rem_matches_i128(a in -1_000_000i128..1_000_000, b in 1i128..10_000) {
        let d = i128_to_dec(a).checked_rem(&i128_to_dec(b)).unwrap();
        prop_assert_eq!(d.to_string(), (a % b).to_string());
    }

    /// Decimal parse/display round-trips through canonical text.
    #[test]
    fn decimal_string_roundtrip(int_digits in 1usize..30, frac_digits in 0usize..20, neg in any::<bool>(), seed in any::<u64>()) {
        let mut state = seed;
        let mut digit = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (b'0' + ((state >> 33) % 10) as u8) as char
        };
        let mut s = String::new();
        if neg { s.push('-'); }
        // Leading digit non-zero so the text is canonical.
        s.push((b'1' + ((seed >> 7) % 9) as u8) as char);
        for _ in 1..int_digits { s.push(digit()); }
        if frac_digits > 0 {
            s.push('.');
            for _ in 0..frac_digits { s.push(digit()); }
        }
        let d: Decimal = s.parse().unwrap();
        prop_assert_eq!(d.to_string(), s);
    }

    /// Decimal ordering is consistent with f64 ordering on small values.
    #[test]
    fn decimal_cmp_consistent_with_f64(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
        let da = Decimal::from_f64(a).unwrap();
        let db = Decimal::from_f64(b).unwrap();
        if (a - b).abs() > 1e-6 {
            prop_assert_eq!(da < db, a < b);
        }
    }

    /// JSON parse → serialize → parse is a fixpoint.
    #[test]
    fn json_roundtrip(depth in 0usize..4, seed in any::<u64>()) {
        use soft_repro::types::json::{self, JsonValue};
        fn build(depth: usize, state: &mut u64) -> JsonValue {
            let mut next = || {
                *state = state.wrapping_mul(6364136223846793005).wrapping_add(99991);
                (*state >> 33) as usize
            };
            if depth == 0 {
                match next() % 4 {
                    0 => JsonValue::Null,
                    1 => JsonValue::Bool(next() % 2 == 0),
                    2 => JsonValue::Number((next() % 100000).to_string()),
                    _ => JsonValue::String(format!("s{}", next() % 1000)),
                }
            } else {
                match next() % 2 {
                    0 => JsonValue::Array((0..next() % 4).map(|_| build(depth - 1, state)).collect()),
                    _ => JsonValue::Object(
                        (0..next() % 4).map(|i| (format!("k{i}"), build(depth - 1, state))).collect(),
                    ),
                }
            }
        }
        let mut state = seed;
        let v = build(depth, &mut state);
        let text = v.to_json_string();
        let re = json::parse(&text).unwrap();
        prop_assert_eq!(re, v);
    }

    /// The parser's printer is an inverse: parse(print(parse(sql))) == parse(sql).
    #[test]
    fn parser_print_roundtrip(n in 0usize..5, s in "[a-z]{1,6}", num in 0i64..100000) {
        let candidates = [
            format!("SELECT {num} + LENGTH('{s}')"),
            format!("SELECT f{n}('{s}', {num}, NULL)"),
            format!("SELECT UPPER('{s}') FROM t WHERE a > {num} ORDER BY a LIMIT {}", n + 1),
            format!("SELECT CAST({num} AS TEXT) UNION SELECT '{s}'"),
            format!("SELECT CASE WHEN a = {num} THEN '{s}' ELSE NULL END FROM t"),
        ];
        for sql in candidates {
            let s1 = soft_repro::parser::parse_statement(&sql).unwrap();
            let printed = s1.to_string();
            let s2 = soft_repro::parser::parse_statement(&printed).unwrap();
            prop_assert_eq!(s1, s2);
        }
    }

    /// The engine never panics: arbitrary byte soup either errors or runs.
    #[test]
    fn engine_never_panics_on_garbage(sql in "\\PC{0,80}") {
        let mut e = Engine::with_default_functions(Default::default());
        let _ = e.execute(&sql);
    }

    /// The engine never panics on function calls with wild arguments, and a
    /// fault-free engine never reports a crash.
    #[test]
    fn reference_engine_never_crashes(
        name in "[a-z_]{2,12}",
        arg1 in "\\PC{0,20}",
        n in any::<i64>(),
    ) {
        let mut e = Engine::with_default_functions(Default::default());
        let arg1 = arg1.replace('\'', "");
        for sql in [
            format!("SELECT {name}('{arg1}')"),
            format!("SELECT {name}({n})"),
            format!("SELECT {name}('{arg1}', {n})"),
            format!("SELECT UPPER({name}(NULL))"),
        ] {
            let out = e.execute(&sql);
            prop_assert!(!out.is_crash(), "{} crashed: {:?}", sql, out);
        }
    }

    /// Boundary pool values never break the *parser* when substituted
    /// anywhere a generated statement puts them.
    #[test]
    fn generated_cases_always_reparse(idx in 0usize..24) {
        let pool = soft_repro::soft::pool::boundary_literals();
        let b = &pool[idx % pool.len()];
        let sql = format!("SELECT f({b}, g({b}))");
        let stmt = soft_repro::parser::parse_statement(&sql).unwrap();
        prop_assert_eq!(
            soft_repro::parser::parse_statement(&stmt.to_string()).unwrap(),
            stmt
        );
    }

    /// Casting is total: it returns Ok or Err but never panics, for every
    /// (value, target) pair.
    #[test]
    fn casting_is_total(n in any::<i64>(), s in "\\PC{0,24}", t in 0usize..15) {
        use soft_repro::types::prelude::*;
        use soft_repro::types::cast;
        let targets = DataType::CASTABLE;
        let to = targets[t % targets.len()];
        for v in [Value::Integer(n), Value::Text(s.clone()), Value::Null, Value::Star] {
            for mode in [CastMode::Explicit, CastMode::Implicit] {
                for strict in [CastStrictness::Strict, CastStrictness::Lenient] {
                    let _ = cast::cast(&v, to, mode, strict, &CastLimits::default());
                }
            }
        }
    }
}

#[test]
fn campaign_is_deterministic_across_runs() {
    use soft_repro::dialects::{DialectId, DialectProfile};
    use soft_repro::soft::campaign::{run_soft, CampaignConfig};
    let profile = DialectProfile::build(DialectId::Postgres);
    let cfg = CampaignConfig { max_statements: 4_000, per_seed_cap: 8, patterns: None };
    let a = run_soft(&profile, &cfg);
    let b = run_soft(&profile, &cfg);
    assert_eq!(a.statements_executed, b.statements_executed);
    assert_eq!(a.branches_covered, b.branches_covered);
    assert_eq!(a.functions_triggered, b.functions_triggered);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ternary Logic Partitioning holds on the reference engine for random
    /// predicates: the §8 correctness-oracle extension, used here as a deep
    /// test of three-valued logic in the evaluator.
    #[test]
    fn tlp_holds_for_random_predicates(
        col in 0usize..2,
        cmp in 0usize..6,
        lit in -3i64..8,
        wrap in 0usize..4,
        combine in 0usize..3,
    ) {
        use soft_repro::soft::extend::{tlp_check, TlpOutcome};
        let mut e = Engine::with_default_functions(Default::default());
        e.execute("CREATE TABLE p (a INTEGER, b TEXT)");
        e.execute(
            "INSERT INTO p VALUES (1, 'x'), (2, NULL), (NULL, 'y'), (4, 'z'), (0, ''), (NULL, NULL)",
        );
        let col = ["a", "b"][col];
        let op = ["=", "<>", "<", "<=", ">", ">="][cmp];
        let lhs = match wrap {
            0 => col.to_string(),
            1 => format!("COALESCE({col}, 0)"),
            2 => format!("LENGTH({col})"),
            _ => format!("ABS(COALESCE({col}, -1))"),
        };
        let base_pred = format!("{lhs} {op} {lit}");
        let pred = match combine {
            0 => base_pred,
            1 => format!("{base_pred} AND a IS NOT NULL"),
            _ => format!("{base_pred} OR b = 'x'"),
        };
        match tlp_check(&mut e, "SELECT a, b FROM p", &pred) {
            TlpOutcome::Consistent | TlpOutcome::Inconclusive => {}
            TlpOutcome::Violation(v) => {
                prop_assert!(false, "TLP violation: {v:?}");
            }
        }
    }
}
