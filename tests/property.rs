//! Property-based tests over the core invariants, on the in-tree
//! deterministic harness (`soft_rng::prop`).
//!
//! The recorded counterexamples from the retired
//! `tests/property.proptest-regressions` ledger are replayed explicitly via
//! `Check::regressions` before any fresh generation.

use soft_rng::prop::{shrink_string, Check};
use soft_rng::Rng;
use soft_repro::engine::Engine;
use soft_repro::types::decimal::Decimal;

fn i128_to_dec(v: i128) -> Decimal {
    Decimal::from_i128(v)
}

/// A printable Unicode char, biased towards ASCII but covering multi-byte
/// planes (the proptest `\PC` class these tests were written against).
fn gen_char(rng: &mut Rng) -> char {
    loop {
        let cp = match rng.gen_range(0..10u32) {
            0..=5 => rng.gen_range(0x20..0x7Fu32),
            6 => rng.gen_range(0xA0..0x300u32),
            7 => rng.gen_range(0x300..0x2000u32),
            8 => rng.gen_range(0x2000..0xD800u32),
            _ => rng.gen_range(0xE000..0x1_0000u32),
        };
        if let Some(c) = char::from_u32(cp) {
            if !c.is_control() {
                return c;
            }
        }
    }
}

fn gen_text(rng: &mut Rng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len).map(|_| gen_char(rng)).collect()
}

fn gen_word(rng: &mut Rng, alphabet: &[u8], min_len: usize, max_len: usize) -> String {
    let len = rng.gen_range(min_len..max_len + 1);
    (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char).collect()
}

/// Decimal integer arithmetic agrees with the i128 oracle.
#[test]
fn decimal_add_matches_i128() {
    Check::new("decimal_add_matches_i128").run(
        |rng| {
            (
                rng.gen_range(-10_000_000_000i128..10_000_000_000),
                rng.gen_range(-10_000_000_000i128..10_000_000_000),
            )
        },
        |&(a, b)| {
            let d = i128_to_dec(a).checked_add(&i128_to_dec(b)).unwrap();
            if d.to_string() == (a + b).to_string() {
                Ok(())
            } else {
                Err(format!("{a} + {b} gave {d}"))
            }
        },
    );
}

#[test]
fn decimal_mul_matches_i128() {
    Check::new("decimal_mul_matches_i128").run(
        |rng| (rng.gen_range(-1_000_000i128..1_000_000), rng.gen_range(-1_000_000i128..1_000_000)),
        |&(a, b)| {
            let d = i128_to_dec(a).checked_mul(&i128_to_dec(b)).unwrap();
            if d.to_string() == (a * b).to_string() {
                Ok(())
            } else {
                Err(format!("{a} * {b} gave {d}"))
            }
        },
    );
}

#[test]
fn decimal_rem_matches_i128() {
    Check::new("decimal_rem_matches_i128").run(
        |rng| (rng.gen_range(-1_000_000i128..1_000_000), rng.gen_range(1i128..10_000)),
        |&(a, b)| {
            let d = i128_to_dec(a).checked_rem(&i128_to_dec(b)).unwrap();
            if d.to_string() == (a % b).to_string() {
                Ok(())
            } else {
                Err(format!("{a} % {b} gave {d}"))
            }
        },
    );
}

/// Decimal parse/display round-trips through canonical text.
#[test]
fn decimal_string_roundtrip() {
    Check::new("decimal_string_roundtrip").run(
        |rng| {
            let int_digits = rng.gen_range(1usize..30);
            let frac_digits = rng.gen_range(0usize..20);
            let neg = rng.gen_bool(0.5);
            let seed = rng.next_u64();
            let mut state = seed;
            let mut digit = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (b'0' + ((state >> 33) % 10) as u8) as char
            };
            let mut s = String::new();
            if neg {
                s.push('-');
            }
            // Leading digit non-zero so the text is canonical.
            s.push((b'1' + ((seed >> 7) % 9) as u8) as char);
            for _ in 1..int_digits {
                s.push(digit());
            }
            if frac_digits > 0 {
                s.push('.');
                for _ in 0..frac_digits {
                    s.push(digit());
                }
            }
            s
        },
        |s| {
            let d: Decimal = s.parse().unwrap();
            if d.to_string() == *s {
                Ok(())
            } else {
                Err(format!("parsed back as {d}"))
            }
        },
    );
}

/// Decimal ordering is consistent with f64 ordering on small values.
#[test]
fn decimal_cmp_consistent_with_f64() {
    Check::new("decimal_cmp_consistent_with_f64").run(
        |rng| (rng.gen_range(-1000.0f64..1000.0), rng.gen_range(-1000.0f64..1000.0)),
        |&(a, b)| {
            let da = Decimal::from_f64(a).unwrap();
            let db = Decimal::from_f64(b).unwrap();
            if (a - b).abs() > 1e-6 && (da < db) != (a < b) {
                return Err(format!("cmp({da}, {db}) disagrees with cmp({a}, {b})"));
            }
            Ok(())
        },
    );
}

/// JSON parse → serialize → parse is a fixpoint.
#[test]
fn json_roundtrip() {
    use soft_repro::types::json::{self, JsonValue};
    fn build(depth: usize, state: &mut u64) -> JsonValue {
        let mut next = || {
            *state = state.wrapping_mul(6364136223846793005).wrapping_add(99991);
            (*state >> 33) as usize
        };
        if depth == 0 {
            match next() % 4 {
                0 => JsonValue::Null,
                1 => JsonValue::Bool(next() % 2 == 0),
                2 => JsonValue::Number((next() % 100000).to_string()),
                _ => JsonValue::String(format!("s{}", next() % 1000)),
            }
        } else {
            match next() % 2 {
                0 => JsonValue::Array((0..next() % 4).map(|_| build(depth - 1, state)).collect()),
                _ => JsonValue::Object(
                    (0..next() % 4).map(|i| (format!("k{i}"), build(depth - 1, state))).collect(),
                ),
            }
        }
    }
    Check::new("json_roundtrip").run(
        |rng| (rng.gen_range(0usize..4), rng.next_u64()),
        |&(depth, seed)| {
            let mut state = seed;
            let v = build(depth, &mut state);
            let text = v.to_json_string();
            match json::parse(&text) {
                Ok(re) if re == v => Ok(()),
                Ok(re) => Err(format!("reparsed {text} as {re:?}")),
                Err(e) => Err(format!("failed to reparse {text}: {e:?}")),
            }
        },
    );
}

/// The parser's printer is an inverse: parse(print(parse(sql))) == parse(sql).
#[test]
fn parser_print_roundtrip() {
    Check::new("parser_print_roundtrip").run(
        |rng| {
            (
                rng.gen_range(0usize..5),
                gen_word(rng, b"abcdefghijklmnopqrstuvwxyz", 1, 6),
                rng.gen_range(0i64..100000),
            )
        },
        |(n, s, num)| {
            let candidates = [
                format!("SELECT {num} + LENGTH('{s}')"),
                format!("SELECT f{n}('{s}', {num}, NULL)"),
                format!("SELECT UPPER('{s}') FROM t WHERE a > {num} ORDER BY a LIMIT {}", n + 1),
                format!("SELECT CAST({num} AS TEXT) UNION SELECT '{s}'"),
                format!("SELECT CASE WHEN a = {num} THEN '{s}' ELSE NULL END FROM t"),
            ];
            for sql in candidates {
                let s1 = soft_repro::parser::parse_statement(&sql).unwrap();
                let printed = s1.to_string();
                let s2 = soft_repro::parser::parse_statement(&printed).unwrap();
                if s1 != s2 {
                    return Err(format!("{sql} printed as {printed} parses differently"));
                }
            }
            Ok(())
        },
    );
}

/// The engine never panics: arbitrary byte soup either errors or runs.
#[test]
fn engine_never_panics_on_garbage() {
    Check::new("engine_never_panics_on_garbage")
        // From the retired proptest-regressions ledger: an unterminated
        // string whose escape swallows a multi-byte char.
        .regressions(["'\\\u{FFFC}".to_string()])
        .shrink(|s| shrink_string(s))
        .run(
            |rng| gen_text(rng, 80),
            |sql| {
                let mut e = Engine::with_default_functions(Default::default());
                let _ = e.execute(sql);
                Ok(())
            },
        );
}

/// The engine never panics on function calls with wild arguments, and a
/// fault-free engine never reports a crash.
#[test]
fn reference_engine_never_crashes() {
    Check::new("reference_engine_never_crashes")
        // From the retired proptest-regressions ledger: a backslash escape
        // ending the literal just before the closing quote.
        .regressions([("a_".to_string(), "\\\u{1940}".to_string(), 0i64)])
        .run(
            |rng| {
                (
                    gen_word(rng, b"abcdefghijklmnopqrstuvwxyz_", 2, 12),
                    gen_text(rng, 20),
                    rng.next_u64() as i64,
                )
            },
            |(name, arg1, n)| {
                let mut e = Engine::with_default_functions(Default::default());
                let arg1 = arg1.replace('\'', "");
                for sql in [
                    format!("SELECT {name}('{arg1}')"),
                    format!("SELECT {name}({n})"),
                    format!("SELECT {name}('{arg1}', {n})"),
                    format!("SELECT UPPER({name}(NULL))"),
                ] {
                    let out = e.execute(&sql);
                    if out.is_crash() {
                        return Err(format!("{sql} crashed: {out:?}"));
                    }
                }
                Ok(())
            },
        );
}

/// Prepared execution is observationally identical to one-shot execution:
/// for cases generated by all ten patterns on all seven dialect profiles
/// (plus every fault witness), `prepare` + `execute_prepared` produces the
/// exact same `ExecOutcome` as `execute` — including crash classification,
/// fault ids, and the coverage the statement records.
#[test]
fn prepared_execution_matches_string_execution_on_pattern_cases() {
    use soft_repro::dialects::{DialectId, DialectProfile};
    use soft_repro::engine::{ExecOutcome, PatternId};
    use soft_repro::soft::patterns::GenCtx;
    use soft_repro::soft::{collect, patterns};

    struct Corpus {
        template: Engine,
        cases: Vec<String>,
    }
    let corpora: Vec<Corpus> = DialectId::ALL
        .iter()
        .map(|&id| {
            let profile = DialectProfile::build(id);
            let collection = collect::collect(&profile);
            let ctx = GenCtx::new(&collection);
            let mut template = profile.engine();
            for stmt in &collection.preparation {
                let _ = template.execute(&stmt.to_string());
            }
            let mut cases: Vec<String> =
                profile.faults.iter().map(|f| f.witness.clone()).collect();
            let mut buf = Vec::new();
            for pattern in PatternId::ALL {
                for (si, seed) in collection.seeds.iter().enumerate().take(4) {
                    patterns::apply_salted(pattern, seed, &ctx, 2, si, &mut buf);
                }
                cases.extend(buf.drain(..).map(|c| c.sql));
            }
            Corpus { template, cases }
        })
        .collect();

    Check::new("prepared_execution_matches_string_execution").cases(600).run(
        |rng| (rng.gen_range(0..DialectId::ALL.len()), rng.next_u64() as usize),
        |&(di, ci)| {
            let corpus = &corpora[di];
            let sql = &corpus.cases[ci % corpus.cases.len()];
            let mut string_path = corpus.template.clone();
            let mut prepared_path = corpus.template.clone();
            let expected = string_path.execute(sql);
            let got = match prepared_path.prepare(sql) {
                Ok(p) => prepared_path.execute_prepared(&p),
                Err(e) => ExecOutcome::Error(e),
            };
            if got != expected {
                return Err(format!("{sql}: string path {expected:?}, prepared path {got:?}"));
            }
            let same_coverage = string_path.coverage().functions_triggered()
                == prepared_path.coverage().functions_triggered()
                && string_path.coverage().branches_covered()
                    == prepared_path.coverage().branches_covered();
            if !same_coverage {
                return Err(format!("{sql}: the two paths recorded different coverage"));
            }
            Ok(())
        },
    );
}

/// Boundary pool values never break the *parser* when substituted
/// anywhere a generated statement puts them.
#[test]
fn generated_cases_always_reparse() {
    Check::new("generated_cases_always_reparse").run(
        |rng| rng.gen_range(0usize..24),
        |&idx| {
            let pool = soft_repro::soft::pool::boundary_literals();
            let b = &pool[idx % pool.len()];
            let sql = format!("SELECT f({b}, g({b}))");
            let stmt = soft_repro::parser::parse_statement(&sql).unwrap();
            if soft_repro::parser::parse_statement(&stmt.to_string()).unwrap() == stmt {
                Ok(())
            } else {
                Err(format!("{sql} does not reparse to itself"))
            }
        },
    );
}

/// Casting is total: it returns Ok or Err but never panics, for every
/// (value, target) pair.
#[test]
fn casting_is_total() {
    Check::new("casting_is_total").run(
        |rng| (rng.next_u64() as i64, gen_text(rng, 24), rng.gen_range(0usize..15)),
        |(n, s, t)| {
            use soft_repro::types::cast;
            use soft_repro::types::prelude::*;
            let targets = DataType::CASTABLE;
            let to = targets[t % targets.len()];
            for v in [Value::Integer(*n), Value::Text(s.clone()), Value::Null, Value::Star] {
                for mode in [CastMode::Explicit, CastMode::Implicit] {
                    for strict in [CastStrictness::Strict, CastStrictness::Lenient] {
                        let _ = cast::cast(&v, to, mode, strict, &CastLimits::default());
                    }
                }
            }
            Ok(())
        },
    );
}

/// Every statement the ten generation patterns emit round-trips through the
/// parser: `parse(display(parse(sql)))` is the same AST. The campaign feeds
/// pattern output straight into `Engine::execute`, so a printable-but-
/// unreparsable case would silently change what the minimizer and the PoC
/// ledger reproduce.
#[test]
fn pattern_generated_cases_roundtrip_through_the_parser() {
    use soft_repro::dialects::{DialectId, DialectProfile};
    use soft_repro::engine::fault::PatternId;
    use soft_repro::soft::collect::collect;
    use soft_repro::soft::patterns::{apply_salted, GenCtx};

    // Pre-generate a bounded corpus: a few seeds per pattern, all ten
    // patterns, from the dialect with the largest seed corpus.
    let profile = DialectProfile::build(DialectId::Virtuoso);
    let collection = collect(&profile);
    let ctx = GenCtx::new(&collection);
    let mut cases = Vec::new();
    for pattern in PatternId::ALL {
        for (si, seed) in collection.seeds.iter().take(6).enumerate() {
            apply_salted(pattern, seed, &ctx, 4, si, &mut cases);
        }
    }
    assert!(cases.len() > 100, "corpus too small: {}", cases.len());
    for pattern in PatternId::ALL {
        assert!(
            cases.iter().any(|c| c.pattern == pattern),
            "no cases from {}",
            pattern.label()
        );
    }

    Check::new("pattern_generated_cases_roundtrip_through_the_parser").cases(256).run(
        |rng| rng.gen_range(0usize..cases.len()),
        |&idx| {
            let case = &cases[idx % cases.len()];
            let ast = soft_repro::parser::parse_statement(&case.sql)
                .map_err(|e| format!("[{}] {} does not parse: {e:?}", case.pattern, case.sql))?;
            let printed = ast.to_string();
            let reparsed = soft_repro::parser::parse_statement(&printed)
                .map_err(|e| format!("[{}] print of {} does not reparse: {e:?}", case.pattern, case.sql))?;
            if reparsed == ast {
                Ok(())
            } else {
                Err(format!("[{}] {} printed as {printed} parses differently", case.pattern, case.sql))
            }
        },
    );
}

#[test]
fn campaign_is_deterministic_across_runs() {
    use soft_repro::dialects::{DialectId, DialectProfile};
    use soft_repro::soft::campaign::{run_soft, CampaignConfig};
    let profile = DialectProfile::build(DialectId::Postgres);
    let cfg = CampaignConfig { max_statements: 4_000, per_seed_cap: 8, ..CampaignConfig::default() };
    let a = run_soft(&profile, &cfg);
    let b = run_soft(&profile, &cfg);
    assert_eq!(a, b);
}

/// Ternary Logic Partitioning holds on the reference engine for random
/// predicates: the §8 correctness-oracle extension, used here as a deep
/// test of three-valued logic in the evaluator.
#[test]
fn tlp_holds_for_random_predicates() {
    use soft_repro::soft::extend::{tlp_check, TlpOutcome};
    Check::new("tlp_holds_for_random_predicates").cases(64).run(
        |rng| {
            (
                rng.gen_range(0usize..2),
                rng.gen_range(0usize..6),
                rng.gen_range(-3i64..8),
                rng.gen_range(0usize..4),
                rng.gen_range(0usize..3),
            )
        },
        |&(col, cmp, lit, wrap, combine)| {
            let mut e = Engine::with_default_functions(Default::default());
            e.execute("CREATE TABLE p (a INTEGER, b TEXT)");
            e.execute(
                "INSERT INTO p VALUES (1, 'x'), (2, NULL), (NULL, 'y'), (4, 'z'), (0, ''), (NULL, NULL)",
            );
            let col = ["a", "b"][col];
            let op = ["=", "<>", "<", "<=", ">", ">="][cmp];
            let lhs = match wrap {
                0 => col.to_string(),
                1 => format!("COALESCE({col}, 0)"),
                2 => format!("LENGTH({col})"),
                _ => format!("ABS(COALESCE({col}, -1))"),
            };
            let base_pred = format!("{lhs} {op} {lit}");
            let pred = match combine {
                0 => base_pred,
                1 => format!("{base_pred} AND a IS NOT NULL"),
                _ => format!("{base_pred} OR b = 'x'"),
            };
            match tlp_check(&mut e, "SELECT a, b FROM p", &pred) {
                TlpOutcome::Consistent | TlpOutcome::Inconclusive => Ok(()),
                TlpOutcome::Violation(v) => Err(format!("TLP violation: {v:?}")),
            }
        },
    );
}
