//! Scalar-equivalence property suite for columnar batch execution.
//!
//! The batch kernel's contract ([`soft_repro::engine::batch`]) is exactness:
//! for any group of same-shape prepared statements, `execute_batch_in`
//! produces what a serial `execute_prepared` walk over the group would —
//! the same outcome per member (class, rendered rows, error message, crash
//! fault id), the same coverage counters, the same crash-log growth. This
//! suite checks that contract property-style: seeded random groups drawn
//! from pattern-generated corpora across all seven dialects and all ten
//! patterns, shrunk on failure by dropping trailing group members.
//!
//! Column *names* are the one tolerated divergence: the batch path renders
//! output names once from the group representative, and no campaign surface
//! (report, oracle signature, journal) reads them — so the comparison
//! strips them before asserting outcome equality.

use soft_rng::prop::Check;
use soft_rng::splitmix64;
use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::engine::{BatchArena, Engine, ExecOutcome, PatternId, Prepared};
use soft_repro::parser;
use soft_repro::soft::patterns::{self, GenCtx};
use soft_repro::soft::collect;

/// One dialect's shape-grouped corpus: the prepared template plus every
/// batchable shape group (including singletons) found in the generated
/// statements.
struct Corpus {
    template: Engine,
    /// Same-shape groups of prepared statements, each group non-empty.
    groups: Vec<Vec<Prepared>>,
}

fn build_corpus(id: DialectId) -> Corpus {
    let profile = DialectProfile::build(id);
    let collection = collect::collect(&profile);
    let ctx = GenCtx::new(&collection);
    let mut template = profile.engine();
    for stmt in &collection.preparation {
        let _ = template.execute(&stmt.to_string());
    }
    // Fault witnesses first (they exercise the crash demux), then cases
    // from every pattern over a few seeds.
    let mut sqls: Vec<String> = profile.faults.iter().map(|f| f.witness.clone()).collect();
    let mut buf = Vec::new();
    for pattern in PatternId::ALL {
        for (si, seed) in collection.seeds.iter().enumerate().take(6) {
            patterns::apply_salted(pattern, seed, &ctx, 3, si, &mut buf);
        }
        sqls.extend(buf.drain(..).map(|c| c.sql));
    }
    // Group by structural shape; order and membership are deterministic.
    let mut keys = Vec::new();
    let mut groups: Vec<Vec<Prepared>> = Vec::new();
    for sql in &sqls {
        let Ok(p) = template.prepare(sql) else { continue };
        let Some(key) = template.shape_key(&p) else { continue };
        match keys.iter().position(|&k| k == key) {
            Some(i) => groups[i].push(p),
            None => {
                keys.push(key);
                groups.push(vec![p]);
            }
        }
    }
    assert!(groups.len() > 10, "{}: corpus produced too few shape groups", id.name());
    Corpus { template, groups }
}

fn strip_columns(o: ExecOutcome) -> ExecOutcome {
    match o {
        ExecOutcome::Rows(mut rs) => {
            rs.columns.clear();
            ExecOutcome::Rows(rs)
        }
        other => other,
    }
}

/// One generated case: a dialect, a shape group, and a seeded selection of
/// `len` members (with replacement — batching a statement twice is legal).
type Case = (usize, usize, u64, usize);

/// Shrink by dropping trailing members, then by halving the group.
fn shrink_case(&(di, gi, seed, len): &Case) -> Vec<Case> {
    let mut out = Vec::new();
    if len > 1 {
        out.push((di, gi, seed, len - 1));
        if len > 2 {
            out.push((di, gi, seed, len / 2));
        }
    }
    out
}

/// The property: for a random same-shape member selection, the batch path
/// and a serial `execute_prepared` walk agree member for member — outcome
/// (modulo column names), coverage counters, and crash-log growth.
#[test]
fn batch_path_is_equivalent_to_serial_prepared_execution() {
    let corpora: Vec<Corpus> = DialectId::ALL.iter().map(|&id| build_corpus(id)).collect();

    Check::new("batch_path_is_equivalent_to_serial_prepared_execution")
        .cases(1000)
        .shrink(shrink_case)
        .run(
            |rng| {
                (
                    rng.gen_range(0..DialectId::ALL.len()),
                    rng.next_u64() as usize,
                    rng.next_u64(),
                    rng.gen_range(1usize..6),
                )
            },
            |&(di, gi, seed, len)| {
                let corpus = &corpora[di];
                let group = &corpus.groups[gi % corpus.groups.len()];
                let mut pick = seed;
                let members: Vec<&Prepared> = (0..len)
                    .map(|_| &group[(splitmix64(&mut pick) as usize) % group.len()])
                    .collect();

                // Serial reference: execute_prepared in member order, no
                // restore between crashes — the kernel's exactness target.
                let mut serial = corpus.template.clone();
                let expected: Vec<ExecOutcome> = members
                    .iter()
                    .map(|p| strip_columns(serial.execute_prepared(p)))
                    .collect();

                // Batch path on a fresh clone, with a reused arena.
                let mut batched = corpus.template.clone();
                let mut arena = BatchArena::new();
                let Some(outcomes) = batched.execute_batch_in(&members, &mut arena) else {
                    return Err("shape-keyed group was rejected by the batch kernel".into());
                };
                let got: Vec<ExecOutcome> = outcomes.into_iter().map(strip_columns).collect();

                if got != expected {
                    let divergent = got
                        .iter()
                        .zip(&expected)
                        .position(|(g, e)| g != e)
                        .expect("lengths equal, some member differs");
                    return Err(format!(
                        "member {divergent} ({}) diverged:\n  serial: {:?}\n  batch:  {:?}",
                        members[divergent].statement(),
                        expected[divergent],
                        got[divergent],
                    ));
                }
                if serial.coverage().functions_triggered()
                    != batched.coverage().functions_triggered()
                    || serial.coverage().branches_covered()
                        != batched.coverage().branches_covered()
                {
                    return Err(format!(
                        "coverage diverged: serial {}f/{}b, batch {}f/{}b",
                        serial.coverage().functions_triggered(),
                        serial.coverage().branches_covered(),
                        batched.coverage().functions_triggered(),
                        batched.coverage().branches_covered(),
                    ));
                }
                if serial.crash_log().len() != batched.crash_log().len() {
                    return Err(format!(
                        "crash log diverged: serial {} entries, batch {}",
                        serial.crash_log().len(),
                        batched.crash_log().len(),
                    ));
                }
                Ok(())
            },
        );
}

/// The demux attributes a mid-batch crash to the right member and leaves
/// its neighbours' outcomes untouched: a group of honest statements with
/// one fault witness spliced into the middle crashes exactly there.
#[test]
fn mid_batch_crash_is_attributed_to_the_crashing_member() {
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        let Some(fault) = profile.faults.first() else { continue };
        let collection = collect::collect(&profile);
        let mut template = profile.engine();
        for stmt in &collection.preparation {
            let _ = template.execute(&stmt.to_string());
        }
        let witness = template.prepare(&fault.witness).expect("witness parses");
        if template.shape_key(&witness).is_none() {
            continue;
        }
        // Identical members share a shape trivially; whether the fault
        // fires for one, all, or none of them, the batch must mirror the
        // serial walk outcome for outcome and crash for crash.
        let members = vec![&witness, &witness, &witness];
        let mut engine = template.clone();
        let outcomes = engine.execute_batch(&members).expect("witness group batches");
        let mut serial = template.clone();
        let expected: Vec<ExecOutcome> =
            members.iter().map(|p| strip_columns(serial.execute_prepared(p))).collect();
        let got: Vec<ExecOutcome> = outcomes.into_iter().map(strip_columns).collect();
        assert_eq!(got, expected, "{}: crash demux diverged", id.name());
        assert_eq!(
            serial.crash_log().len(),
            engine.crash_log().len(),
            "{}: crash log growth diverged",
            id.name()
        );
    }
}

/// Campaign-level recovery pin: after a batched crash the shard restores
/// the template snapshot without re-executing the batch prefix — observable
/// as the batch-on campaign reproducing the scalar campaign's findings,
/// indices included, on a corpus guaranteed to crash mid-shard.
#[test]
fn batched_crash_recovery_matches_scalar_recovery() {
    use soft_repro::soft::campaign::{run_soft, CampaignConfig};
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let mk = |batch| CampaignConfig {
        max_statements: 20_000,
        per_seed_cap: 16,
        batch,
        ..CampaignConfig::default()
    };
    let scalar = run_soft(&profile, &mk(false));
    let batched = run_soft(&profile, &mk(true));
    assert!(!scalar.findings.is_empty(), "corpus must crash for this pin to bite");
    assert_eq!(scalar, batched);
    for (a, b) in scalar.findings.iter().zip(&batched.findings) {
        assert_eq!(a.fault_id, b.fault_id);
        assert_eq!(a.statements_until_found, b.statements_until_found);
    }
}

/// Shape keys fold spelling but split structure — pinned here at the
/// public-API level (the engine unit tests pin the kernel-internal view).
#[test]
fn shape_keys_group_case_variants_and_split_structures() {
    let profile = DialectProfile::build(DialectId::Postgres);
    let engine = profile.engine();
    let key = |sql: &str| {
        let p = engine.prepare(sql).expect("parses");
        engine.shape_key(&p)
    };
    let a = key("SELECT UPPER('x')").expect("batchable");
    let b = key("select upper('boundary')").expect("batchable");
    assert_eq!(a, b, "case-variant spellings of one shape must share a key");
    let c = key("SELECT LOWER('x')").expect("batchable");
    assert_ne!(a, c, "different functions are different shapes");
    let d = key("SELECT UPPER(LOWER('x'))").expect("batchable");
    assert_ne!(a, d, "nesting changes the shape");
    assert_eq!(key("SELECT rand()"), None, "volatile functions never batch");
    assert_eq!(key("SELECT a FROM t1"), None, "row-reading statements never batch");
    let _ = parser::parse_statement("SELECT 1").expect("parser reachable from this test");
}
