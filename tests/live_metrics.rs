//! Integration tests for the live observability plane: the `/metrics`
//! exposition server scraped *while a campaign is running*, and the final
//! live counters reconciled against the deterministic report.

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::obs::{LiveMetrics, MetricsServer, WatchdogConfig};
use soft_repro::soft::campaign::{run_soft_parallel_live, CampaignConfig, LivePlane};
use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

/// A minimal HTTP/1.1 GET over a std TcpStream: returns (status line, body).
fn http_get(addr: &std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Parses the Prometheus text format into `name{labels} -> value`,
/// validating the `# HELP` / `# TYPE` structure on the way: every sample
/// must belong to a declared metric family.
fn parse_prometheus(body: &str) -> HashMap<String, f64> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = HashMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("metric name after # TYPE").to_string();
            let kind = parts.next().expect("metric kind after name");
            assert!(
                matches!(kind, "counter" | "gauge"),
                "unexpected metric kind {kind:?} in {line:?}"
            );
            declared.push(name);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (key, value) = line.rsplit_once(' ').expect("sample is `name value`");
        let family = key.split('{').next().expect("metric family");
        assert!(
            declared.iter().any(|d| d == family),
            "sample {key:?} has no # TYPE declaration"
        );
        samples.insert(key.to_string(), value.parse::<f64>().expect("numeric sample"));
    }
    samples
}

/// Scrapes `/metrics` repeatedly while a campaign runs, then reconciles the
/// final scrape against the deterministic report: statements, outcome
/// classes, unique faults, and shard completion must all agree exactly once
/// the run is over.
#[test]
fn metrics_endpoint_serves_a_running_campaign_and_reconciles_at_the_end() {
    let metrics = Arc::new(LiveMetrics::new());
    let mut server =
        MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind on a free port");
    let addr = server.local_addr();

    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = CampaignConfig {
        max_statements: 20_000,
        per_seed_cap: 32,
        ..CampaignConfig::default()
    };
    let plane = LivePlane {
        metrics: Some(Arc::clone(&metrics)),
        watchdog: Some(WatchdogConfig::default()),
        spans: false,
    };

    let run = std::thread::scope(|scope| {
        let campaign = scope.spawn(|| run_soft_parallel_live(&profile, &cfg, 4, &plane));
        // Scrape live until the campaign thread finishes. Every mid-flight
        // scrape must be well-formed and internally consistent, even though
        // its counts are racing the workers.
        let mut scrapes = 0usize;
        while !campaign.is_finished() {
            let (status, body) = http_get(&addr, "/metrics");
            assert_eq!(status, "HTTP/1.1 200 OK");
            let samples = parse_prometheus(&body);
            let statements = samples["soft_statements_total"];
            let planned = samples["soft_statements_planned"];
            assert!(
                planned == 0.0 || statements <= planned,
                "executed {statements} past the planned {planned}"
            );
            scrapes += 1;
        }
        assert!(scrapes > 0, "campaign finished before a single scrape");
        campaign.join().expect("campaign thread")
    });

    // The final scrape agrees with the deterministic report exactly.
    let (status, body) = http_get(&addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let samples = parse_prometheus(&body);
    let report = &run.report;
    assert_eq!(samples["soft_statements_total"], report.statements_executed as f64);
    assert_eq!(samples["soft_unique_faults_total"], report.findings.len() as f64);
    assert_eq!(samples["soft_shards_total"], report.shards.len() as f64);
    assert_eq!(samples["soft_shards_done"], report.shards.len() as f64);
    assert_eq!(samples["soft_workers"], 4.0);
    assert_eq!(samples[r#"soft_outcomes_total{class="error"}"#], report.errors as f64);
    assert_eq!(
        samples[r#"soft_outcomes_total{class="resource-limit"}"#],
        report.false_positives as f64
    );
    // The four outcome classes partition the statement stream.
    let outcome_sum: f64 = samples
        .iter()
        .filter(|(k, _)| k.starts_with("soft_outcomes_total{"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(outcome_sum, report.statements_executed as f64);
    // Per-pattern executed counters partition it too (slot "seed" included).
    let pattern_sum: f64 = samples
        .iter()
        .filter(|(k, _)| k.starts_with("soft_pattern_statements_total{"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(pattern_sum, report.statements_executed as f64);
    // Every shard heartbeat reports done (state gauge = 2).
    for shard in 0..report.shards.len() {
        assert_eq!(samples[&format!("soft_shard_state{{shard=\"{shard}\"}}")], 2.0);
    }

    // The other two endpoints serve the same registry.
    let (status, body) = http_get(&addr, "/status");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let obj = soft_repro::obs::json::parse_object(body.trim()).expect("valid status JSON");
    assert_eq!(
        obj["statements"].as_num(),
        Some(report.statements_executed as i64)
    );
    assert_eq!(obj["unique_faults"].as_num(), Some(report.findings.len() as i64));
    assert_eq!(obj["dialect"].as_str(), Some("ClickHouse"));

    let (status, curve) = http_get(&addr, "/curve");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let bug_lines = curve.lines().filter(|l| l.contains("\"bug\"")).count();
    assert_eq!(bug_lines, report.findings.len());
    for line in curve.lines() {
        soft_repro::obs::json::parse_object(line).expect("valid curve JSONL line");
    }

    // Unknown paths 404; non-GET methods 405.
    let (status, _) = http_get(&addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    server.shutdown();
}

/// Decodes an HTTP/1.1 chunked transfer-encoded body.
fn decode_chunked(mut body: &str) -> String {
    let mut out = String::new();
    loop {
        let Some((size_line, rest)) = body.split_once("\r\n") else { break };
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            break;
        }
        out.push_str(&rest[..size]);
        body = &rest[size..].strip_prefix("\r\n").expect("chunk trailer CRLF");
    }
    out
}

/// The `/events` stream consumed *concurrently* with a scheduled campaign
/// reconciles against the final deterministic report: every finding event
/// matches a report finding (and vice versa), every shard reports done,
/// one epoch event per recorded reallocation, and the stream terminates
/// with exactly one `done` record once the campaign finishes.
#[test]
fn events_stream_reconciles_against_the_final_report() {
    use soft_repro::soft::{
        OracleConfig, ScheduleConfig, ScheduleOptions, TelemetryConfig, TelemetryOptions,
    };
    let metrics = Arc::new(LiveMetrics::new());
    let mut server =
        MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind on a free port");
    let addr = server.local_addr();

    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = CampaignConfig {
        max_statements: 8_000,
        per_seed_cap: 16,
        telemetry: TelemetryConfig::On(TelemetryOptions {
            snapshot_interval: 1_000,
            journal_path: None,
        }),
        oracles: OracleConfig::on(),
        schedule: ScheduleConfig::On(ScheduleOptions { epochs: 4, ..ScheduleOptions::default() }),
        ..CampaignConfig::default()
    };
    let plane = LivePlane {
        metrics: Some(Arc::clone(&metrics)),
        watchdog: Some(WatchdogConfig::default()),
        spans: true,
    };

    // The consumer connects while the campaign runs; the chunked stream
    // only terminates once the campaign thread records `done`.
    let (run, raw) = std::thread::scope(|scope| {
        let campaign = scope.spawn(|| run_soft_parallel_live(&profile, &cfg, 4, &plane));
        let consumer = scope.spawn(move || http_get(&addr, "/events"));
        let run = campaign.join().expect("campaign thread");
        let (status, body) = consumer.join().expect("events consumer");
        assert_eq!(status, "HTTP/1.1 200 OK");
        (run, body)
    });

    let body = decode_chunked(&raw);
    let report = &run.report;
    let mut finding_faults = Vec::new();
    let mut shards_done = 0usize;
    let mut epochs = 0usize;
    let mut done_records = 0usize;
    for line in body.lines() {
        let obj = soft_repro::obs::json::parse_object(line).expect("valid event JSON");
        match obj["type"].as_str().expect("event type") {
            "finding" => finding_faults.push(obj["fault"].as_str().expect("fault").to_string()),
            "shard" if obj["state"].as_str() == Some("done") => shards_done += 1,
            "epoch" => epochs += 1,
            "done" => {
                done_records += 1;
                assert_eq!(obj["statements"].as_num(), Some(report.statements_executed as i64));
                assert_eq!(obj["unique"].as_num(), Some(report.findings.len() as i64));
            }
            _ => {}
        }
    }
    finding_faults.sort();
    let mut report_faults: Vec<String> =
        report.findings.iter().map(|f| f.fault_id.clone()).collect();
    report_faults.sort();
    assert_eq!(finding_faults, report_faults, "finding events diverge from the report");
    assert_eq!(shards_done, report.shards.len(), "not every shard reported done");
    let telemetry = report.telemetry.as_ref().expect("telemetry was on");
    assert_eq!(epochs, telemetry.epochs.len(), "one epoch event per reallocation");
    assert_eq!(done_records, 1, "exactly one done record terminates the stream");
    assert!(body.trim_end().lines().last().expect("nonempty stream").contains("\"done\""));
    server.shutdown();
}

/// The server binds, serves concurrent scrapers, shuts down idempotently,
/// and a second registry can immediately reuse the port story (bind on 0).
#[test]
fn server_shutdown_is_clean_and_scrapes_are_concurrent() {
    let metrics = Arc::new(LiveMetrics::new());
    metrics.begin_campaign("DuckDB", 100, 2, 2);
    let mut server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let (status, body) = http_get(&addr, "/metrics");
                    assert_eq!(status, "HTTP/1.1 200 OK");
                    assert!(body.contains("soft_statements_total"));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("scraper");
        }
    });
    server.shutdown();
    server.shutdown(); // idempotent
    assert!(
        TcpStream::connect(addr).is_err()
            || http_get_after_shutdown(&addr),
        "server still answering after shutdown"
    );
}

/// After shutdown the listener is gone: either the connection is refused or
/// nothing answers. (A race with the OS re-queueing the last poke
/// connection is tolerated as long as no HTTP response comes back.)
fn http_get_after_shutdown(addr: &std::net::SocketAddr) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else { return true };
    let _ = write!(stream, "GET /metrics HTTP/1.1\r\n\r\n");
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let mut buf = String::new();
    match stream.read_to_string(&mut buf) {
        Ok(0) => true,
        Ok(_) => buf.is_empty(),
        Err(_) => true,
    }
}
