//! Integration tests for the feedback scheduler (`soft_core::schedule` +
//! the campaign's epoch loop).
//!
//! The scheduler is plan-then-execute: every epoch's budget reallocation is
//! computed from the *merged, deterministic* telemetry of the epochs before
//! it, and the resulting statement stream is a pure function of the
//! configuration. These tests pin the consequences:
//!
//! 1. a scheduled campaign — telemetry and oracles armed — produces a
//!    byte-identical [`CampaignReport`] at 1, 2, 4, and 7 workers;
//! 2. scheduling decisions are invariant to the batch knob and to whether
//!    user telemetry is on (the internal observer never leaks);
//! 3. the journaled epoch records are well-formed and round-trip through
//!    the JSONL trace format.

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::obs::TraceFile;
use soft_repro::soft::campaign::{run_soft_parallel, CampaignConfig};
use soft_repro::soft::{
    OracleConfig, ScheduleConfig, ScheduleOptions, TelemetryConfig, TelemetryOptions,
};

fn scheduled_config(budget: usize) -> CampaignConfig {
    CampaignConfig {
        max_statements: budget,
        per_seed_cap: 8,
        telemetry: TelemetryConfig::On(TelemetryOptions {
            snapshot_interval: budget / 8,
            journal_path: None,
        }),
        oracles: OracleConfig::on(),
        schedule: ScheduleConfig::On(ScheduleOptions { epochs: 4, ..ScheduleOptions::default() }),
        ..CampaignConfig::default()
    }
}

/// The adaptive stream stays a pure function of the configuration: with the
/// scheduler, the oracles, and telemetry all armed, the whole report —
/// journal, yields, curves, and epoch records included in the equality — is
/// byte-identical at every worker count.
#[test]
fn scheduled_report_is_byte_identical_across_worker_counts() {
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = scheduled_config(3_000);
    let serial = run_soft_parallel(&profile, &cfg, 1);
    let tel = serial.telemetry.as_ref().expect("telemetry was on");
    assert!(!tel.epochs.is_empty(), "scheduled campaign must journal its epochs");
    assert_eq!(tel.journal.events.len(), serial.statements_executed);
    assert!(!serial.findings.is_empty(), "budget 3000 finds ClickHouse bugs");

    for workers in [2usize, 4, 7] {
        let parallel = run_soft_parallel(&profile, &cfg, workers);
        assert_eq!(
            parallel, serial,
            "worker count {workers} leaked into the scheduled report"
        );
    }
}

/// Scheduling inputs are event-derived, so neither the batch execution
/// strategy nor the user's telemetry setting can change what gets planned:
/// batch on/off produce equal reports, and a telemetry-off scheduled run
/// equals the telemetry-on run with its telemetry stripped.
#[test]
fn scheduling_is_invariant_to_batch_and_telemetry() {
    let profile = DialectProfile::build(DialectId::Monetdb);
    let cfg = scheduled_config(2_000);
    let reference = run_soft_parallel(&profile, &cfg, 2);

    let scalar = run_soft_parallel(&profile, &CampaignConfig { batch: false, ..cfg.clone() }, 2);
    assert_eq!(scalar, reference, "the batch knob leaked into scheduling");

    let dark = run_soft_parallel(
        &profile,
        &CampaignConfig { telemetry: TelemetryConfig::Off, ..cfg.clone() },
        2,
    );
    let mut stripped = reference.clone();
    stripped.telemetry = None;
    assert_eq!(dark, stripped, "the internal scoring observer leaked into the report");
}

/// Epoch records are well-formed — sequential epochs, increasing start
/// statements, per-arm executed counts reconciling with the journal — and
/// survive the JSONL trace round-trip byte for byte.
#[test]
fn epoch_records_are_wellformed_and_round_trip() {
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = scheduled_config(3_000);
    let report = run_soft_parallel(&profile, &cfg, 2);
    let tel = report.telemetry.as_ref().expect("telemetry was on");

    let mut last_start = 0usize;
    for (i, e) in tel.epochs.iter().enumerate() {
        assert_eq!(e.epoch, i, "epochs are sequential");
        assert!(e.start_statement > last_start, "epoch starts advance");
        last_start = e.start_statement;
        assert!(e.budget > 0, "recorded epochs carry budget");
        for a in &e.allocations {
            assert!(a.executed <= e.budget, "an arm cannot exceed the epoch budget");
        }
    }
    // Per-arm executed counts cover exactly the pattern-generated
    // statements (seed replays belong to no arm).
    let executed: usize =
        tel.epochs.iter().flat_map(|e| &e.allocations).map(|a| a.executed).sum();
    let seed_replays = tel.journal.events.iter().filter(|e| e.pattern.is_none()).count();
    assert_eq!(executed + seed_replays, report.statements_executed);

    // The JSONL journal round-trips the epoch records exactly.
    let trace = tel.to_trace(Some(profile.id.name()), report.statements_executed);
    let parsed = TraceFile::parse(&trace.to_jsonl()).expect("journal parses");
    assert_eq!(parsed.epochs, tel.epochs);
}
