//! End-to-end integration: the full SOFT pipeline across every crate.

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::engine::ExecOutcome;
use soft_repro::soft::campaign::{run_soft, CampaignConfig};

#[test]
fn soft_finds_real_corpus_bugs_with_valid_pocs() {
    // Moderate budget on a small target so the test stays fast.
    let profile = DialectProfile::build(DialectId::Monetdb);
    let report = run_soft(
        &profile,
        &CampaignConfig { max_statements: 30_000, per_seed_cap: 48, ..CampaignConfig::default() },
    );
    assert!(
        report.findings.len() >= 8,
        "expected a good share of MonetDB's 19 bugs, found {}",
        report.findings.len()
    );
    // Every finding's PoC must independently re-trigger exactly its fault
    // on a fresh engine (after the campaign's own prep is replayed).
    for f in &report.findings {
        let mut engine = profile.engine();
        for prep in soft_repro::dialects::seeds::SHARED_PREP {
            let _ = engine.execute(prep);
        }
        match engine.execute(&f.poc) {
            ExecOutcome::Crash(c) => {
                assert_eq!(c.fault_id, f.fault_id, "PoC {} re-fired a different fault", f.poc)
            }
            other => panic!("PoC {} did not reproduce: {other:?}", f.poc),
        }
    }
}

#[test]
fn findings_metadata_is_consistent_with_the_corpus() {
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let report = run_soft(
        &profile,
        &CampaignConfig { max_statements: 40_000, per_seed_cap: 48, ..CampaignConfig::default() },
    );
    for f in &report.findings {
        let spec = profile
            .faults
            .iter()
            .find(|c| c.spec.id == f.fault_id)
            .map(|c| &c.spec)
            .expect("finding refers to a corpus fault");
        assert_eq!(f.kind.crash(), Some(spec.kind));
        assert_eq!(f.credited_pattern, spec.pattern);
        assert_eq!(f.category, spec.category);
        assert_eq!(f.fixed, spec.fixed);
    }
}

#[test]
fn fixed_engine_survives_every_found_poc() {
    // The differential check: the same PoCs must not crash the fault-free
    // ("patched") build.
    let profile = DialectProfile::build(DialectId::Duckdb);
    let report = run_soft(
        &profile,
        &CampaignConfig { max_statements: 25_000, per_seed_cap: 32, ..CampaignConfig::default() },
    );
    let mut patched = profile.engine_without_faults();
    for prep in soft_repro::dialects::seeds::SHARED_PREP {
        let _ = patched.execute(prep);
    }
    for f in &report.findings {
        let out = patched.execute(&f.poc);
        assert!(!out.is_crash(), "patched engine crashed on {}", f.poc);
    }
}

#[test]
fn crash_signature_deduplication_works() {
    // Running the same witness twice yields one crash log entry per run but
    // campaigns deduplicate by fault id.
    let profile = DialectProfile::build(DialectId::Postgres);
    let witness = &profile.faults[0].witness;
    let mut engine = profile.engine();
    let a = engine.execute(witness);
    let b = engine.execute(witness);
    assert!(a.is_crash() && b.is_crash());
    assert_eq!(engine.crash_log().len(), 2);
    assert_eq!(engine.crash_log()[0].fault_id, engine.crash_log()[1].fault_id);
}

#[test]
fn false_positive_class_stays_out_of_findings() {
    // REPEAT('a', 9999999999) must be a resource-limit error everywhere,
    // never a bug finding (the paper's 7 FPs).
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        let mut engine = profile.engine();
        let out = engine.execute("SELECT REPEAT('a', 9999999999)");
        match out {
            ExecOutcome::Error(soft_repro::engine::SqlError::ResourceLimit(_)) => {}
            other => panic!("{id:?}: unexpected {other:?}"),
        }
    }
}

#[test]
fn whole_corpus_is_discoverable_by_witnesses() {
    // The reachability property behind the 132/132 headline: every fault has
    // a pattern-shaped witness that fires it.
    let mut total = 0;
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        for fault in &profile.faults {
            let mut engine = profile.engine();
            let out = engine.execute(&fault.witness);
            assert!(out.is_crash(), "{}: witness failed", fault.spec.id);
            total += 1;
        }
    }
    assert_eq!(total, 132);
}

#[test]
fn campaign_pocs_minimize_and_still_reproduce() {
    use soft_repro::soft::minimize::minimize;
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let report = run_soft(
        &profile,
        &CampaignConfig { max_statements: 30_000, per_seed_cap: 32, ..CampaignConfig::default() },
    );
    assert!(!report.findings.is_empty());
    for f in &report.findings {
        let minimized = minimize(&f.poc, || {
            let mut e = profile.engine();
            for prep in soft_repro::dialects::seeds::SHARED_PREP {
                let _ = e.execute(prep);
            }
            e
        });
        assert!(minimized.len() <= f.poc.len());
        let mut e = profile.engine();
        for prep in soft_repro::dialects::seeds::SHARED_PREP {
            let _ = e.execute(prep);
        }
        match e.execute(&minimized) {
            ExecOutcome::Crash(c) => assert_eq!(c.fault_id, f.fault_id, "{minimized}"),
            other => panic!("{minimized}: {other:?}"),
        }
    }
}
