//! Integration test for crash-forensics bundles: a full campaign's findings
//! are bundled to disk, read back, and every PoC is replayed against a
//! freshly built profile — the triage contract end to end.

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::obs::Bundle;
use soft_repro::soft::campaign::{run_soft, CampaignConfig};
use soft_repro::soft::forensics::{replay_all, replay_bundle, write_campaign_bundles};
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("soft-forensics-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Campaign → bundles → read back → replay, over every finding of a
/// realistic ClickHouse run. Each bundle must carry its full provenance,
/// its minimized PoC must still fire the recorded fault, and the directory
/// listing must round-trip losslessly.
#[test]
fn every_campaign_finding_bundles_and_replays() {
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = CampaignConfig {
        max_statements: 60_000,
        per_seed_cap: 48,
        ..CampaignConfig::default()
    };
    let report = run_soft(&profile, &cfg);
    assert!(!report.findings.is_empty(), "campaign must find bugs to bundle");

    let root = temp_root("roundtrip");
    let dirs = write_campaign_bundles(&profile, &report, &root).expect("bundles written");
    assert_eq!(dirs.len(), report.findings.len());
    for dir in &dirs {
        for file in ["meta.json", "poc.sql", "original.sql"] {
            assert!(dir.join(file).is_file(), "missing {file} in {}", dir.display());
        }
    }

    // Read back: one bundle per finding, sorted by fault id, all fields
    // populated from the finding's provenance.
    let bundles = Bundle::read_all(&root).expect("findings root reads back");
    assert_eq!(bundles.len(), report.findings.len());
    assert!(bundles.windows(2).all(|w| w[0].fault_id < w[1].fault_id));
    for bundle in &bundles {
        let finding = report
            .findings
            .iter()
            .find(|f| f.fault_id == bundle.fault_id)
            .expect("bundle corresponds to a finding");
        assert_eq!(bundle.dialect, "ClickHouse");
        assert_eq!(bundle.kind, finding.kind.abbrev());
        assert_eq!(bundle.stage, finding.stage.to_string());
        assert_eq!(bundle.original, finding.poc);
        assert_eq!(bundle.statements_until_found, finding.statements_until_found);
        assert!(bundle.poc.len() <= bundle.original.len(), "minimization grew the PoC");
        assert!(
            bundle.bucket.starts_with("clickhouse/"),
            "bucket key must lead with the dialect key: {}",
            bundle.bucket
        );
        assert!(
            bundle.replay.contains(&bundle.dir_name()),
            "replay command must point at the bundle directory"
        );
        // The contract itself: the minimized PoC still fires this fault.
        replay_bundle(bundle).unwrap_or_else(|e| panic!("replay failed: {e}"));
    }

    // The batch replay API agrees.
    assert_eq!(replay_all(&root), Ok(bundles.len()));

    // Tampering is detected: breaking one PoC fails the batch.
    let victim = &dirs[0];
    std::fs::write(victim.join("poc.sql"), "SELECT 1\n").expect("tamper");
    let failures = replay_all(&root).expect_err("tampered bundle must fail replay");
    assert_eq!(failures.len(), 1);
    assert!(failures[0].contains("no longer crashes"), "{failures:?}");

    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// Wrong-result findings ride the same triage pipeline: an oracles-on
/// campaign's logic findings bundle to disk with their oracle provenance
/// (family label, expected/actual verdict), their PoCs minimize under the
/// oracle's verdict, and `replay_all` re-judges them through the recorded
/// oracle family alongside the crash bundles.
#[test]
fn logic_findings_bundle_with_oracle_provenance_and_replay() {
    use soft_repro::soft::OracleConfig;

    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = CampaignConfig {
        max_statements: 3_000,
        per_seed_cap: 4,
        oracles: OracleConfig::on(),
        ..CampaignConfig::default()
    };
    let report = run_soft(&profile, &cfg);
    assert!(report.logic_count() > 0, "the shipped ClickHouse quirk must be flagged");

    let root = temp_root("logic");
    write_campaign_bundles(&profile, &report, &root).expect("bundles written");
    let bundles = Bundle::read_all(&root).expect("findings root reads back");
    assert_eq!(bundles.len(), report.findings.len());

    let logic: Vec<_> = bundles.iter().filter(|b| b.kind == "LOGIC").collect();
    assert_eq!(logic.len(), report.logic_count());
    for bundle in &logic {
        assert!(
            bundle.oracle.is_some() && bundle.expected.is_some() && bundle.actual.is_some(),
            "{}: logic bundle lost its oracle provenance",
            bundle.fault_id
        );
        assert_ne!(bundle.expected, bundle.actual, "{}: vacuous verdict", bundle.fault_id);
    }
    // Crash bundles never grow the oracle fields.
    for bundle in bundles.iter().filter(|b| b.kind != "LOGIC") {
        assert!(bundle.oracle.is_none(), "{}: crash bundle grew a verdict", bundle.fault_id);
    }

    // One batch replay covers both planes.
    assert_eq!(replay_all(&root), Ok(bundles.len()));
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// Bundles work across dialects: a second target's findings replay too,
/// and its bundles never collide with another dialect's directory names.
#[test]
fn bundles_replay_for_a_second_dialect() {
    let profile = DialectProfile::build(DialectId::Monetdb);
    let cfg = CampaignConfig {
        max_statements: 60_000,
        per_seed_cap: 48,
        ..CampaignConfig::default()
    };
    let report = run_soft(&profile, &cfg);
    assert!(!report.findings.is_empty(), "campaign must find bugs to bundle");
    let root = temp_root("monetdb");
    write_campaign_bundles(&profile, &report, &root).expect("bundles written");
    assert_eq!(replay_all(&root), Ok(report.findings.len()));
    for bundle in Bundle::read_all(&root).expect("reads back") {
        assert_eq!(bundle.dialect, "MonetDB");
        assert!(bundle.bucket.starts_with("monetdb/"));
    }
    std::fs::remove_dir_all(&root).expect("cleanup");
}
