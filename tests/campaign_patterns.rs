//! Regression tests for the campaign's pattern coverage and determinism.
//!
//! The seed of this repo silently ran nine of the ten patterns: `P1_1` was
//! missing from the campaign's `PATTERN_ORDER`, so a default campaign never
//! generated a single whole-vector boundary probe and the ablation's "P1"
//! arm quietly meant "P1 minus P1.1". These tests pin the fix.

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::engine::fault::PatternId;
use soft_repro::soft::campaign::{run_soft, run_soft_parallel, CampaignConfig};

fn config() -> CampaignConfig {
    // Small statement budget: generation (what these tests observe) runs for
    // every active pattern before budgeting, so the budget only bounds the
    // execution phase.
    CampaignConfig { max_statements: 4_000, per_seed_cap: 8, ..CampaignConfig::default() }
}

/// A default campaign generates cases for all ten patterns — no pattern is
/// silently dropped on the way from `PatternId::ALL` to the round-robin.
#[test]
fn default_campaign_generates_cases_for_all_ten_patterns() {
    let profile = DialectProfile::build(DialectId::Postgres);
    let report = run_soft(&profile, &config());

    let reported: Vec<PatternId> =
        report.generated_per_pattern.iter().map(|&(p, _)| p).collect();
    for pattern in PatternId::ALL {
        assert!(
            reported.contains(&pattern),
            "pattern {} missing from generated_per_pattern: {reported:?}",
            pattern.label()
        );
    }
    assert_eq!(report.generated_per_pattern.len(), PatternId::ALL.len());

    for &(pattern, count) in &report.generated_per_pattern {
        assert!(count > 0, "pattern {} generated zero cases", pattern.label());
    }
}

/// The restriction knob still works: a restricted campaign reports exactly
/// the requested patterns, in `PATTERN_ORDER` order.
#[test]
fn restricted_campaign_reports_only_requested_patterns() {
    let profile = DialectProfile::build(DialectId::Postgres);
    let cfg = CampaignConfig {
        patterns: Some(vec![PatternId::P1_1, PatternId::P2_2]),
        ..config()
    };
    let report = run_soft(&profile, &cfg);
    let reported: Vec<PatternId> =
        report.generated_per_pattern.iter().map(|&(p, _)| p).collect();
    assert_eq!(reported, vec![PatternId::P1_1, PatternId::P2_2]);
}

/// Two campaigns with the same configuration produce identical reports —
/// the whole `CampaignReport`, not just summary counters. This is the
/// hermetic-build guarantee: no RNG, clock, or map-iteration order leaks
/// into campaign results.
#[test]
fn same_seed_campaigns_produce_identical_reports() {
    for id in [DialectId::Postgres, DialectId::Monetdb] {
        let profile = DialectProfile::build(id);
        let a = run_soft(&profile, &config());
        let b = run_soft(&profile, &config());
        assert_eq!(a, b, "campaign against {} is not deterministic", id.name());
    }
}

/// The sharded runner's core contract: the worker count is invisible in the
/// report. Every worker count — including a prime one that leaves a ragged
/// final shard and more workers than shards — produces a report equal to the
/// serial `run_soft` baseline, for the full `CampaignReport` (findings order,
/// per-shard stats, coverage, counters).
#[test]
fn worker_count_never_changes_the_report() {
    for id in [DialectId::Postgres, DialectId::Monetdb] {
        let profile = DialectProfile::build(id);
        let serial = run_soft(&profile, &config());
        assert!(
            serial.shards.len() > 1,
            "budget too small to exercise the shard merge on {}",
            id.name()
        );
        for workers in [1usize, 2, 4, 7] {
            let parallel = run_soft_parallel(&profile, &config(), workers);
            assert_eq!(
                serial,
                parallel,
                "{} workers diverged from serial on {}",
                workers,
                id.name()
            );
        }
    }
}

/// Columnar batch execution is a pure execution strategy: at every worker
/// count — including the ragged-shard prime — the batch-on report (the
/// default) equals the batch-off report byte for byte, findings order and
/// per-shard counters included. Checked with the wrong-result oracles off
/// and armed, since the batch demux feeds the multi-form oracle its
/// reference outcome.
#[test]
fn batch_execution_never_changes_the_report() {
    use soft_repro::soft::OracleConfig;
    for id in [DialectId::Clickhouse, DialectId::Monetdb] {
        let profile = DialectProfile::build(id);
        for oracles in [OracleConfig::Off, OracleConfig::on()] {
            let scalar = run_soft(
                &profile,
                &CampaignConfig { batch: false, oracles, ..config() },
            );
            let batch_cfg = CampaignConfig { batch: true, oracles, ..config() };
            for workers in [1usize, 2, 4, 7] {
                let batched = run_soft_parallel(&profile, &batch_cfg, workers);
                assert_eq!(
                    scalar,
                    batched,
                    "batch execution leaked into the report on {} ({workers} workers, \
                     oracles {})",
                    id.name(),
                    oracles.is_on(),
                );
            }
        }
    }
}

/// Batch-boundary edge shapes behave exactly like the scalar path: a shard
/// smaller than one batch window, shards of one statement (every group has
/// size 1), and a shard size that slices groups mid-window all produce the
/// scalar report.
#[test]
fn batch_edge_shard_sizes_match_the_scalar_path() {
    let profile = DialectProfile::build(DialectId::Clickhouse);
    for shard_statements in [1usize, 3, 97] {
        let scalar = run_soft(
            &profile,
            &CampaignConfig {
                max_statements: 600,
                per_seed_cap: 4,
                shard_statements,
                batch: false,
                ..CampaignConfig::default()
            },
        );
        let batched = run_soft(
            &profile,
            &CampaignConfig {
                max_statements: 600,
                per_seed_cap: 4,
                shard_statements,
                batch: true,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(scalar, batched, "shard size {shard_statements} diverged under batching");
    }
}

/// The campaign executes prepared ASTs, but its findings report rendered
/// SQL strings — replaying each reported PoC through the plain string path
/// on a fresh engine must reproduce exactly the reported fault, so the
/// prepared pipeline can never drift from the SQL it reports.
#[test]
fn reported_pocs_reproduce_their_faults_via_the_string_path() {
    use soft_repro::engine::ExecOutcome;
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = CampaignConfig {
        max_statements: 60_000,
        per_seed_cap: 48,
        ..CampaignConfig::default()
    };
    let report = run_soft(&profile, &cfg);
    assert!(!report.findings.is_empty(), "need findings to replay");
    let collection = soft_repro::soft::collect::collect(&profile);
    for finding in &report.findings {
        let mut engine = profile.engine();
        for stmt in &collection.preparation {
            let _ = engine.execute(&stmt.to_string());
        }
        match engine.execute(&finding.poc) {
            ExecOutcome::Crash(c) => assert_eq!(
                c.fault_id, finding.fault_id,
                "PoC `{}` replayed to a different fault",
                finding.poc
            ),
            other => panic!("PoC `{}` no longer crashes: {other:?}", finding.poc),
        }
    }
}

/// Shard stats in the report tile the statement stream exactly: offsets are
/// contiguous, lengths sum to `statements_executed`, and per-shard crash
/// counters sum to at least the number of unique findings.
#[test]
fn shard_stats_are_a_partition_of_the_campaign() {
    let profile = DialectProfile::build(DialectId::Monetdb);
    let report = run_soft(&profile, &config());
    let mut next_offset = 0usize;
    let mut statements = 0usize;
    let mut crashes = 0usize;
    for (i, shard) in report.shards.iter().enumerate() {
        assert_eq!(shard.shard, i);
        assert_eq!(shard.start_offset, next_offset);
        next_offset += shard.statements;
        statements += shard.statements;
        crashes += shard.crashes;
    }
    assert_eq!(statements, report.statements_executed);
    assert!(crashes >= report.findings.len());
}
