//! The paper's quantitative skeleton, asserted end-to-end: if any of these
//! fail, the reproduction no longer matches the published numbers.

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::study::{analysis, studied_bugs};

#[test]
fn study_headline_numbers() {
    let bugs = studied_bugs();
    assert_eq!(bugs.len(), 318);
    let rc = analysis::root_causes(&bugs);
    assert_eq!(rc.boundary_total(), 278, "87.4% boundary share");
    assert_eq!((rc.literal, rc.casting, rc.nested), (94, 74, 110));
    assert_eq!(analysis::finding3(&bugs), 278, "Finding 3");
    assert_eq!(analysis::total_occurrences(&bugs), 508, "Finding 2");
    let f1 = analysis::finding1(&bugs);
    assert_eq!(
        (f1.with_backtrace, f1.execution, f1.optimization, f1.parsing),
        (230, 161, 45, 24)
    );
}

#[test]
fn table4_corpus_totals() {
    let per_dialect: Vec<(DialectId, usize)> = DialectId::ALL
        .iter()
        .map(|id| (*id, DialectProfile::build(*id).faults.len()))
        .collect();
    let expect = [1usize, 16, 24, 6, 19, 21, 45];
    for ((id, n), want) in per_dialect.iter().zip(expect) {
        assert_eq!(*n, want, "{id:?}");
    }
    let total: usize = per_dialect.iter().map(|(_, n)| n).sum();
    assert_eq!(total, 132);
}

#[test]
fn pattern_and_fix_totals() {
    let mut groups = [0usize; 3];
    let mut fixed = 0usize;
    for id in DialectId::ALL {
        for f in DialectProfile::build(id).faults {
            groups[f.spec.pattern.group() as usize - 1] += 1;
            fixed += usize::from(f.spec.fixed);
        }
    }
    assert_eq!(groups, [56, 28, 48], "P1.x/P2.x/P3.x split of §7.3");
    assert_eq!(fixed, 97, "97 fixed");
}

#[test]
fn postgres_strictness_story() {
    // §7.3: PostgreSQL's strict type system explains its single bug. Our
    // strict profile must reject the implicit coercions the lenient ones
    // accept.
    let pg = DialectProfile::build(DialectId::Postgres);
    let my = DialectProfile::build(DialectId::Mysql);
    let mut pg_engine = pg.engine();
    let mut my_engine = my.engine();
    let sql = "SELECT UPPER(123)";
    assert!(matches!(
        pg_engine.execute(sql),
        soft_repro::engine::ExecOutcome::Error(_)
    ));
    assert!(matches!(
        my_engine.execute(sql),
        soft_repro::engine::ExecOutcome::Rows(_)
    ));
    assert_eq!(pg.faults.len(), 1);
}

#[test]
fn clickhouse_has_the_largest_catalog() {
    // The Table 5 ordering anchor.
    let sizes: Vec<(DialectId, usize)> = DialectId::ALL
        .iter()
        .map(|id| (*id, DialectProfile::build(*id).registry.name_count()))
        .collect();
    let ch = sizes
        .iter()
        .find(|(id, _)| *id == DialectId::Clickhouse)
        .expect("clickhouse present")
        .1;
    for (id, n) in &sizes {
        if *id != DialectId::Clickhouse {
            assert!(ch > *n, "{id:?} ({n}) >= ClickHouse ({ch})");
        }
    }
}

#[test]
fn studied_pocs_execute_on_the_reference_engine() {
    // Every real PoC attached to the study dataset parses and runs without
    // crashing the guarded engine.
    let mut e = soft_repro::engine::Engine::with_default_functions(Default::default());
    let mut count = 0;
    for bug in studied_bugs() {
        if let Some(poc) = &bug.poc {
            let out = e.execute(poc);
            assert!(!out.is_crash(), "{}: {poc} crashed", bug.reference);
            count += 1;
        }
    }
    assert!(count >= 5, "expected several exemplar PoCs, got {count}");
}
