//! Golden tests for the PoC reducer: three recorded campaign-style PoCs pin
//! their exact minimal form.
//!
//! The reducer's output is part of the reporting surface (§7.1 logs the
//! statements filed upstream), so it must stay byte-stable: a quietly
//! changed simplification order would churn every previously filed PoC.
//! Each fixture is an inflated statement as a campaign would record it —
//! the crashing expression buried among decoy projections, a WHERE, an
//! ORDER BY, and a LIMIT — and the golden string is the fixpoint the
//! reducer reaches today.

use soft_repro::dialects::seeds::SHARED_PREP;
use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::engine::{Engine, ExecOutcome};
use soft_repro::soft::minimize::minimize;

struct Golden {
    dialect: DialectId,
    fault_id: &'static str,
    recorded: &'static str,
    minimal: &'static str,
}

const GOLDENS: &[Golden] = &[
    // Clause dropping only: the aggregate call itself is already minimal.
    Golden {
        dialect: DialectId::Postgres,
        fault_id: "postgresql-aggregate-hbof-listing8-0",
        recorded: "SELECT JSONB_OBJECT_AGG(DISTINCT 'a', 'abc'), UPPER('decoy-column'), \
                   1234567890 FROM t1 WHERE a > 0 ORDER BY a LIMIT 99",
        minimal: "SELECT JSONB_OBJECT_AGG(DISTINCT 'a', 'abc') FROM t1",
    },
    // Clause dropping plus literal shortening: the WKT string halves to
    // 'POINT' while still tripping the array-element type confusion.
    Golden {
        dialect: DialectId::Clickhouse,
        fault_id: "clickhouse-array-npd-p2_3-1",
        recorded: "SELECT array_append('POINT(1 2)', 3), UPPER('decoy-column'), \
                   1234567890 FROM t1 WHERE a > 0 ORDER BY a LIMIT 99",
        minimal: "SELECT array_append('POINT', 3) FROM t1",
    },
    // A nested subquery argument the reducer must preserve: replacing or
    // unwrapping it loses the overflow value that triggers the fault.
    Golden {
        dialect: DialectId::Monetdb,
        fault_id: "monetdb-aggregate-npd-p2_2-2",
        recorded: "SELECT bit_or((SELECT 1 UNION ALL SELECT 1e200 LIMIT 1)), \
                   UPPER('decoy-column'), 1234567890 FROM t1 WHERE a > 0 ORDER BY a LIMIT 99",
        minimal: "SELECT bit_or((SELECT 1 UNION ALL SELECT 1e200 LIMIT 1)) FROM t1",
    },
];

fn prepared_engine(profile: &DialectProfile) -> Engine {
    let mut e = profile.engine();
    for prep in SHARED_PREP {
        let _ = e.execute(prep);
    }
    e
}

#[test]
fn recorded_pocs_minimize_to_their_pinned_form() {
    for g in GOLDENS {
        let profile = DialectProfile::build(g.dialect);
        // The recorded PoC fires the expected fault in the first place.
        match prepared_engine(&profile).execute(g.recorded) {
            ExecOutcome::Crash(c) => assert_eq!(
                c.fault_id, g.fault_id,
                "recorded PoC for {} fires the wrong fault",
                g.fault_id
            ),
            other => panic!("recorded PoC for {} does not crash: {other:?}", g.fault_id),
        }
        let minimized = minimize(g.recorded, || prepared_engine(&profile));
        assert_eq!(
            minimized, g.minimal,
            "reducer output drifted for {} — if the new form is intentional, \
             re-pin the golden string",
            g.fault_id
        );
    }
}

#[test]
fn pinned_minimal_forms_still_fire_their_fault() {
    for g in GOLDENS {
        let profile = DialectProfile::build(g.dialect);
        match prepared_engine(&profile).execute(g.minimal) {
            ExecOutcome::Crash(c) => assert_eq!(
                c.fault_id, g.fault_id,
                "minimal form `{}` drifted to another fault",
                g.minimal
            ),
            other => panic!("minimal form `{}` no longer crashes: {other:?}", g.minimal),
        }
        assert!(g.minimal.len() < g.recorded.len());
    }
}

#[test]
fn pinned_minimal_forms_are_fixpoints_of_the_reducer() {
    // Minimizing an already-minimal PoC must be the identity — otherwise
    // the golden strings above are not actually fixpoints.
    for g in GOLDENS {
        let profile = DialectProfile::build(g.dialect);
        let again = minimize(g.minimal, || prepared_engine(&profile));
        assert_eq!(again, g.minimal, "{} is not a reducer fixpoint", g.fault_id);
    }
}

#[test]
fn pinned_minimal_forms_survive_the_rendered_round_trip() {
    // The reducer accepts a candidate only after its *rendering* re-enters
    // the string path and crashes identically — the shipped PoC is text, and
    // `repro replay` re-parses it. Pin that contract on the goldens: each
    // minimal form re-parses to an AST that renders back to the exact same
    // bytes, and that rendering still fires the recorded fault.
    for g in GOLDENS {
        let profile = DialectProfile::build(g.dialect);
        let stmt = soft_repro::parser::parse_statement(g.minimal).expect("minimal form parses");
        let rendered = stmt.to_string();
        assert_eq!(
            rendered, g.minimal,
            "{}: rendering drifted from the pinned text — the reducer's \
             AST-only fast path would have shipped a different statement",
            g.fault_id
        );
        match prepared_engine(&profile).execute(&rendered) {
            ExecOutcome::Crash(c) => assert_eq!(c.fault_id, g.fault_id),
            other => panic!("round-tripped `{rendered}` no longer crashes: {other:?}"),
        }
    }
}

#[test]
fn logic_poc_minimizes_to_its_pinned_form() {
    // The wrong-result plane gets the same golden treatment: the shipped
    // ClickHouse provenance quirk, buried in campaign-style noise, reduces
    // to a pinned one-liner that still trips the multi-form oracle.
    use soft_repro::soft::minimize::minimize_logic;
    use soft_repro::soft::oracle::multi_form_check;

    let profile = DialectProfile::build(DialectId::Clickhouse);
    let recorded = "SELECT toString(42), UPPER('decoy-column'), 1234567890 LIMIT 99";
    let minimized = minimize_logic(recorded, || prepared_engine(&profile));
    assert_eq!(
        minimized, "SELECT toString(42)",
        "logic reducer output drifted — if the new form is intentional, re-pin it"
    );
    let stmt = soft_repro::parser::parse_statement(&minimized).expect("parses");
    assert!(
        multi_form_check(&prepared_engine(&profile), &minimized, &stmt).is_some(),
        "pinned logic PoC no longer trips the oracle"
    );
    // And it is a fixpoint, like the crash goldens.
    assert_eq!(minimize_logic(&minimized, || prepared_engine(&profile)), minimized);
}
