//! Integration tests for the persistent seed repository
//! (`soft_core::repo`): one campaign's distilled findings feed the next.
//!
//! The loop under test is the operator workflow end to end: campaign →
//! forensics bundles → `ingest` → a later campaign consuming the
//! repository via [`CampaignConfig::repository`]. Same-dialect PoCs replay
//! as phase-1 seeds (regression tripwires that re-fire immediately);
//! boundary literals extend the generation pool cross-dialect; and the
//! repository — like everything else in the planner — never breaks the
//! worker-count invariance.

use soft_repro::obs::Bundle;
use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::soft::campaign::{run_soft_parallel, CampaignConfig};
use soft_repro::soft::{write_campaign_bundles, ScheduleConfig, SeedRepository};
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("soft-repo-it-{tag}-{}", std::process::id()))
}

/// Builds a repository from a small ClickHouse campaign's bundles.
fn seeded_repository(tag: &str) -> (SeedRepository, Vec<String>) {
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = CampaignConfig {
        max_statements: 4_000,
        per_seed_cap: 8,
        ..CampaignConfig::default()
    };
    let report = run_soft_parallel(&profile, &cfg, 2);
    assert!(!report.findings.is_empty(), "the donor campaign must find bugs");

    let findings_dir = tmp(&format!("{tag}-findings"));
    let repo_dir = tmp(&format!("{tag}-repo"));
    let _ = std::fs::remove_dir_all(&findings_dir);
    let _ = std::fs::remove_dir_all(&repo_dir);
    write_campaign_bundles(&profile, &report, &findings_dir).expect("bundles write");
    let bundles = Bundle::read_all(&findings_dir).expect("bundles read back");

    let mut repo = SeedRepository::init(&repo_dir).expect("repo init");
    let stats = repo.ingest(&bundles).expect("ingest");
    assert_eq!(stats.added, bundles.len());
    std::fs::remove_dir_all(&findings_dir).expect("cleanup findings");
    let fault_ids = report.findings.iter().map(|f| f.fault_id.clone()).collect();
    (repo, fault_ids)
}

/// Same-dialect consumption: every ingested PoC replays as a phase-1 seed,
/// so a tiny follow-up campaign re-confirms every donor fault — the
/// regression-tripwire property — even though its own budget is far below
/// what the donor needed.
#[test]
fn repository_pocs_refire_as_regression_seeds() {
    let (repo, fault_ids) = seeded_repository("refire");
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = CampaignConfig {
        max_statements: 1_500,
        per_seed_cap: 4,
        repository: Some(repo.root().to_path_buf()),
        ..CampaignConfig::default()
    };
    let report = run_soft_parallel(&profile, &cfg, 2);
    for id in &fault_ids {
        assert!(
            report.findings.iter().any(|f| &f.fault_id == id),
            "ingested fault {id} must re-fire from its repository seed; found: {:?}",
            report.findings.iter().map(|f| &f.fault_id).collect::<Vec<_>>()
        );
    }
    std::fs::remove_dir_all(repo.root()).expect("cleanup repo");
}

/// Cross-dialect consumption keeps the campaign's determinism contract: a
/// MonetDB campaign fed ClickHouse-derived literals (with the scheduler on
/// for good measure) produces a byte-identical report at any worker count,
/// and the repository changes the stream relative to a repo-less run only
/// through the planner — never through execution-time state.
#[test]
fn repository_consumption_keeps_worker_invariance() {
    let (repo, _) = seeded_repository("invariance");
    let profile = DialectProfile::build(DialectId::Monetdb);
    let cfg = CampaignConfig {
        max_statements: 2_000,
        per_seed_cap: 8,
        repository: Some(repo.root().to_path_buf()),
        schedule: ScheduleConfig::on(),
        ..CampaignConfig::default()
    };
    let serial = run_soft_parallel(&profile, &cfg, 1);
    for workers in [3usize, 5] {
        assert_eq!(
            run_soft_parallel(&profile, &cfg, workers),
            serial,
            "repository + scheduler leaked the worker count into the report"
        );
    }
    std::fs::remove_dir_all(repo.root()).expect("cleanup repo");
}

/// A missing or malformed repository is reported and skipped — the
/// campaign still runs, identical to a repo-less one.
#[test]
fn unreadable_repository_is_ignored() {
    let profile = DialectProfile::build(DialectId::Monetdb);
    let base = CampaignConfig {
        max_statements: 1_000,
        per_seed_cap: 4,
        ..CampaignConfig::default()
    };
    let with_missing = CampaignConfig {
        repository: Some(tmp("does-not-exist")),
        ..base.clone()
    };
    assert_eq!(
        run_soft_parallel(&profile, &with_missing, 2),
        run_soft_parallel(&profile, &base, 2),
        "a skipped repository must leave the campaign untouched"
    );
}
