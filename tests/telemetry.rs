//! Integration tests for the campaign observability layer (`soft-obs`).
//!
//! Two guarantees are pinned here, on top of the unit tests inside the
//! crates:
//!
//! 1. **Telemetry determinism** — with the ledger on, a parallel run is
//!    byte-identical to the serial run at every worker count: the whole
//!    [`CampaignReport`] compares equal (its `PartialEq` deliberately
//!    includes the journal, the yield metrics, and the growth curves), and
//!    the journal matches event for event. Checked on two dialects.
//! 2. **Golden trace rendering** — `repro trace` over a small fixed
//!    campaign's journal renders exactly the expected report, so the
//!    offline analyzer and the live campaign can never drift apart.

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::obs::{LiveMetrics, TraceFile, WatchdogConfig};
use soft_repro::soft::campaign::{
    run_soft_parallel, run_soft_parallel_live, run_soft_parallel_timed, CampaignConfig, LivePlane,
};
use soft_repro::soft::{TelemetryConfig, TelemetryOptions};
use std::sync::Arc;

fn telemetry_config(budget: usize) -> CampaignConfig {
    CampaignConfig {
        max_statements: budget,
        per_seed_cap: 8,
        telemetry: TelemetryConfig::On(TelemetryOptions {
            snapshot_interval: budget / 8,
            journal_path: None,
        }),
        ..CampaignConfig::default()
    }
}

/// The telemetry-on report — journal, yields, and curves included in the
/// equality — is identical for 1, 2, 4, and 7 workers, on two dialects.
#[test]
fn telemetry_is_byte_identical_across_worker_counts() {
    for dialect in [DialectId::Postgres, DialectId::Monetdb] {
        let profile = DialectProfile::build(dialect);
        let cfg = telemetry_config(4_000);
        let serial = run_soft_parallel(&profile, &cfg, 1);
        let telemetry = serial.telemetry.as_ref().expect("telemetry was on");
        assert_eq!(telemetry.journal.events.len(), serial.statements_executed);

        for workers in [2usize, 4, 7] {
            let parallel = run_soft_parallel(&profile, &cfg, workers);
            // Event-for-event journal equality first, for a sharper failure
            // than the whole-report assert below.
            let par_telemetry = parallel.telemetry.as_ref().expect("telemetry was on");
            for (serial_event, parallel_event) in
                telemetry.journal.events.iter().zip(&par_telemetry.journal.events)
            {
                assert_eq!(
                    serial_event, parallel_event,
                    "{} at {workers} workers diverged at statement {}",
                    dialect.name(),
                    serial_event.index
                );
            }
            assert_eq!(
                serial,
                parallel,
                "{} telemetry report diverged at {workers} workers",
                dialect.name()
            );
        }
    }
}

/// The live plane is a pure observer: with live metrics *and* the shard
/// watchdog attached, the report is still byte-identical to the plain
/// serial run at 1, 2, 4, and 7 workers — and the live registry's final
/// counters agree with the report's deterministic tallies every time.
#[test]
fn live_plane_and_watchdog_preserve_byte_identical_reports() {
    let profile = DialectProfile::build(DialectId::Postgres);
    let cfg = telemetry_config(4_000);
    let reference = run_soft_parallel(&profile, &cfg, 1);
    for workers in [1usize, 2, 4, 7] {
        let metrics = Arc::new(LiveMetrics::new());
        let plane = LivePlane {
            metrics: Some(Arc::clone(&metrics)),
            watchdog: Some(WatchdogConfig::default()),
            spans: false,
        };
        let run = run_soft_parallel_live(&profile, &cfg, workers, &plane);
        assert_eq!(
            reference, run.report,
            "live plane leaked into the report at {workers} workers"
        );
        let watchdog = run.watchdog.expect("watchdog was configured");
        assert!(
            watchdog.stalls.is_empty(),
            "deterministic in-process shards cannot stall: {:?}",
            watchdog.stalls
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.statements as usize, run.report.statements_executed);
        assert_eq!(snap.unique_faults as usize, run.report.findings.len());
        assert_eq!(snap.shards_done as usize, run.report.shards.len());
    }
}

/// The flight recorder is a pure observer even with everything else
/// armed: oracles, telemetry, the epoch scheduler, batching, live
/// metrics, the watchdog, and spans all on, the report is byte-identical
/// to the bare serial run at 1, 2, 4, and 7 workers — and every armed run
/// yields a non-empty span trace whose Chrome export is valid
/// trace-event JSON.
#[test]
fn flight_recorder_preserves_byte_identical_reports() {
    use soft_repro::soft::{OracleConfig, ScheduleConfig, ScheduleOptions};
    let profile = DialectProfile::build(DialectId::Monetdb);
    let cfg = CampaignConfig {
        oracles: OracleConfig::on(),
        schedule: ScheduleConfig::On(ScheduleOptions { epochs: 4, ..ScheduleOptions::default() }),
        batch: true,
        ..telemetry_config(4_000)
    };
    let reference = run_soft_parallel(&profile, &cfg, 1);
    for workers in [1usize, 2, 4, 7] {
        let plane = LivePlane {
            metrics: Some(Arc::new(LiveMetrics::new())),
            watchdog: Some(WatchdogConfig::default()),
            spans: true,
        };
        let run = run_soft_parallel_live(&profile, &cfg, workers, &plane);
        assert_eq!(
            reference, run.report,
            "flight recorder leaked into the report at {workers} workers"
        );
        let spans = run.spans.as_ref().expect("spans were armed");
        assert!(!spans.spans.is_empty(), "armed recorder produced no spans");
        // Worker w's shards record on tracks >= 1; track 0 is the campaign
        // thread. Every record must cite a known track.
        assert!(spans.spans.iter().any(|s| s.name == "campaign"), "campaign span missing");
        assert!(spans.spans.iter().any(|s| s.name == "shard"), "shard spans missing");
        assert!(spans.spans.iter().any(|s| s.name == "epoch"), "epoch spans missing");
        let json = spans.to_chrome_json("test");
        let events = soft_repro::obs::span::validate_json(&json)
            .expect("chrome export is valid trace-event JSON");
        assert!(events > spans.spans.len(), "metadata events missing from the export");
    }
}

/// The stage latency histograms are genuinely disjoint under prepared
/// execution: the parse histogram is the central prepare pass (one sample
/// per planned statement), execute times only `execute_prepared`, and the
/// sample counts reconcile exactly with the report — at every worker count,
/// since preparation happens once, before sharding.
#[test]
fn stage_latencies_are_disjoint_and_fully_sampled() {
    let profile = DialectProfile::build(DialectId::Monetdb);
    let cfg = telemetry_config(4_000);
    for workers in [1usize, 4] {
        let run = run_soft_parallel_timed(&profile, &cfg, workers);
        let latency = run.stage_latency.as_ref().expect("telemetry was on");
        let report = &run.report;
        assert_eq!(latency.parse.samples() as usize, report.statements_executed);
        assert_eq!(latency.execute.samples(), latency.parse.samples());
        assert_eq!(latency.minimize.samples() as usize, report.findings.len());
        assert_eq!(latency.generate.samples() as usize, report.generated_per_pattern.len());
    }
}

/// Telemetry never perturbs the campaign: stripping the ledger off a
/// telemetry-on report recovers the Off-mode report exactly.
#[test]
fn telemetry_does_not_perturb_the_campaign() {
    let profile = DialectProfile::build(DialectId::Monetdb);
    let off_cfg = CampaignConfig {
        max_statements: 4_000,
        per_seed_cap: 8,
        ..CampaignConfig::default()
    };
    let off = run_soft_parallel(&profile, &off_cfg, 4);
    let mut on = run_soft_parallel(&profile, &telemetry_config(4_000), 4);
    on.telemetry = None;
    assert_eq!(off, on);
}

/// Columnar batching is invisible to the telemetry ledger: with the journal
/// and coverage snapshots on, the batch-on report (default) equals the
/// batch-off report byte for byte — events, snapshot curves, yields — at
/// 1, 2, 4 and 7 workers, with the oracles off and armed. The execute
/// histogram still carries one sample per statement (batched statements
/// record their amortized share of the group's wall-clock).
#[test]
fn batch_execution_is_byte_identical_under_telemetry() {
    use soft_repro::soft::OracleConfig;
    let profile = DialectProfile::build(DialectId::Clickhouse);
    for oracles in [OracleConfig::Off, OracleConfig::on()] {
        let scalar_cfg =
            CampaignConfig { batch: false, oracles, ..telemetry_config(3_000) };
        let batch_cfg = CampaignConfig { batch: true, oracles, ..telemetry_config(3_000) };
        let scalar = run_soft_parallel(&profile, &scalar_cfg, 1);
        for workers in [1usize, 2, 4, 7] {
            let run = run_soft_parallel_timed(&profile, &batch_cfg, workers);
            assert_eq!(
                scalar, run.report,
                "batching leaked into the telemetry report at {workers} workers \
                 (oracles {})",
                oracles.is_on()
            );
            let latency = run.stage_latency.as_ref().expect("telemetry was on");
            assert_eq!(
                latency.execute.samples() as usize,
                run.report.statements_executed,
                "batching must record one execute sample per statement"
            );
        }
    }
}

/// Golden `repro trace` output over a small fixed campaign: the JSONL
/// journal round-trips, and the analyzer renders the same surfaces the
/// live campaign printed. Pinned values come from the deterministic
/// DuckDB run at this exact budget; any planner / generator / telemetry
/// change that moves them is a semantic change and must be reviewed.
#[test]
fn trace_rendering_is_golden() {
    let profile = DialectProfile::build(DialectId::Duckdb);
    let budget = 2_000;
    let report = run_soft_parallel(&profile, &telemetry_config(budget), 3);
    let telemetry = report.telemetry.as_ref().expect("telemetry was on");

    // The journal survives the JSONL round trip byte for byte.
    let trace = telemetry.to_trace(Some(DialectId::Duckdb.name()), report.statements_executed);
    let jsonl = trace.to_jsonl();
    let reparsed = TraceFile::parse(&jsonl).expect("own journal parses");
    assert_eq!(trace, reparsed);
    assert_eq!(jsonl, reparsed.to_jsonl());

    // The analyzer's report over the reparsed journal.
    let rendered = soft_bench::render_trace(&reparsed);

    // Header: every statement journalled, outcome classes partition them.
    let first = rendered.lines().next().expect("non-empty report");
    assert_eq!(
        first,
        format!(
            "journal: DuckDB — {} events, {} unique faults",
            report.statements_executed,
            report.findings.len()
        )
    );
    let outcomes = rendered.lines().nth(1).expect("outcome line");
    assert!(outcomes.starts_with("outcomes: ok="), "got {outcomes:?}");
    let total: usize = outcomes
        .split_whitespace()
        .skip(1)
        .map(|kv| kv.split('=').nth(1).expect("k=v").parse::<usize>().expect("count"))
        .sum();
    assert_eq!(total, report.statements_executed);

    // The offline tables and curves are the live campaign's, verbatim.
    assert!(rendered.contains(telemetry.yields.render_pattern_table().as_str()));
    assert!(rendered.contains(telemetry.yields.render_category_table().as_str()));
    assert!(rendered.ends_with(telemetry.curves.render().as_str()));

    // And the run itself is reproducible: the golden anchor is the whole
    // rendered report being stable across a rerun at a different worker
    // count (full byte equality, not just the spot checks above).
    let rerun = run_soft_parallel(&profile, &telemetry_config(budget), 5);
    let rerun_trace = rerun
        .telemetry
        .as_ref()
        .expect("telemetry was on")
        .to_trace(Some(DialectId::Duckdb.name()), rerun.statements_executed);
    assert_eq!(soft_bench::render_trace(&rerun_trace), rendered);
}

/// Golden CSV export (`repro trace --csv`): over the same small DuckDB
/// journal, the four CSV files carry exactly the journal's yield tables and
/// growth curves, with stable headers — and the whole export is
/// byte-identical across worker counts, like every other telemetry surface.
#[test]
fn trace_csv_export_is_golden() {
    let profile = DialectProfile::build(DialectId::Duckdb);
    let budget = 2_000;
    let report = run_soft_parallel(&profile, &telemetry_config(budget), 3);
    let telemetry = report.telemetry.as_ref().expect("telemetry was on");
    let trace = telemetry.to_trace(Some(DialectId::Duckdb.name()), report.statements_executed);

    let files = soft_bench::trace_csv_exports(&trace);
    let names: Vec<&str> = files.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        ["pattern_yields.csv", "category_yields.csv", "coverage_curve.csv", "bug_curve.csv"]
    );
    let by_name = |name: &str| -> &str {
        &files.iter().find(|(n, _)| *n == name).expect("file present").1
    };

    // pattern_yields: header + one row per pattern in the yield ledger,
    // and the executed column reconciles with the journal.
    let patterns = by_name("pattern_yields.csv");
    let mut lines = patterns.lines();
    assert_eq!(
        lines.next(),
        Some("pattern,generated,executed,crashes,errors,resource_limits,logic_bugs,unique_bugs")
    );
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), telemetry.yields.per_pattern.len());
    let executed: usize = rows
        .iter()
        .map(|r| r.split(',').nth(2).expect("executed column").parse::<usize>().expect("count"))
        .sum();
    let seed_replays = telemetry.journal.events.iter().filter(|e| e.pattern.is_none()).count();
    assert_eq!(executed + seed_replays, report.statements_executed);

    // category_yields resolves (the header names DuckDB).
    let categories = by_name("category_yields.csv");
    assert!(categories.starts_with("category,executed,crashes,errors,logic_bugs,unique_bugs\n"));
    assert_eq!(categories.lines().count(), telemetry.yields.per_category.len() + 1);

    // Curves: one row per point, matching the telemetry surfaces exactly.
    let coverage = by_name("coverage_curve.csv");
    assert!(coverage.starts_with("statements,functions,branches\n"));
    assert_eq!(coverage.lines().count(), telemetry.curves.coverage.len() + 1);
    for (line, p) in coverage.lines().skip(1).zip(&telemetry.curves.coverage) {
        assert_eq!(line, format!("{},{},{}", p.statements, p.functions, p.branches));
    }
    let bugs = by_name("bug_curve.csv");
    assert!(bugs.starts_with("statements,unique_bugs,fault_id\n"));
    assert_eq!(bugs.lines().count(), report.findings.len() + 1);
    for (line, f) in bugs.lines().skip(1).zip(&report.findings) {
        assert!(line.ends_with(&f.fault_id), "curve order must be discovery order: {line}");
    }

    // Byte-identical across worker counts, like the rendered report.
    let rerun = run_soft_parallel(&profile, &telemetry_config(budget), 6);
    let rerun_trace = rerun
        .telemetry
        .as_ref()
        .expect("telemetry was on")
        .to_trace(Some(DialectId::Duckdb.name()), rerun.statements_executed);
    assert_eq!(soft_bench::trace_csv_exports(&rerun_trace), files);

    // And the writer puts the same bytes on disk.
    let dir = std::env::temp_dir().join(format!("soft-trace-csv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let written = soft_bench::write_trace_csv(&trace, &dir).expect("csv written");
    assert_eq!(written.len(), files.len());
    for (path, (name, contents)) in written.iter().zip(&files) {
        assert_eq!(path.file_name().and_then(|n| n.to_str()), Some(*name));
        assert_eq!(&std::fs::read_to_string(path).expect("readable"), contents);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// RFC 4180 hardening (`repro trace --csv`): a field carrying a bare
/// carriage return must be quoted exactly like one carrying a line feed —
/// an unquoted CR splits the record in most readers. Pinned byte for byte
/// on a synthetic journal whose fault id packs every metacharacter.
#[test]
fn csv_export_quotes_adversarial_fields() {
    use soft_repro::obs::{OutcomeClass, StatementEvent, TraceFile};

    let hostile = "npd\rupper,\"arg\"\nboundary";
    let mut trace = TraceFile::default();
    trace.journal.events.push(StatementEvent {
        index: 1,
        shard: 0,
        seed: Some(0),
        pattern: None,
        function: Some("upper".into()),
        outcome: OutcomeClass::Crash,
        fault_id: Some(hostile.into()),
    });

    let files = soft_bench::trace_csv_exports(&trace);
    let bugs = &files.iter().find(|(n, _)| *n == "bug_curve.csv").expect("bug curve").1;
    let expected = format!(
        "statements,unique_bugs,fault_id\n1,1,\"{}\"\n",
        hostile.replace('"', "\"\"")
    );
    assert_eq!(bugs, &expected, "CR/comma/quote/LF must all force a quoted field");
    // Three physical LFs in total: the header terminator, the embedded LF
    // (kept inside the quotes), and the row terminator. The CR never gains
    // an unquoted sibling.
    assert_eq!(bugs.matches('\n').count(), 3);
}

/// The wrong-result oracles preserve telemetry determinism end to end: with
/// `--oracles` armed the whole report — journal (including the synthetic
/// trailing oracle shard), yields, curves — is byte-identical at every
/// worker count, and the offline CSV export carries the logic findings.
#[test]
fn oracle_telemetry_is_byte_identical_across_worker_counts() {
    use soft_repro::soft::OracleConfig;

    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = CampaignConfig {
        oracles: OracleConfig::on(),
        ..telemetry_config(3_000)
    };
    let serial = run_soft_parallel(&profile, &cfg, 1);
    assert!(serial.logic_count() > 0, "the shipped ClickHouse quirk must be flagged");
    for workers in [2usize, 4, 7] {
        let parallel = run_soft_parallel(&profile, &cfg, workers);
        assert_eq!(serial, parallel, "oracle telemetry diverged at {workers} workers");
    }

    // The journal records the logic plane and the offline analyzer sees it.
    let telemetry = serial.telemetry.as_ref().expect("telemetry was on");
    let trace = telemetry.to_trace(Some(DialectId::Clickhouse.name()), serial.statements_executed);
    let files = soft_bench::trace_csv_exports(&trace);
    let bugs = &files.iter().find(|(n, _)| *n == "bug_curve.csv").expect("bug curve").1;
    assert!(
        bugs.lines().skip(1).any(|r| r.split(',').nth(2).is_some_and(|f| f.starts_with("logic-"))),
        "the bug growth curve must carry the logic findings: {bugs}"
    );
}
