//! Integration tests for the campaign observability layer (`soft-obs`).
//!
//! Two guarantees are pinned here, on top of the unit tests inside the
//! crates:
//!
//! 1. **Telemetry determinism** — with the ledger on, a parallel run is
//!    byte-identical to the serial run at every worker count: the whole
//!    [`CampaignReport`] compares equal (its `PartialEq` deliberately
//!    includes the journal, the yield metrics, and the growth curves), and
//!    the journal matches event for event. Checked on two dialects.
//! 2. **Golden trace rendering** — `repro trace` over a small fixed
//!    campaign's journal renders exactly the expected report, so the
//!    offline analyzer and the live campaign can never drift apart.

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::obs::TraceFile;
use soft_repro::soft::campaign::{run_soft_parallel, CampaignConfig};
use soft_repro::soft::{TelemetryConfig, TelemetryOptions};

fn telemetry_config(budget: usize) -> CampaignConfig {
    CampaignConfig {
        max_statements: budget,
        per_seed_cap: 8,
        telemetry: TelemetryConfig::On(TelemetryOptions {
            snapshot_interval: budget / 8,
            journal_path: None,
        }),
        ..CampaignConfig::default()
    }
}

/// The telemetry-on report — journal, yields, and curves included in the
/// equality — is identical for 1, 2, 4, and 7 workers, on two dialects.
#[test]
fn telemetry_is_byte_identical_across_worker_counts() {
    for dialect in [DialectId::Postgres, DialectId::Monetdb] {
        let profile = DialectProfile::build(dialect);
        let cfg = telemetry_config(4_000);
        let serial = run_soft_parallel(&profile, &cfg, 1);
        let telemetry = serial.telemetry.as_ref().expect("telemetry was on");
        assert_eq!(telemetry.journal.events.len(), serial.statements_executed);

        for workers in [2usize, 4, 7] {
            let parallel = run_soft_parallel(&profile, &cfg, workers);
            // Event-for-event journal equality first, for a sharper failure
            // than the whole-report assert below.
            let par_telemetry = parallel.telemetry.as_ref().expect("telemetry was on");
            for (serial_event, parallel_event) in
                telemetry.journal.events.iter().zip(&par_telemetry.journal.events)
            {
                assert_eq!(
                    serial_event, parallel_event,
                    "{} at {workers} workers diverged at statement {}",
                    dialect.name(),
                    serial_event.index
                );
            }
            assert_eq!(
                serial,
                parallel,
                "{} telemetry report diverged at {workers} workers",
                dialect.name()
            );
        }
    }
}

/// Telemetry never perturbs the campaign: stripping the ledger off a
/// telemetry-on report recovers the Off-mode report exactly.
#[test]
fn telemetry_does_not_perturb_the_campaign() {
    let profile = DialectProfile::build(DialectId::Monetdb);
    let off_cfg = CampaignConfig {
        max_statements: 4_000,
        per_seed_cap: 8,
        ..CampaignConfig::default()
    };
    let off = run_soft_parallel(&profile, &off_cfg, 4);
    let mut on = run_soft_parallel(&profile, &telemetry_config(4_000), 4);
    on.telemetry = None;
    assert_eq!(off, on);
}

/// Golden `repro trace` output over a small fixed campaign: the JSONL
/// journal round-trips, and the analyzer renders the same surfaces the
/// live campaign printed. Pinned values come from the deterministic
/// DuckDB run at this exact budget; any planner / generator / telemetry
/// change that moves them is a semantic change and must be reviewed.
#[test]
fn trace_rendering_is_golden() {
    let profile = DialectProfile::build(DialectId::Duckdb);
    let budget = 2_000;
    let report = run_soft_parallel(&profile, &telemetry_config(budget), 3);
    let telemetry = report.telemetry.as_ref().expect("telemetry was on");

    // The journal survives the JSONL round trip byte for byte.
    let trace = telemetry.to_trace(Some(DialectId::Duckdb.name()), report.statements_executed);
    let jsonl = trace.to_jsonl();
    let reparsed = TraceFile::parse(&jsonl).expect("own journal parses");
    assert_eq!(trace, reparsed);
    assert_eq!(jsonl, reparsed.to_jsonl());

    // The analyzer's report over the reparsed journal.
    let rendered = soft_bench::render_trace(&reparsed);

    // Header: every statement journalled, outcome classes partition them.
    let first = rendered.lines().next().expect("non-empty report");
    assert_eq!(
        first,
        format!(
            "journal: DuckDB — {} events, {} unique faults",
            report.statements_executed,
            report.findings.len()
        )
    );
    let outcomes = rendered.lines().nth(1).expect("outcome line");
    assert!(outcomes.starts_with("outcomes: ok="), "got {outcomes:?}");
    let total: usize = outcomes
        .split_whitespace()
        .skip(1)
        .map(|kv| kv.split('=').nth(1).expect("k=v").parse::<usize>().expect("count"))
        .sum();
    assert_eq!(total, report.statements_executed);

    // The offline tables and curves are the live campaign's, verbatim.
    assert!(rendered.contains(telemetry.yields.render_pattern_table().as_str()));
    assert!(rendered.contains(telemetry.yields.render_category_table().as_str()));
    assert!(rendered.ends_with(telemetry.curves.render().as_str()));

    // And the run itself is reproducible: the golden anchor is the whole
    // rendered report being stable across a rerun at a different worker
    // count (full byte equality, not just the spot checks above).
    let rerun = run_soft_parallel(&profile, &telemetry_config(budget), 5);
    let rerun_trace = rerun
        .telemetry
        .as_ref()
        .expect("telemetry was on")
        .to_trace(Some(DialectId::Duckdb.name()), rerun.statements_executed);
    assert_eq!(soft_bench::render_trace(&rerun_trace), rendered);
}
