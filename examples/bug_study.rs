//! Reproduce the characteristic study (paper §3–§5): Tables 1–2, Figure 1,
//! Findings 1–4 and the root-cause breakdown, with paper-vs-measured output.
//!
//! ```sh
//! cargo run --example bug_study
//! ```

use soft_repro::study::{analysis, studied_bugs};

fn main() {
    let bugs = studied_bugs();
    println!("dataset: {} bugs ({} carry real PoCs from the paper)\n", bugs.len(), bugs.iter().filter(|b| !b.synthetic).count());

    println!("-- Table 1 --");
    for (dbms, n) in analysis::table1(&bugs) {
        println!("  {:<12} {}", dbms.name(), n);
    }

    let f1 = analysis::finding1(&bugs);
    println!("\n-- Finding 1 (stages, {} with backtraces) --", f1.with_backtrace);
    println!("  execution    {} ({:.1}%)", f1.execution, 100.0 * f1.execution as f64 / f1.with_backtrace as f64);
    println!("  optimization {} ({:.1}%)", f1.optimization, 100.0 * f1.optimization as f64 / f1.with_backtrace as f64);
    println!("  parsing      {} ({:.1}%)", f1.parsing, 100.0 * f1.parsing as f64 / f1.with_backtrace as f64);

    println!("\n-- Figure 1 (occurrences / unique functions) --");
    for (cat, occ, uniq) in analysis::figure1(&bugs) {
        println!("  {:<12} {:>4} / {:<4}", cat.label(), occ, uniq);
    }

    println!("\n-- Table 2 (function expressions per statement) --");
    let hist = analysis::table2(&bugs);
    println!("  1: {}  2: {}  3: {}  4: {}  >=5: {}", hist[0], hist[1], hist[2], hist[3], hist[4]);
    println!("  Finding 3: {}/318 have at most two", analysis::finding3(&bugs));

    println!("\n-- Finding 4 (prerequisites) --");
    for (p, n) in analysis::finding4(&bugs) {
        println!("  {p:?}: {n}");
    }

    let rc = analysis::root_causes(&bugs);
    println!("\n-- Root causes (section 5) --");
    println!("  boundary literals: {} (extreme {}, empty/NULL {}, crafted {})", rc.literal, rc.literal_extreme, rc.literal_empty_null, rc.literal_crafted);
    println!("  boundary castings: {}", rc.casting);
    println!("  nested functions:  {}", rc.nested);
    println!("  other:             {} config, {} table defs, {} syntax", rc.configuration, rc.table_definition, rc.syntax);
    println!("  => boundary arguments cause {}/318 = {:.1}% (the paper's 87.4% headline)", rc.boundary_total(), 100.0 * rc.boundary_total() as f64 / 318.0);

    println!("\n-- exemplar bugs carrying real PoCs --");
    for b in bugs.iter().filter(|b| !b.synthetic) {
        println!("  {} ({}) — {:?}", b.reference, b.dbms.name(), b.root_cause);
        if let Some(poc) = &b.poc {
            println!("      {poc}");
        }
    }
}
