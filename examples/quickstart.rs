//! Quickstart: run SOFT against one simulated target and print what it
//! finds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::soft::campaign::{run_soft, CampaignConfig};

fn main() {
    // Pick a target. ClickHouse carries six Table 4 bugs.
    let profile = DialectProfile::build(DialectId::Clickhouse);
    println!(
        "target: {} ({} functions exposed, {} injected faults)",
        profile.id,
        profile.registry.name_count(),
        profile.faults.len()
    );

    // Run a small, deterministic campaign.
    let config =
        CampaignConfig { max_statements: 40_000, per_seed_cap: 48, ..CampaignConfig::default() };
    let report = run_soft(&profile, &config);

    println!(
        "\nexecuted {} statements; triggered {} functions; covered {} branches",
        report.statements_executed, report.functions_triggered, report.branches_covered
    );
    println!(
        "{} unique bugs, {} false positives (resource-limit kills)\n",
        report.findings.len(),
        report.false_positives
    );
    for f in &report.findings {
        println!(
            "[{}] {} in {} — found by {} after {} statements",
            f.kind.abbrev(),
            f.fault_id,
            f.function.as_deref().unwrap_or("?"),
            f.found_by_pattern,
            f.statements_until_found
        );
        println!("    PoC:       {}", f.poc);
        // Reduce the PoC before "reporting" it, as §7.1's logging step
        // would before filing upstream.
        let minimized = soft_repro::soft::minimize::minimize(&f.poc, || profile.engine());
        if minimized != f.poc {
            println!("    minimized: {minimized}");
        }
    }
}
