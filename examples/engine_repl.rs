//! A tiny interactive shell over the SQL engine substrate — useful for
//! exploring the function library and for replaying PoCs by hand.
//!
//! ```sh
//! cargo run --example engine_repl              # fault-free reference engine
//! cargo run --example engine_repl mariadb      # a faulty dialect target
//! ```

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::engine::{Engine, ExecOutcome};
use std::io::{BufRead, Write};

fn main() {
    let arg = std::env::args().nth(1);
    let mut engine = match arg.as_deref() {
        None => Engine::with_default_functions(Default::default()),
        Some(name) => {
            let id = DialectId::ALL
                .into_iter()
                .find(|d| d.key() == name.to_ascii_lowercase())
                .unwrap_or_else(|| {
                    eprintln!("unknown dialect {name}; use one of:");
                    for d in DialectId::ALL {
                        eprintln!("  {}", d.key());
                    }
                    std::process::exit(2);
                });
            DialectProfile::build(id).engine()
        }
    };
    println!("soft-engine repl — {}; end statements with Enter, Ctrl-D to quit", engine.config().name);
    let stdin = std::io::stdin();
    loop {
        print!("sql> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        match engine.execute(sql) {
            ExecOutcome::Rows(rs) => {
                println!("{}", rs.columns.join(" | "));
                for row in &rs.rows {
                    let cells: Vec<String> = row.iter().map(|v| v.render()).collect();
                    println!("{}", cells.join(" | "));
                }
                println!("({} rows)", rs.rows.len());
            }
            ExecOutcome::Ok(msg) => println!("ok: {msg}"),
            ExecOutcome::Error(e) => println!("error: {e}"),
            ExecOutcome::Crash(c) => {
                println!("*** CRASH: {c}");
                println!("*** (database restarted)");
                engine.reset_database();
            }
        }
    }
}
