//! The §7.5 comparison: SOFT vs SQUIRREL/SQLancer/SQLsmith on triggered
//! functions (Table 5), branch coverage (Table 6) and unique bugs.
//!
//! ```sh
//! cargo run --release --example tool_comparison [budget]
//! ```

use soft_repro::soft::campaign::StatementGenerator;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);
    println!("per-tool, per-target statement budget: {budget}\n");

    // Show a taste of what each generator produces.
    let profile =
        soft_repro::dialects::DialectProfile::build(soft_repro::dialects::DialectId::Postgres);
    let mut smith = soft_repro::baselines::SqlsmithLite::new(&profile, 1);
    let mut lancer = soft_repro::baselines::SqlancerLite::new(1);
    let mut squirrel = soft_repro::baselines::SquirrelLite::new(&profile, 1);
    for g in [
        &mut smith as &mut dyn StatementGenerator,
        &mut lancer,
        &mut squirrel,
    ] {
        // Skip each tool's schema prelude.
        let mut sample = String::new();
        for _ in 0..8 {
            if let Some(s) = g.next_statement() {
                sample = s;
            }
        }
        println!("{:<10} e.g. {}", g.name(), sample);
    }
    println!();

    let results = soft_bench::run_comparison(budget);
    println!(
        "{}",
        soft_bench::render_metric(&results, |r| r.functions, "Table 5 — triggered functions")
    );
    println!(
        "{}",
        soft_bench::render_metric(&results, |r| r.branches, "Table 6 — covered branches")
    );
    println!(
        "{}",
        soft_bench::render_metric(&results, |r| r.bugs, "Unique SQL function bugs (section 7.5)")
    );
    let violations = soft_bench::check_shape(&results);
    if violations.is_empty() {
        println!("shape check: every qualitative claim of the paper holds");
    } else {
        println!("shape check violations: {violations:#?}");
    }
}
