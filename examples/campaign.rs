//! The full Table 4 campaign: run SOFT against all seven simulated DBMSs
//! and print the per-row results next to the paper's ground truth, then a
//! telemetry-instrumented rerun of one target showing the yield tables and
//! growth curves (see `docs/EXPERIMENTS.md`, "Telemetry knobs").
//!
//! ```sh
//! cargo run --release --example campaign [budget]
//! ```

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::soft::campaign::{run_campaign, run_soft_parallel_timed, CampaignConfig};
use soft_repro::soft::report::render_table4;
use soft_repro::soft::{TelemetryConfig, TelemetryOptions};

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    println!("running SOFT with a {budget}-statement budget per target\n");
    let mut reports = Vec::new();
    let mut found = 0usize;
    let mut expected = 0usize;
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        let t0 = std::time::Instant::now();
        let report = run_campaign(
            &profile,
            &CampaignConfig { max_statements: budget, per_seed_cap: 64, ..CampaignConfig::default() },
        );
        println!(
            "{:<12} {:>3}/{:<3} bugs  ({} statements, {} fps, {:.1?})",
            id.name(),
            report.findings.len(),
            profile.faults.len(),
            report.statements_executed,
            report.false_positives,
            t0.elapsed()
        );
        found += report.findings.len();
        expected += profile.faults.len();
        reports.push(report);
    }
    println!("\n{}", render_table4(&reports));
    println!("grand total: {found}/{expected} (paper: 132 confirmed, 97 fixed)");

    // Telemetry demonstration: rerun one target with the observability
    // ledger on. The report stays byte-identical to an Off-mode run (the
    // journal, yields, and curves are derived, not steering), and the
    // wall-clock stage latencies live outside the report's equality.
    let demo_budget = (budget / 10).clamp(2_000, 20_000);
    println!("\ntelemetry demo: ClickHouse, {demo_budget}-statement budget\n");
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let cfg = CampaignConfig {
        max_statements: demo_budget,
        per_seed_cap: 64,
        telemetry: TelemetryConfig::On(TelemetryOptions {
            snapshot_interval: demo_budget / 10,
            journal_path: None,
        }),
        ..CampaignConfig::default()
    };
    let run = run_soft_parallel_timed(&profile, &cfg, soft_repro::soft::default_workers());
    let telemetry = run.report.telemetry.as_ref().expect("telemetry was on");
    println!("{}", telemetry.yields.render_pattern_table());
    println!("{}", telemetry.curves.render());
    if let Some(latency) = &run.stage_latency {
        println!("{}", latency.render());
    }
}
