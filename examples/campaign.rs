//! The full Table 4 campaign: run SOFT against all seven simulated DBMSs
//! and print the per-row results next to the paper's ground truth.
//!
//! ```sh
//! cargo run --release --example campaign [budget]
//! ```

use soft_repro::dialects::{DialectId, DialectProfile};
use soft_repro::soft::campaign::{run_campaign, CampaignConfig};
use soft_repro::soft::report::render_table4;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    println!("running SOFT with a {budget}-statement budget per target\n");
    let mut reports = Vec::new();
    let mut found = 0usize;
    let mut expected = 0usize;
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        let t0 = std::time::Instant::now();
        let report = run_campaign(
            &profile,
            &CampaignConfig { max_statements: budget, per_seed_cap: 64, ..CampaignConfig::default() },
        );
        println!(
            "{:<12} {:>3}/{:<3} bugs  ({} statements, {} fps, {:.1?})",
            id.name(),
            report.findings.len(),
            profile.faults.len(),
            report.statements_executed,
            report.false_positives,
            t0.elapsed()
        );
        found += report.findings.len();
        expected += profile.faults.len();
        reports.push(report);
    }
    println!("\n{}", render_table4(&reports));
    println!("grand total: {found}/{expected} (paper: 132 confirmed, 97 fixed)");
}
