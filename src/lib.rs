//! # soft-repro
//!
//! A reproduction of *Understanding and Detecting SQL Function Bugs: Using
//! Simple Boundary Arguments to Trigger Hundreds of DBMS Bugs* (EuroSys '25).
//!
//! The workspace implements, from scratch:
//!
//! * [`engine`] — an in-memory SQL engine (parser, three-stage pipeline,
//!   ~190 built-in functions, coverage instrumentation, crash model);
//! * [`dialects`] — seven simulated DBMS targets carrying the paper's
//!   Table 4 as a 132-fault corpus;
//! * [`soft`] — the SOFT tool itself: collection, the ten boundary-value
//!   generation patterns, and the campaign runner;
//! * [`baselines`] — SQLsmith/SQLancer/SQUIRREL-lite for the comparison;
//! * [`study`] — the 318-bug characteristic study with its analyses;
//! * [`obs`] — campaign observability: the statement-level event journal,
//!   per-pattern yield metrics, and coverage-growth curves (all merged
//!   deterministically, so telemetry never perturbs campaign results);
//! * [`rng`] — the workspace's only randomness source (xoshiro256**) plus
//!   the in-tree property-testing harness, keeping the build std-only.
//!
//! # Examples
//!
//! ```
//! use soft_repro::dialects::{DialectId, DialectProfile};
//! use soft_repro::soft::campaign::{run_soft, CampaignConfig};
//!
//! // Hunt for the six ClickHouse bugs of Table 4 with a small budget.
//! let profile = DialectProfile::build(DialectId::Clickhouse);
//! let report = run_soft(
//!     &profile,
//!     &CampaignConfig { max_statements: 20_000, per_seed_cap: 32, ..CampaignConfig::default() },
//! );
//! assert!(!report.findings.is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use soft_baselines as baselines;
pub use soft_core as soft;
pub use soft_dialects as dialects;
pub use soft_engine as engine;
pub use soft_obs as obs;
pub use soft_parser as parser;
pub use soft_rng as rng;
pub use soft_study as study;
pub use soft_types as types;
