#!/usr/bin/env sh
# Relative-link checker for the markdown docs. Every inline link in the
# top-level *.md files and docs/*.md that points into the repository must
# resolve to an existing file or directory; external links (http, https,
# mailto) and intra-page #anchors are skipped, so the check is hermetic.
# Run from anywhere; exits non-zero listing every broken link.
set -eu

cd "$(dirname "$0")/.."

broken=""
for f in *.md docs/*.md; do
    [ -f "$f" ] || continue
    dir="$(dirname "$f")"
    # Inline links are `](target)`; strip the wrapper, then any
    # `"title"` suffix inside the parentheses.
    targets="$(grep -o '\]([^)]*)' "$f" 2>/dev/null | sed 's/^](//; s/)$//; s/ .*$//' || true)"
    [ -n "$targets" ] || continue
    for target in $targets; do
        case "$target" in
            '' | 'http://'* | 'https://'* | 'mailto:'* | '#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            broken="$broken$f: $target\n"
        fi
    done
done

if [ -n "$broken" ]; then
    printf 'check_links: broken relative links:\n' >&2
    printf "$broken" >&2
    exit 1
fi
echo "check_links: OK"
