#!/usr/bin/env sh
# Hermetic verification: the whole workspace must build and test with the
# network off and nothing but the in-tree crates. Run from anywhere.
#
# The test suite runs twice — once at the harness default parallelism and
# once pinned to a single test thread. The campaign runner promises
# byte-identical reports for any worker count, and the two runs catch the
# class of bug that only shows up under one scheduling regime (shared
# state between tests, thread-count-dependent results).
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace

echo "verify: test pass 1/2 (default test threads)"
cargo test -q --offline --workspace

echo "verify: test pass 2/2 (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test -q --offline --workspace

echo "verify: rustdoc gate (missing/broken docs are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "verify: telemetry smoke (repro campaign + repro trace round trip)"
journal="$(mktemp -t soft-journal-XXXXXX).jsonl"
cargo run --release --offline -q -p soft-bench --bin repro -- \
    campaign clickhouse --budget 3000 --journal "$journal" > /dev/null
cargo run --release --offline -q -p soft-bench --bin repro -- \
    trace "$journal" | grep -q "^journal: ClickHouse"
rm -f "$journal"

echo "verify: OK (offline build + tests at both thread settings + docs + trace smoke)"
