#!/usr/bin/env sh
# Hermetic verification: the whole workspace must build and test with the
# network off and nothing but the in-tree crates. Run from anywhere.
#
# The test suite runs twice — once at the harness default parallelism and
# once pinned to a single test thread. The campaign runner promises
# byte-identical reports for any worker count, and the two runs catch the
# class of bug that only shows up under one scheduling regime (shared
# state between tests, thread-count-dependent results).
set -eu

cd "$(dirname "$0")/.."

echo "verify: markdown link check (README + docs)"
sh scripts/check_links.sh

cargo build --release --offline --workspace

echo "verify: test pass 1/2 (default test threads)"
cargo test -q --offline --workspace

echo "verify: test pass 2/2 (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test -q --offline --workspace

echo "verify: rustdoc gate (missing/broken docs are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "verify: telemetry smoke (repro campaign + repro trace round trip)"
journal="$(mktemp -t soft-journal-XXXXXX).jsonl"
csvdir="$(mktemp -d -t soft-csv-XXXXXX)"
# `repro campaign` exits 3 when the campaign confirms crash findings and 4
# when it confirms wrong-result findings only (the documented exit-code
# contract, see EXPERIMENTS.md) — at this budget on ClickHouse a crash is
# the expected outcome, so accept 0, 3, or 4 and fail on anything else.
status=0
cargo run --release --offline -q -p soft-bench --bin repro -- \
    campaign clickhouse --budget 3000 --journal "$journal" > /dev/null || status=$?
if [ "$status" -ne 0 ] && [ "$status" -ne 3 ] && [ "$status" -ne 4 ]; then
    echo "verify: repro campaign exited $status (expected 0, 3, or 4)" >&2
    exit 1
fi
# Capture instead of piping into `grep -q`: quitting grep early would close
# the pipe mid-print and kill repro with SIGPIPE.
trace_out="$(cargo run --release --offline -q -p soft-bench --bin repro -- \
    trace "$journal" --csv "$csvdir")"
printf '%s\n' "$trace_out" | grep -q "^journal: ClickHouse"
test -s "$csvdir/pattern_yields.csv"
test -s "$csvdir/bug_curve.csv"
rm -rf "$journal" "$csvdir"

echo "verify: oracle smoke (wrong-result detection end to end)"
oracle_journal="$(mktemp -t soft-oracle-XXXXXX).jsonl"
# With the oracles armed, the shipped ClickHouse provenance quirk must be
# flagged: the run exits 3 (crashes found too at this budget) or 4 (logic
# findings only), never 0 — and the journal must carry the logic-bug row.
status=0
cargo run --release --offline -q -p soft-bench --bin repro -- \
    campaign clickhouse --budget 3000 --oracles --journal "$oracle_journal" \
    > /dev/null || status=$?
if [ "$status" -ne 3 ] && [ "$status" -ne 4 ]; then
    echo "verify: oracles-on campaign exited $status (expected 3 or 4)" >&2
    exit 1
fi
grep -q '"outcome": "logic-bug"' "$oracle_journal"
grep -q '"fault": "logic-multiform-tostring"' "$oracle_journal"
rm -f "$oracle_journal"

echo "verify: forensics smoke (repro bundle + repro replay round trip)"
findings="$(mktemp -d -t soft-findings-XXXXXX)"
cargo run --release --offline -q -p soft-bench --bin repro -- \
    bundle clickhouse --budget 3000 --out "$findings" > /dev/null
replay_out="$(cargo run --release --offline -q -p soft-bench --bin repro -- \
    replay "$findings")"
printf '%s\n' "$replay_out" | grep -q "^replayed"

echo "verify: scheduler smoke (epoch reallocations journaled)"
sched_journal="$(mktemp -t soft-sched-XXXXXX).jsonl"
status=0
cargo run --release --offline -q -p soft-bench --bin repro -- \
    campaign clickhouse --budget 3000 --schedule --journal "$sched_journal" \
    > /dev/null || status=$?
if [ "$status" -ne 0 ] && [ "$status" -ne 3 ] && [ "$status" -ne 4 ]; then
    echo "verify: scheduled campaign exited $status (expected 0, 3, or 4)" >&2
    exit 1
fi
grep -q '"type": "epoch"' "$sched_journal"
rm -f "$sched_journal"

echo "verify: flight recorder smoke (campaign --spans + trace --chrome)"
# A spans-armed campaign must write a Chrome trace-event file (the binary
# validates the JSON with the in-tree validator before writing), and the
# offline `trace --chrome` export of a journal must do the same. Both
# exports land in the repo root (gitignored) so CI uploads them as the
# sample trace artifacts.
spans_journal="$(mktemp -t soft-spans-XXXXXX).jsonl"
status=0
cargo run --release --offline -q -p soft-bench --bin repro -- \
    campaign clickhouse --budget 3000 --spans "$PWD" --stall-ms 10000 \
    --journal "$spans_journal" > /dev/null || status=$?
if [ "$status" -ne 0 ] && [ "$status" -ne 3 ] && [ "$status" -ne 4 ]; then
    echo "verify: spans-armed campaign exited $status (expected 0, 3, or 4)" >&2
    exit 1
fi
test -s clickhouse_trace.json
# The export is a JSON array of trace events: opens with `[`, and every
# event is a Chrome trace-event object.
head -c 1 clickhouse_trace.json | grep -q '\['
grep -q '"ph": "X"' clickhouse_trace.json
cargo run --release --offline -q -p soft-bench --bin repro -- \
    trace "$spans_journal" --chrome TRACE_journal.json > /dev/null
test -s TRACE_journal.json
head -c 1 TRACE_journal.json | grep -q '\['

echo "verify: compare smoke (the cross-campaign diff and its exit-code gate)"
# Campaigns are deterministic and a smaller budget plans an exact prefix
# of a larger one, so: identical runs diff clean (exit 0), small->large
# gains bugs only (exit 0), and large->small loses them (exit 5 — the CI
# regression gate). All three directions are load-bearing.
cmp_dir="$(mktemp -d -t soft-compare-XXXXXX)"
cargo run --release --offline -q -p soft-bench --bin repro -- \
    campaign clickhouse --budget 1500 --journal "$cmp_dir/small.jsonl" \
    > /dev/null || true
cargo run --release --offline -q -p soft-bench --bin repro -- \
    campaign clickhouse --budget 1500 --journal "$cmp_dir/small2.jsonl" \
    > /dev/null || true
status=0
cmp_out="$(cargo run --release --offline -q -p soft-bench --bin repro -- \
    compare "$cmp_dir/small.jsonl" "$cmp_dir/small2.jsonl")" || status=$?
if [ "$status" -ne 0 ]; then
    echo "verify: identical campaigns compared nonzero ($status)" >&2
    exit 1
fi
printf '%s\n' "$cmp_out" | grep -q "0 new, 0 lost"
status=0
cargo run --release --offline -q -p soft-bench --bin repro -- \
    compare "$cmp_dir/small.jsonl" "$spans_journal" --csv "$cmp_dir/csv" \
    > /dev/null || status=$?
if [ "$status" -ne 0 ]; then
    echo "verify: small->large compare exited $status (gained bugs only: expected 0)" >&2
    exit 1
fi
test -s "$cmp_dir/csv/compare_bugs.csv"
status=0
cargo run --release --offline -q -p soft-bench --bin repro -- \
    compare "$spans_journal" "$cmp_dir/small.jsonl" > /dev/null || status=$?
if [ "$status" -ne 5 ]; then
    echo "verify: large->small compare exited $status (lost bugs: expected 5)" >&2
    exit 1
fi
rm -rf "$cmp_dir" "$spans_journal"

echo "verify: repository smoke (repo init + ingest + a campaign consuming it)"
# The full operator loop: the forensics bundles from the smoke above are
# distilled into a seed repository, and a follow-up campaign consumes it.
# The ingested PoCs replay as phase-1 seeds, so the consumer must re-fire
# the donor's crashes even at a fraction of the donor's budget: exit 3.
repodir="$(mktemp -d -t soft-repo-XXXXXX)/seedrepo"
cargo run --release --offline -q -p soft-bench --bin repro -- \
    repo init "$repodir" > /dev/null
cargo run --release --offline -q -p soft-bench --bin repro -- \
    repo ingest "$repodir" "$findings" > /dev/null
stats_out="$(cargo run --release --offline -q -p soft-bench --bin repro -- \
    repo stats "$repodir")"
printf '%s\n' "$stats_out" | grep -q "entries"
status=0
cargo run --release --offline -q -p soft-bench --bin repro -- \
    campaign clickhouse --budget 1000 --repo "$repodir" > /dev/null || status=$?
if [ "$status" -ne 3 ]; then
    echo "verify: repo-seeded campaign exited $status (expected 3: ingested PoCs re-fire)" >&2
    exit 1
fi
rm -rf "$findings" "$(dirname "$repodir")"

echo "verify: execute bench + batch regression gate (tiny budget, paired arms)"
# One short measurement window proves the bench builds, runs every arm,
# and emits its JSON artifact; the real numbers come from a full
# `cargo bench -p soft-bench --bench execute` (EXPERIMENTS.md, "Batch
# execution"). The artifact is left in the repo root (gitignored) so CI
# can upload it and the perf trajectory stays inspectable per PR.
# $PWD, not `.`: cargo runs the bench with the package directory as its
# working directory, and the artifact belongs in the repo root.
SOFT_BENCH_WARMUP_MS=1 SOFT_BENCH_MEASURE_MS=50 SOFT_BENCH_JSON_DIR="$PWD" \
    cargo bench --offline -q -p soft-bench --bench execute > /dev/null
test -s BENCH_execute.json

echo "verify: spans bench + flight-recorder overhead gate (paired arms)"
# The spans-off and spans-on arms alternate inside one measurement window
# (bench_pair), so their ratio is drift-robust even in a short smoke run.
# The recorder is per-shard Vec pushes with no locks; arming it must cost
# at most 5% statements/sec (measured ~1.5%, EXPERIMENTS.md "Flight
# recorder overhead").
SOFT_BENCH_WARMUP_MS=1 SOFT_BENCH_MEASURE_MS=50 SOFT_BENCH_JSON_DIR="$PWD" \
    cargo bench --offline -q -p soft-bench --bench spans > /dev/null
test -s BENCH_spans.json
spans_rates="$(sed -n 's/.*"label": "\([^"]*\)".*"items_per_sec": \([0-9.]*\).*/\1 \2/p' BENCH_spans.json)"
spans_off="$(printf '%s\n' "$spans_rates" | awk '$1 == "spans/ClickHouse/off" { print $2 }')"
spans_on="$(printf '%s\n' "$spans_rates" | awk '$1 == "spans/ClickHouse/on" { print $2 }')"
if [ -z "$spans_off" ] || [ -z "$spans_on" ]; then
    echo "verify: BENCH_spans.json is missing the paired spans arms" >&2
    exit 1
fi
awk -v off="$spans_off" -v on="$spans_on" 'BEGIN {
    if (on + 0 < 0.95 * off) {
        printf "verify: arming spans costs >5%% statements/sec (%.0f vs %.0f items/s)\n", on, off
        exit 1
    }
}' || exit 1

echo "verify: schedule bench smoke (static vs adaptive arms run end to end)"
# A tiny budget proves the comparison harness builds and runs every arm;
# the adaptive-vs-static yield gate only applies at the bench's default
# budget (see benches/schedule.rs), so the smoke stays fast and unflaky.
SOFT_SCHED_BENCH_BUDGET=1500 SOFT_BENCH_WARMUP_MS=1 SOFT_BENCH_MEASURE_MS=20 \
    SOFT_BENCH_JSON_DIR="$PWD" \
    cargo bench --offline -q -p soft-bench --bench schedule > /dev/null
test -s BENCH_schedule.json

# Batch-vs-prepared regression gate, read from the drift-robust *paired*
# samples (the bench alternates the two arms inside one measurement
# window, so the ratio is immune to thermal/frequency drift):
#   1. the kernel pair — batch vs prepared on the shape-grouped statements
#      the batch path actually runs — must not regress below prepared;
#   2. the whole-corpus batch arm must stay within 5% of prepared. It is
#      Amdahl-flat by construction (~half the corpus is singletons,
#      sub-threshold groups and aggregates that fall back to the scalar
#      path — EXPERIMENTS.md "Batch execution"), so the gate here is
#      "never meaningfully worse", while the kernel gate is "strictly
#      not slower".
bench_rates="$(sed -n 's/.*"label": "\([^"]*\)".*"items_per_sec": \([0-9.]*\).*/\1 \2/p' BENCH_execute.json)"
rate() {
    printf '%s\n' "$bench_rates" | awk -v l="execute/$1" '$1 == l { print $2 }'
}
for dialect in ClickHouse MonetDB; do
    gp="$(rate "$dialect/grouped-prepared")"
    gb="$(rate "$dialect/grouped-batch")"
    p="$(rate "$dialect/prepared")"
    bt="$(rate "$dialect/batch")"
    if [ -z "$gp" ] || [ -z "$gb" ] || [ -z "$p" ] || [ -z "$bt" ]; then
        echo "verify: BENCH_execute.json is missing execute arms for $dialect" >&2
        exit 1
    fi
    awk -v gp="$gp" -v gb="$gb" -v p="$p" -v bt="$bt" -v d="$dialect" 'BEGIN {
        if (gb + 0 < gp + 0) {
            printf "verify: %s batch kernel regressed below prepared (%.0f < %.0f items/s)\n", d, gb, gp
            exit 1
        }
        if (bt + 0 < 0.95 * p) {
            printf "verify: %s whole-corpus batch fell >5%% below prepared (%.0f vs %.0f items/s)\n", d, bt, p
            exit 1
        }
    }' || exit 1
done

echo "verify: OK (offline build + tests at both thread settings + docs + links + trace/oracle/forensics/scheduler/repository/flight-recorder/compare smoke + bench gates)"
