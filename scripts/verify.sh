#!/usr/bin/env sh
# Hermetic verification: the whole workspace must build and test with the
# network off and nothing but the in-tree crates. Run from anywhere.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace

echo "verify: OK (offline build + tests)"
