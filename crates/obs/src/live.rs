//! The live metrics registry — the campaign's *wall-clock* observability
//! plane.
//!
//! Everything in `soft-obs` up to PR 3 is post-hoc: yields, curves, and the
//! journal only exist after the shard merge. This module is the opposite
//! surface: a lock-free registry of atomic counters and gauges that shard
//! workers update **wait-free on the hot path** (one `fetch_add` per counter,
//! one `store` per heartbeat field) and that observers — the HTTP exposition
//! server ([`crate::http`]), the `--progress` TTY ticker, and the shard
//! watchdog ([`crate::watchdog`]) — read concurrently without stopping the
//! campaign.
//!
//! # The live plane never touches the deterministic plane
//!
//! The registry is deliberately *outside* `CampaignReport` and its
//! `PartialEq`: live counts are sampled mid-flight (a scrape can observe any
//! interleaving of shard progress) and the unique-fault discovery order
//! depends on scheduling. The campaign runner only ever *writes* into the
//! registry; no campaign decision reads it back, so the
//! byte-identical-for-any-worker-count invariant is untouched. The two slow
//! paths — global unique-fault dedup and the coverage curve — take a `Mutex`,
//! but only on a crash event or a shard completion respectively, never per
//! statement.

use crate::event::OutcomeClass;
use crate::json::{num_field, str_field};
use soft_engine::{Coverage, PatternId};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Number of per-pattern counter slots: the ten patterns plus slot 0 for
/// phase-1 seed replays (events with no pattern).
const PATTERN_SLOTS: usize = PatternId::ALL.len() + 1;

/// A shard's lifecycle state, stored in [`ShardBeat::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Not yet claimed by a worker.
    Pending,
    /// Claimed and executing.
    Running,
    /// Finished.
    Done,
}

impl ShardState {
    fn from_u64(v: u64) -> ShardState {
        match v {
            1 => ShardState::Running,
            2 => ShardState::Done,
            _ => ShardState::Pending,
        }
    }
}

/// One shard's heartbeat slot: the watchdog's view of shard liveness.
///
/// The executing worker owns the slot exclusively while the shard runs, so
/// every write is a plain atomic store — wait-free by construction.
#[derive(Debug, Default)]
pub struct ShardBeat {
    /// 0 = pending, 1 = running, 2 = done.
    state: AtomicU64,
    /// Last *global* (1-based) statement index the shard executed.
    last_index: AtomicU64,
    /// Milliseconds since campaign start at the last heartbeat.
    last_beat_ms: AtomicU64,
    /// Statements the shard has executed so far.
    statements: AtomicU64,
}

impl ShardBeat {
    /// The shard's lifecycle state.
    pub fn state(&self) -> ShardState {
        ShardState::from_u64(self.state.load(Ordering::Acquire))
    }

    /// Last global statement index the shard reported.
    pub fn last_index(&self) -> u64 {
        self.last_index.load(Ordering::Relaxed)
    }

    /// Milliseconds since campaign start at the last heartbeat.
    pub fn last_beat_ms(&self) -> u64 {
        self.last_beat_ms.load(Ordering::Relaxed)
    }

    /// Statements executed by the shard so far.
    pub fn statements(&self) -> u64 {
        self.statements.load(Ordering::Relaxed)
    }
}

/// Per-pattern live counters (slot 0 = seed replays).
#[derive(Debug, Default)]
struct PatternCell {
    executed: AtomicU64,
    crashes: AtomicU64,
    errors: AtomicU64,
    resource_limits: AtomicU64,
    logic_bugs: AtomicU64,
}

/// One point of the live unique-bug curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveBugPoint {
    /// Statements executed (global counter) when the fault was first seen.
    /// Sampled mid-flight, so this is approximate under parallelism — the
    /// deterministic discovery index lives in the campaign report.
    pub statements: u64,
    /// Unique faults seen so far, including this one.
    pub unique: u64,
    /// The fault id.
    pub fault_id: String,
}

/// One point of the live coverage curve, appended on each shard completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveCoveragePoint {
    /// Statements executed (global counter) at the merge.
    pub statements: u64,
    /// Distinct functions triggered by all completed shards so far.
    pub functions: u64,
    /// Distinct branches covered by all completed shards so far.
    pub branches: u64,
}

/// The lock-free live metrics registry for one campaign run.
///
/// Create one per campaign ([`LiveMetrics::new`]), hand an `Arc` of it to
/// the exposition server / ticker, and pass it to the campaign runner; the
/// runner calls [`begin_campaign`](LiveMetrics::begin_campaign) once the
/// statement stream is planned and updates the registry as shards execute.
#[derive(Debug)]
pub struct LiveMetrics {
    started: Instant,
    dialect: Mutex<String>,
    planned_statements: AtomicU64,
    statements: AtomicU64,
    outcomes: [AtomicU64; OutcomeClass::ALL.len()],
    per_pattern: [PatternCell; PATTERN_SLOTS],
    unique_faults: AtomicU64,
    shards_total: AtomicU64,
    shards_done: AtomicU64,
    workers: AtomicU64,
    /// Heartbeat slots, allocated once per campaign by `begin_campaign`.
    /// Workers clone the `Arc` once per *shard* (a read lock), then update
    /// their slot wait-free per statement.
    beats: RwLock<Arc<Vec<ShardBeat>>>,
    /// Global unique-fault dedup set — locked only on crash events.
    seen_faults: Mutex<HashSet<String>>,
    /// Live growth curves — locked on fault discovery / shard completion.
    bug_curve: Mutex<Vec<LiveBugPoint>>,
    coverage_curve: Mutex<Vec<LiveCoveragePoint>>,
    /// Union of completed shards' coverage — locked once per shard.
    coverage: Mutex<Coverage>,
    /// The append-only live event log behind the `/events` stream: one
    /// pre-rendered flat-JSON line per rare event (shard lifecycle, unique
    /// finding, epoch reallocation, watchdog stall, campaign completion).
    /// Locked only on those events, never per statement.
    events: Mutex<Vec<Arc<str>>>,
    /// Raised by [`LiveMetrics::finish_campaign`]; tells `/events` consumers
    /// the log is complete and the stream can terminate.
    events_done: AtomicBool,
}

impl Default for LiveMetrics {
    fn default() -> Self {
        LiveMetrics::new()
    }
}

/// Maps a pattern to its counter slot (0 = seed replay).
fn pattern_slot(pattern: Option<PatternId>) -> usize {
    match pattern {
        None => 0,
        Some(p) => 1 + PatternId::ALL.iter().position(|&q| q == p).unwrap_or(0),
    }
}

/// The label of a counter slot.
fn slot_label(slot: usize) -> &'static str {
    if slot == 0 {
        "seed"
    } else {
        PatternId::ALL[slot - 1].label()
    }
}

impl LiveMetrics {
    /// A fresh, empty registry. The campaign clock starts now.
    pub fn new() -> LiveMetrics {
        LiveMetrics {
            started: Instant::now(),
            dialect: Mutex::new(String::new()),
            planned_statements: AtomicU64::new(0),
            statements: AtomicU64::new(0),
            outcomes: Default::default(),
            per_pattern: Default::default(),
            unique_faults: AtomicU64::new(0),
            shards_total: AtomicU64::new(0),
            shards_done: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            beats: RwLock::new(Arc::new(Vec::new())),
            seen_faults: Mutex::new(HashSet::new()),
            bug_curve: Mutex::new(Vec::new()),
            coverage_curve: Mutex::new(Vec::new()),
            coverage: Mutex::new(Coverage::new()),
            events: Mutex::new(Vec::new()),
            events_done: AtomicBool::new(false),
        }
    }

    /// Milliseconds since the registry was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Publishes the campaign shape: dialect, planned statement count, shard
    /// count, worker count. Allocates the heartbeat slots. Called once by
    /// the runner after planning, before any shard executes.
    pub fn begin_campaign(
        &self,
        dialect: &str,
        planned_statements: usize,
        shards: usize,
        workers: usize,
    ) {
        *self.dialect.lock().expect("dialect poisoned") = dialect.to_string();
        self.planned_statements.store(planned_statements as u64, Ordering::Relaxed);
        self.shards_total.store(shards as u64, Ordering::Relaxed);
        self.workers.store(workers as u64, Ordering::Relaxed);
        let mut slots = Vec::with_capacity(shards);
        slots.resize_with(shards, ShardBeat::default);
        *self.beats.write().expect("beats poisoned") = Arc::new(slots);
    }

    /// The heartbeat slot table. Workers call this once per shard; the
    /// watchdog calls it once per poll.
    pub fn beats(&self) -> Arc<Vec<ShardBeat>> {
        Arc::clone(&self.beats.read().expect("beats poisoned"))
    }

    /// Appends one pre-rendered line to the live event log.
    fn push_event(&self, line: String) {
        self.events.lock().expect("events poisoned").push(Arc::from(line.as_str()));
    }

    /// The event log from sequence number `from` onward, plus whether the
    /// log is complete ([`LiveMetrics::finish_campaign`] was called). The
    /// done flag is read *before* the log is locked, so `done == true`
    /// guarantees the returned slice reaches the final event — `/events`
    /// streamers can terminate without a second look.
    pub fn events_since(&self, from: usize) -> (Vec<Arc<str>>, bool) {
        let done = self.events_done.load(Ordering::Acquire);
        let events = self.events.lock().expect("events poisoned");
        let lines = events[from.min(events.len())..].to_vec();
        (lines, done)
    }

    /// Marks the event log complete: appends the `done` summary event, then
    /// raises the flag `/events` streamers terminate on. Called once by the
    /// campaign runner after the merge.
    pub fn finish_campaign(&self) {
        let line = format!(
            "{{{}, {}, {}, {}}}",
            str_field("type", "done"),
            num_field("statements", self.statements.load(Ordering::Relaxed) as i64),
            num_field("unique", self.unique_faults.load(Ordering::Relaxed) as i64),
            num_field("ms", self.elapsed_ms() as i64)
        );
        self.push_event(line);
        self.events_done.store(true, Ordering::Release);
    }

    /// Records one epoch reallocation of the feedback scheduler into the
    /// event log (the deterministic record lives in the journal; this is
    /// the live mirror).
    pub fn record_epoch(&self, epoch: usize, start_statement: usize, budget: usize) {
        let line = format!(
            "{{{}, {}, {}, {}, {}}}",
            str_field("type", "epoch"),
            num_field("epoch", epoch as i64),
            num_field("start_statement", start_statement as i64),
            num_field("budget", budget as i64),
            num_field("ms", self.elapsed_ms() as i64)
        );
        self.push_event(line);
    }

    /// Records a watchdog stall observation into the event log.
    pub fn record_stall(&self, shard: usize, last_index: u64, stalled_ms: u64) {
        let line = format!(
            "{{{}, {}, {}, {}, {}}}",
            str_field("type", "stall"),
            num_field("shard", shard as i64),
            num_field("last_index", last_index as i64),
            num_field("stalled_ms", stalled_ms as i64),
            num_field("ms", self.elapsed_ms() as i64)
        );
        self.push_event(line);
    }

    /// Marks a shard claimed by a worker.
    pub fn shard_started(&self, beat: &ShardBeat, shard: usize) {
        beat.last_beat_ms.store(self.elapsed_ms(), Ordering::Relaxed);
        beat.state.store(1, Ordering::Release);
        let line = format!(
            "{{{}, {}, {}, {}}}",
            str_field("type", "shard"),
            num_field("shard", shard as i64),
            str_field("state", "running"),
            num_field("ms", self.elapsed_ms() as i64)
        );
        self.push_event(line);
    }

    /// Records one executed statement — the wait-free hot path: five
    /// `fetch_add`s and three `store`s, no locks, no allocation.
    pub fn record_statement(
        &self,
        beat: &ShardBeat,
        global_index: usize,
        pattern: Option<PatternId>,
        class: OutcomeClass,
    ) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        self.outcomes[class as usize].fetch_add(1, Ordering::Relaxed);
        let cell = &self.per_pattern[pattern_slot(pattern)];
        cell.executed.fetch_add(1, Ordering::Relaxed);
        match class {
            OutcomeClass::Crash => cell.crashes.fetch_add(1, Ordering::Relaxed),
            OutcomeClass::Error => cell.errors.fetch_add(1, Ordering::Relaxed),
            OutcomeClass::ResourceLimit => cell.resource_limits.fetch_add(1, Ordering::Relaxed),
            OutcomeClass::LogicBug => cell.logic_bugs.fetch_add(1, Ordering::Relaxed),
            OutcomeClass::Ok => 0,
        };
        beat.last_index.store(global_index as u64, Ordering::Relaxed);
        beat.statements.fetch_add(1, Ordering::Relaxed);
        beat.last_beat_ms.store(self.elapsed_ms(), Ordering::Relaxed);
    }

    /// Records a crash the shard has not seen before. Takes the global dedup
    /// lock (crash events are rare, and the shard-local dedup already
    /// filtered repeats); appends a live bug-curve point when the fault is
    /// globally new. Returns whether it was.
    pub fn record_unique_candidate(&self, fault_id: &str) -> bool {
        let mut seen = self.seen_faults.lock().expect("faults poisoned");
        if !seen.insert(fault_id.to_string()) {
            return false;
        }
        let unique = seen.len() as u64;
        drop(seen);
        self.unique_faults.store(unique, Ordering::Relaxed);
        let statements = self.statements.load(Ordering::Relaxed);
        self.bug_curve.lock().expect("bug curve poisoned").push(LiveBugPoint {
            statements,
            unique,
            fault_id: fault_id.to_string(),
        });
        let line = format!(
            "{{{}, {}, {}, {}, {}}}",
            str_field("type", "finding"),
            str_field("fault", fault_id),
            num_field("unique", unique as i64),
            num_field("statements", statements as i64),
            num_field("ms", self.elapsed_ms() as i64)
        );
        self.push_event(line);
        true
    }

    /// Marks a shard finished, merging its coverage into the live union and
    /// appending a live coverage-curve point. One lock per *shard*, never
    /// per statement.
    pub fn shard_finished(&self, beat: &ShardBeat, shard: usize, shard_coverage: &Coverage) {
        beat.state.store(2, Ordering::Release);
        self.shards_done.fetch_add(1, Ordering::Relaxed);
        let mut coverage = self.coverage.lock().expect("coverage poisoned");
        coverage.merge(shard_coverage);
        let point = LiveCoveragePoint {
            statements: self.statements.load(Ordering::Relaxed),
            functions: coverage.functions_triggered() as u64,
            branches: coverage.branches_covered() as u64,
        };
        drop(coverage);
        self.coverage_curve.lock().expect("coverage curve poisoned").push(point);
        let line = format!(
            "{{{}, {}, {}, {}, {}}}",
            str_field("type", "shard"),
            num_field("shard", shard as i64),
            str_field("state", "done"),
            num_field("statements", beat.statements() as i64),
            num_field("ms", self.elapsed_ms() as i64)
        );
        self.push_event(line);
    }

    /// A consistent-enough point-in-time copy of every surface, for the
    /// exposition server and the TTY ticker. ("Consistent enough": counters
    /// are read individually, so a scrape racing the campaign can be off by
    /// in-flight statements — that is inherent to live metrics and why the
    /// registry stays outside report equality.)
    pub fn snapshot(&self) -> LiveSnapshot {
        let beats = self.beats();
        let elapsed_ms = self.elapsed_ms();
        let statements = self.statements.load(Ordering::Relaxed);
        let per_pattern = (0..PATTERN_SLOTS)
            .map(|i| {
                let c = &self.per_pattern[i];
                PatternSnapshot {
                    label: slot_label(i),
                    executed: c.executed.load(Ordering::Relaxed),
                    crashes: c.crashes.load(Ordering::Relaxed),
                    errors: c.errors.load(Ordering::Relaxed),
                    resource_limits: c.resource_limits.load(Ordering::Relaxed),
                    logic_bugs: c.logic_bugs.load(Ordering::Relaxed),
                }
            })
            .collect();
        LiveSnapshot {
            dialect: self.dialect.lock().expect("dialect poisoned").clone(),
            elapsed_ms,
            planned_statements: self.planned_statements.load(Ordering::Relaxed),
            statements,
            outcomes: OutcomeClass::ALL
                .map(|c| (c, self.outcomes[c as usize].load(Ordering::Relaxed))),
            per_pattern,
            unique_faults: self.unique_faults.load(Ordering::Relaxed),
            shards_total: self.shards_total.load(Ordering::Relaxed),
            shards_done: self.shards_done.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
            statements_per_sec: if elapsed_ms == 0 {
                0.0
            } else {
                statements as f64 * 1000.0 / elapsed_ms as f64
            },
            shards: beats
                .iter()
                .map(|b| ShardSnapshot {
                    state: b.state(),
                    last_index: b.last_index(),
                    last_beat_ms: b.last_beat_ms(),
                    statements: b.statements(),
                })
                .collect(),
            bug_curve: self.bug_curve.lock().expect("bug curve poisoned").clone(),
            coverage_curve: self.coverage_curve.lock().expect("coverage curve poisoned").clone(),
        }
    }
}

/// Point-in-time copy of one pattern slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSnapshot {
    /// `seed` for phase-1 replays, otherwise the pattern label.
    pub label: &'static str,
    /// Statements executed.
    pub executed: u64,
    /// Crash outcomes (including repeats).
    pub crashes: u64,
    /// Ordinary SQL errors.
    pub errors: u64,
    /// Resource-limit kills.
    pub resource_limits: u64,
    /// Wrong-result verdicts from the logic-bug oracles.
    pub logic_bugs: u64,
}

/// Point-in-time copy of one shard heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Lifecycle state.
    pub state: ShardState,
    /// Last global statement index reported.
    pub last_index: u64,
    /// Milliseconds since campaign start at the last heartbeat.
    pub last_beat_ms: u64,
    /// Statements the shard executed so far.
    pub statements: u64,
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone)]
pub struct LiveSnapshot {
    /// Dialect under test (empty before `begin_campaign`).
    pub dialect: String,
    /// Milliseconds since the registry was created.
    pub elapsed_ms: u64,
    /// Planned statement count (the campaign budget actually scheduled).
    pub planned_statements: u64,
    /// Statements executed so far.
    pub statements: u64,
    /// Per-outcome-class counters, in [`OutcomeClass::ALL`] order.
    pub outcomes: [(OutcomeClass, u64); OutcomeClass::ALL.len()],
    /// Per-pattern counters (slot 0 = seed replays).
    pub per_pattern: Vec<PatternSnapshot>,
    /// Unique fault ids seen so far.
    pub unique_faults: u64,
    /// Total shards planned.
    pub shards_total: u64,
    /// Shards finished.
    pub shards_done: u64,
    /// Worker threads executing the campaign.
    pub workers: u64,
    /// Overall execution rate so far.
    pub statements_per_sec: f64,
    /// Per-shard heartbeat snapshots, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Live unique-bug curve (approximate statement counts).
    pub bug_curve: Vec<LiveBugPoint>,
    /// Live coverage curve, one point per completed shard.
    pub coverage_curve: Vec<LiveCoveragePoint>,
}

impl LiveSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4) — the `/metrics` payload. The full name inventory is
    /// documented in EXPERIMENTS.md.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "soft_statements_total",
            "Statements executed so far.",
            self.statements as f64,
        );
        counter(
            "soft_unique_faults_total",
            "Distinct fault ids observed so far.",
            self.unique_faults as f64,
        );
        let _ = writeln!(out, "# HELP soft_outcomes_total Statements per outcome class.");
        let _ = writeln!(out, "# TYPE soft_outcomes_total counter");
        for (class, n) in self.outcomes {
            let _ = writeln!(out, "soft_outcomes_total{{class=\"{}\"}} {n}", class.label());
        }
        let _ = writeln!(
            out,
            "# HELP soft_pattern_statements_total Statements executed per generation pattern."
        );
        let _ = writeln!(out, "# TYPE soft_pattern_statements_total counter");
        for p in &self.per_pattern {
            let _ = writeln!(
                out,
                "soft_pattern_statements_total{{pattern=\"{}\"}} {}",
                p.label, p.executed
            );
        }
        let _ = writeln!(
            out,
            "# HELP soft_pattern_crashes_total Crash outcomes per generation pattern."
        );
        let _ = writeln!(out, "# TYPE soft_pattern_crashes_total counter");
        for p in &self.per_pattern {
            let _ = writeln!(
                out,
                "soft_pattern_crashes_total{{pattern=\"{}\"}} {}",
                p.label, p.crashes
            );
        }
        let mut gauge = |name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "soft_statements_planned",
            "Statements the campaign plan schedules.",
            self.planned_statements as f64,
        );
        gauge("soft_shards_total", "Shards in the campaign plan.", self.shards_total as f64);
        gauge("soft_shards_done", "Shards finished.", self.shards_done as f64);
        gauge("soft_workers", "Worker threads executing the campaign.", self.workers as f64);
        gauge(
            "soft_statements_per_sec",
            "Overall execution rate since campaign start.",
            self.statements_per_sec,
        );
        gauge(
            "soft_elapsed_seconds",
            "Seconds since the campaign registry was created.",
            self.elapsed_ms as f64 / 1000.0,
        );
        let _ = writeln!(
            out,
            "# HELP soft_shard_last_index Last global statement index per shard."
        );
        let _ = writeln!(out, "# TYPE soft_shard_last_index gauge");
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "soft_shard_last_index{{shard=\"{i}\"}} {}", s.last_index);
        }
        let _ = writeln!(
            out,
            "# HELP soft_shard_state Shard lifecycle (0 pending, 1 running, 2 done)."
        );
        let _ = writeln!(out, "# TYPE soft_shard_state gauge");
        for (i, s) in self.shards.iter().enumerate() {
            let state = match s.state {
                ShardState::Pending => 0,
                ShardState::Running => 1,
                ShardState::Done => 2,
            };
            let _ = writeln!(out, "soft_shard_state{{shard=\"{i}\"}} {state}");
        }
        out
    }

    /// Renders the snapshot as one flat JSON object — the `/status` payload.
    /// Flat on purpose: it parses with the same [`crate::json`] reader the
    /// journal uses.
    pub fn render_status_json(&self) -> String {
        use crate::json::{num_field, str_field};
        let mut fields = vec![
            str_field("dialect", &self.dialect),
            num_field("elapsed_ms", self.elapsed_ms as i64),
            num_field("planned", self.planned_statements as i64),
            num_field("statements", self.statements as i64),
        ];
        for (class, n) in self.outcomes {
            fields.push(num_field(class.label(), n as i64));
        }
        fields.push(num_field("unique_faults", self.unique_faults as i64));
        fields.push(num_field("shards_total", self.shards_total as i64));
        fields.push(num_field("shards_done", self.shards_done as i64));
        fields.push(num_field("workers", self.workers as i64));
        fields.push(num_field("statements_per_sec", self.statements_per_sec as i64));
        format!("{{{}}}\n", fields.join(", "))
    }

    /// Renders the live growth curves as JSONL — the `/curve` payload, in
    /// the same record idiom as the campaign journal.
    pub fn render_curve_jsonl(&self) -> String {
        use crate::json::{num_field, str_field};
        let mut out = String::new();
        for b in &self.bug_curve {
            let _ = writeln!(
                out,
                "{{{}, {}, {}, {}}}",
                str_field("type", "bug"),
                num_field("statements", b.statements as i64),
                num_field("unique", b.unique as i64),
                str_field("fault", &b.fault_id)
            );
        }
        for c in &self.coverage_curve {
            let _ = writeln!(
                out,
                "{{{}, {}, {}, {}}}",
                str_field("type", "coverage"),
                num_field("statements", c.statements as i64),
                num_field("functions", c.functions as i64),
                num_field("branches", c.branches as i64)
            );
        }
        out
    }

    /// Renders the one-line `--progress` ticker.
    pub fn render_progress_line(&self) -> String {
        let pct = if self.planned_statements == 0 {
            0.0
        } else {
            100.0 * self.statements as f64 / self.planned_statements as f64
        };
        format!(
            "{} {}/{} statements ({pct:.0}%), {} bugs, {} errors, {} rlimit, \
             shards {}/{}, {:.0} st/s",
            if self.dialect.is_empty() { "campaign" } else { &self.dialect },
            self.statements,
            self.planned_statements,
            self.unique_faults,
            self.outcomes[OutcomeClass::Error as usize].1,
            self.outcomes[OutcomeClass::ResourceLimit as usize].1,
            self.shards_done,
            self.shards_total,
            self.statements_per_sec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_activity() -> LiveMetrics {
        let m = LiveMetrics::new();
        m.begin_campaign("MonetDB", 100, 2, 3);
        let beats = m.beats();
        m.shard_started(&beats[0], 0);
        m.record_statement(&beats[0], 1, None, OutcomeClass::Ok);
        m.record_statement(&beats[0], 2, Some(PatternId::P1_2), OutcomeClass::Crash);
        m.record_statement(&beats[0], 3, Some(PatternId::P3_3), OutcomeClass::Error);
        assert!(m.record_unique_candidate("f-1"));
        assert!(!m.record_unique_candidate("f-1"));
        let mut cov = Coverage::new();
        cov.record_function("substr");
        cov.record_branch("substr", "site");
        m.shard_finished(&beats[0], 0, &cov);
        m
    }

    #[test]
    fn event_log_streams_flat_json_and_terminates() {
        let m = registry_with_activity();
        let (lines, done) = m.events_since(0);
        assert!(!done, "log must stay open until finish_campaign");
        let types: Vec<String> = lines
            .iter()
            .map(|l| {
                let obj = crate::json::parse_object(l).expect("flat json event");
                obj["type"].as_str().expect("type").to_string()
            })
            .collect();
        assert_eq!(types, vec!["shard", "finding", "shard"]);
        let finding = crate::json::parse_object(&lines[1]).expect("finding");
        assert_eq!(finding["fault"].as_str(), Some("f-1"));
        assert_eq!(finding["unique"].as_num(), Some(1));

        m.record_epoch(1, 65, 1000);
        m.record_stall(0, 3, 6000);
        m.finish_campaign();
        let (rest, done) = m.events_since(lines.len());
        assert!(done, "finish_campaign closes the log");
        let rest_types: Vec<&str> = rest
            .iter()
            .map(|l| match l {
                l if l.contains("\"epoch\"") => "epoch",
                l if l.contains("\"stall\"") => "stall",
                _ => "done",
            })
            .collect();
        assert_eq!(rest_types, vec!["epoch", "stall", "done"]);
        let done_line = crate::json::parse_object(&rest[2]).expect("done event");
        assert_eq!(done_line["type"].as_str(), Some("done"));
        assert_eq!(done_line["statements"].as_num(), Some(3));
        assert_eq!(done_line["unique"].as_num(), Some(1));
        // Reads past the end are empty, not a panic.
        assert!(m.events_since(999).0.is_empty());
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = registry_with_activity();
        let s = m.snapshot();
        assert_eq!(s.dialect, "MonetDB");
        assert_eq!(s.statements, 3);
        assert_eq!(s.planned_statements, 100);
        assert_eq!(s.outcomes[OutcomeClass::Ok as usize].1, 1);
        assert_eq!(s.outcomes[OutcomeClass::Crash as usize].1, 1);
        assert_eq!(s.outcomes[OutcomeClass::Error as usize].1, 1);
        assert_eq!(s.unique_faults, 1);
        assert_eq!(s.shards_done, 1);
        assert_eq!(s.shards_total, 2);
        assert_eq!(s.workers, 3);
        let seed = &s.per_pattern[0];
        assert_eq!((seed.label, seed.executed), ("seed", 1));
        let p12 = s.per_pattern.iter().find(|p| p.label == "P1.2").expect("slot");
        assert_eq!((p12.executed, p12.crashes), (1, 1));
        assert_eq!(s.shards[0].state, ShardState::Done);
        assert_eq!(s.shards[0].last_index, 3);
        assert_eq!(s.shards[0].statements, 3);
        assert_eq!(s.shards[1].state, ShardState::Pending);
        assert_eq!(s.bug_curve.len(), 1);
        assert_eq!(s.coverage_curve.len(), 1);
        assert_eq!(s.coverage_curve[0].functions, 1);
    }

    #[test]
    fn prometheus_rendering_has_the_documented_names() {
        let s = registry_with_activity().snapshot();
        let text = s.render_prometheus();
        for name in [
            "soft_statements_total 3",
            "soft_unique_faults_total 1",
            "soft_outcomes_total{class=\"crash\"} 1",
            "soft_pattern_statements_total{pattern=\"P1.2\"} 1",
            "soft_pattern_crashes_total{pattern=\"P1.2\"} 1",
            "soft_statements_planned 100",
            "soft_shards_total 2",
            "soft_shards_done 1",
            "soft_workers 3",
            "soft_shard_last_index{shard=\"0\"} 3",
            "soft_shard_state{shard=\"0\"} 2",
            "soft_shard_state{shard=\"1\"} 0",
        ] {
            assert!(text.contains(name), "missing {name:?} in:\n{text}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line {line:?}");
        }
    }

    #[test]
    fn status_json_is_flat_parseable() {
        let s = registry_with_activity().snapshot();
        let obj = crate::json::parse_object(s.render_status_json().trim()).expect("flat json");
        assert_eq!(obj["dialect"].as_str(), Some("MonetDB"));
        assert_eq!(obj["statements"].as_num(), Some(3));
        assert_eq!(obj["unique_faults"].as_num(), Some(1));
        assert_eq!(obj["crash"].as_num(), Some(1));
    }

    #[test]
    fn curve_jsonl_parses_line_by_line() {
        let s = registry_with_activity().snapshot();
        let text = s.render_curve_jsonl();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let bug = crate::json::parse_object(lines[0]).expect("bug line");
        assert_eq!(bug["type"].as_str(), Some("bug"));
        assert_eq!(bug["fault"].as_str(), Some("f-1"));
        let cov = crate::json::parse_object(lines[1]).expect("coverage line");
        assert_eq!(cov["type"].as_str(), Some("coverage"));
        assert_eq!(cov["functions"].as_num(), Some(1));
    }

    #[test]
    fn progress_line_mentions_the_essentials() {
        let s = registry_with_activity().snapshot();
        let line = s.render_progress_line();
        assert!(line.contains("MonetDB"), "{line}");
        assert!(line.contains("3/100 statements"), "{line}");
        assert!(line.contains("1 bugs"), "{line}");
        assert!(line.contains("shards 1/2"), "{line}");
    }
}
