//! The statement-level event journal and its JSONL sink.
//!
//! Shards buffer events privately; [`Journal::merge_shards`] concatenates
//! the buffers and sorts by the global statement index, which is assigned
//! at *planning* time — so the merged journal is identical for any worker
//! count, event for event. The JSONL form is one flat object per line:
//!
//! ```text
//! {"type": "campaign", "dialect": "MonetDB", "statements": 1000, ...}
//! {"type": "generated", "pattern": "P1.1", "cases": 64}
//! {"type": "stmt", "index": 1, "shard": 0, "seed": 0, ...}
//! {"type": "coverage", "statements": 500, "functions": 120, "branches": 900}
//! ```

use crate::curve::CoveragePoint;
use crate::event::{OutcomeClass, StatementEvent};
use crate::json::{self, JsonValue};
use crate::schedule::EpochRealloc;
use soft_engine::PatternId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A globally ordered event journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    /// Events in global statement order (strictly increasing `index`).
    pub events: Vec<StatementEvent>,
}

impl Journal {
    /// Merges per-shard event buffers into global statement order.
    ///
    /// The merge is a sort on the planned statement index — completion order
    /// and scheduling never leak in. Panics (debug assertion) if two events
    /// claim the same index, which would mean the planner handed the same
    /// statement to two shards.
    pub fn merge_shards(shards: Vec<Vec<StatementEvent>>) -> Journal {
        let mut events: Vec<StatementEvent> = shards.into_iter().flatten().collect();
        events.sort_by_key(|e| e.index);
        debug_assert!(
            events.windows(2).all(|w| w[0].index < w[1].index),
            "duplicate statement index in journal"
        );
        Journal { events }
    }

    /// Number of distinct fault ids among crash and logic-bug events.
    pub fn unique_faults(&self) -> usize {
        let mut faults: Vec<&str> =
            self.events.iter().filter_map(|e| e.fault_id.as_deref()).collect();
        faults.sort_unstable();
        faults.dedup();
        faults.len()
    }

    /// Outcome-class counts, in [`OutcomeClass::ALL`] order.
    pub fn outcome_counts(&self) -> [(OutcomeClass, usize); 5] {
        OutcomeClass::ALL
            .map(|class| (class, self.events.iter().filter(|e| e.outcome == class).count()))
    }

    /// Renders one event as a JSONL line (without trailing newline).
    pub fn event_line(e: &StatementEvent) -> String {
        let mut fields = vec![
            json::str_field("type", "stmt"),
            json::num_field("index", e.index as i64),
            json::num_field("shard", e.shard as i64),
        ];
        match e.seed {
            Some(s) => fields.push(json::num_field("seed", s as i64)),
            None => fields.push("\"seed\": null".to_string()),
        }
        match e.pattern {
            Some(p) => fields.push(json::str_field("pattern", p.label())),
            None => fields.push("\"pattern\": null".to_string()),
        }
        match &e.function {
            Some(f) => fields.push(json::str_field("function", f)),
            None => fields.push("\"function\": null".to_string()),
        }
        fields.push(json::str_field("outcome", e.outcome.label()));
        match &e.fault_id {
            Some(f) => fields.push(json::str_field("fault", f)),
            None => fields.push("\"fault\": null".to_string()),
        }
        format!("{{{}}}", fields.join(", "))
    }
}

/// A parsed journal file: the campaign header plus all record streams.
///
/// This is what `repro trace` operates on; it carries enough to rebuild the
/// yield tables and both growth curves without re-running the campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceFile {
    /// Dialect name from the campaign header (e.g. `MonetDB`).
    pub dialect: Option<String>,
    /// Total statements the campaign executed, from the header.
    pub statements: Option<usize>,
    /// Coverage snapshot interval, from the header.
    pub snapshot_interval: Option<usize>,
    /// Pre-dedup per-pattern generation counts.
    pub generated: Vec<(PatternId, usize)>,
    /// The event journal, in global statement order.
    pub journal: Journal,
    /// Coverage snapshots, in statement order.
    pub coverage: Vec<CoveragePoint>,
    /// Scheduler epoch reallocations, in epoch order (empty for statically
    /// scheduled campaigns and for journals written before the scheduler).
    pub epochs: Vec<EpochRealloc>,
}

impl TraceFile {
    /// Parses a JSONL journal document. Unknown record types are ignored
    /// (forward compatibility); malformed lines are errors.
    pub fn parse(text: &str) -> Result<TraceFile, String> {
        Self::parse_inner(text, false).map(|(trace, _)| trace)
    }

    /// Like [`TraceFile::parse`], but *lenient*: malformed lines are
    /// skipped and counted instead of failing the whole document. Returns
    /// the trace plus the number of lines skipped; errs only when the
    /// journal is entirely unparseable (at least one non-empty line and
    /// not a single one parsed). Meant for operating on partial or damaged
    /// journals — e.g. one truncated by a killed campaign — where strict
    /// parsing would reject everything because of one bad tail line.
    pub fn parse_lenient(text: &str) -> Result<(TraceFile, usize), String> {
        Self::parse_inner(text, true)
    }

    fn parse_inner(text: &str, lenient: bool) -> Result<(TraceFile, usize), String> {
        let mut out = TraceFile::default();
        let mut events = Vec::new();
        let mut skipped = 0usize;
        let mut parsed = 0usize;
        let mut first_err: Option<String> = None;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let obj = match json::parse_object(line)
                .map_err(|e| format!("line {}: {e}", lineno + 1))
            {
                Ok(obj) => obj,
                Err(e) if lenient => {
                    skipped += 1;
                    first_err.get_or_insert(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let kind = obj.get("type").and_then(JsonValue::as_str).unwrap_or("");
            let record = (|| -> Result<(), String> {
                match kind {
                    "campaign" => {
                        out.dialect =
                            obj.get("dialect").and_then(JsonValue::as_str).map(str::to_string);
                        out.statements = get_usize(&obj, "statements");
                        out.snapshot_interval = get_usize(&obj, "snapshot_interval");
                    }
                    "generated" => {
                        let pattern = obj
                            .get("pattern")
                            .and_then(JsonValue::as_str)
                            .and_then(PatternId::from_label)
                            .ok_or_else(|| format!("line {}: bad pattern", lineno + 1))?;
                        let cases = get_usize(&obj, "cases")
                            .ok_or_else(|| format!("line {}: missing cases", lineno + 1))?;
                        out.generated.push((pattern, cases));
                    }
                    "stmt" => events.push(parse_event(&obj, lineno + 1)?),
                    "epoch" => {
                        let (header, alloc) = EpochRealloc::parse_record(&obj, lineno + 1)?;
                        match out.epochs.last_mut() {
                            Some(last) if last.epoch == header.epoch => {
                                last.allocations.push(alloc)
                            }
                            _ => {
                                let mut epoch = header;
                                epoch.allocations.push(alloc);
                                out.epochs.push(epoch);
                            }
                        }
                    }
                    "coverage" => out.coverage.push(CoveragePoint {
                        statements: get_usize(&obj, "statements").ok_or_else(|| {
                            format!("line {}: missing statements", lineno + 1)
                        })?,
                        functions: get_usize(&obj, "functions").unwrap_or(0),
                        branches: get_usize(&obj, "branches").unwrap_or(0),
                    }),
                    _ => {}
                }
                Ok(())
            })();
            match record {
                Ok(()) => parsed += 1,
                Err(e) if lenient => {
                    skipped += 1;
                    first_err.get_or_insert(e);
                }
                Err(e) => return Err(e),
            }
        }
        if lenient && parsed == 0 && skipped > 0 {
            return Err(first_err.unwrap_or_else(|| "no parseable lines".into()));
        }
        events.sort_by_key(|e: &StatementEvent| e.index);
        out.journal = Journal { events };
        Ok((out, skipped))
    }

    /// Serialises the trace back to its JSONL form.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut header = vec![json::str_field("type", "campaign")];
        if let Some(d) = &self.dialect {
            header.push(json::str_field("dialect", d));
        }
        if let Some(n) = self.statements {
            header.push(json::num_field("statements", n as i64));
        }
        if let Some(n) = self.snapshot_interval {
            header.push(json::num_field("snapshot_interval", n as i64));
        }
        header.push(json::num_field("events", self.journal.events.len() as i64));
        let _ = writeln!(out, "{{{}}}", header.join(", "));
        for &(pattern, cases) in &self.generated {
            let _ = writeln!(
                out,
                "{{{}, {}, {}}}",
                json::str_field("type", "generated"),
                json::str_field("pattern", pattern.label()),
                json::num_field("cases", cases as i64)
            );
        }
        for e in &self.journal.events {
            out.push_str(&Journal::event_line(e));
            out.push('\n');
        }
        for p in &self.coverage {
            let _ = writeln!(
                out,
                "{{{}, {}, {}, {}}}",
                json::str_field("type", "coverage"),
                json::num_field("statements", p.statements as i64),
                json::num_field("functions", p.functions as i64),
                json::num_field("branches", p.branches as i64)
            );
        }
        for e in &self.epochs {
            out.push_str(&e.to_jsonl());
        }
        out
    }
}

fn get_usize(obj: &BTreeMap<String, JsonValue>, key: &str) -> Option<usize> {
    obj.get(key).and_then(JsonValue::as_num).and_then(|n| usize::try_from(n).ok())
}

fn parse_event(
    obj: &BTreeMap<String, JsonValue>,
    lineno: usize,
) -> Result<StatementEvent, String> {
    Ok(StatementEvent {
        index: get_usize(obj, "index").ok_or_else(|| format!("line {lineno}: missing index"))?,
        shard: get_usize(obj, "shard").unwrap_or(0),
        seed: get_usize(obj, "seed"),
        pattern: obj
            .get("pattern")
            .and_then(JsonValue::as_str)
            .and_then(PatternId::from_label),
        function: obj.get("function").and_then(JsonValue::as_str).map(Into::into),
        outcome: obj
            .get("outcome")
            .and_then(JsonValue::as_str)
            .and_then(OutcomeClass::from_label)
            .ok_or_else(|| format!("line {lineno}: bad outcome"))?,
        fault_id: obj.get("fault").and_then(JsonValue::as_str).map(Into::into),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> TraceFile {
        let mut crash = StatementEvent::seed(3, 1, 4, Some("substr".into()));
        crash.pattern = Some(PatternId::P2_1);
        crash.outcome = OutcomeClass::Crash;
        crash.fault_id = Some("demo-001".into());
        TraceFile {
            dialect: Some("MonetDB".into()),
            statements: Some(3),
            snapshot_interval: Some(2),
            generated: vec![(PatternId::P1_1, 12), (PatternId::P2_1, 9)],
            journal: Journal::merge_shards(vec![
                vec![crash],
                vec![
                    StatementEvent::seed(1, 0, 0, Some("floor".into())),
                    StatementEvent::seed(2, 0, 1, None),
                ],
            ]),
            coverage: vec![CoveragePoint { statements: 2, functions: 5, branches: 40 }],
            epochs: vec![
                EpochRealloc {
                    epoch: 0,
                    start_statement: 1,
                    budget: 2,
                    allocations: vec![crate::schedule::ArmAlloc {
                        pattern: PatternId::P1_1,
                        category: soft_types::category::FunctionCategory::String,
                        planned: 2,
                        executed: 2,
                        score_milli: 0,
                    }],
                },
                EpochRealloc {
                    epoch: 1,
                    start_statement: 3,
                    budget: 1,
                    allocations: vec![crate::schedule::ArmAlloc {
                        pattern: PatternId::P2_1,
                        category: soft_types::category::FunctionCategory::Math,
                        planned: 1,
                        executed: 1,
                        score_milli: 1500,
                    }],
                },
            ],
        }
    }

    #[test]
    fn merge_orders_events_globally() {
        let t = sample_trace();
        let indices: Vec<usize> = t.journal.events.iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![1, 2, 3]);
        assert_eq!(t.journal.unique_faults(), 1);
        let counts = t.journal.outcome_counts();
        assert_eq!(counts[0], (OutcomeClass::Ok, 2));
        assert_eq!(counts[3], (OutcomeClass::Crash, 1));
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let t = sample_trace();
        let text = t.to_jsonl();
        let parsed = TraceFile::parse(&text).expect("parses");
        assert_eq!(parsed, t);
        // And the serialised form is stable (byte-identical re-render).
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn unknown_record_types_are_ignored() {
        let text = "{\"type\": \"future-record\", \"x\": 1}\n";
        let parsed = TraceFile::parse(text).expect("parses");
        assert!(parsed.journal.events.is_empty());
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = TraceFile::parse("{\"type\": \"stmt\"}\n").expect_err("missing index");
        assert!(err.contains("line 1"), "{err}");
        let err = TraceFile::parse("not json\n").expect_err("bad line");
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn lenient_parse_skips_and_counts_damaged_lines() {
        // A good journal with two damaged lines spliced in (one bad JSON,
        // one semantically broken record): strict parse rejects the file,
        // lenient parse recovers everything else and counts the skips.
        let good = sample_trace().to_jsonl();
        let mut text = String::new();
        for (i, line) in good.lines().enumerate() {
            text.push_str(line);
            text.push('\n');
            if i == 0 {
                text.push_str("truncated {\"type\": \"stm\n");
                text.push_str("{\"type\": \"stmt\", \"outcome\": \"ok\"}\n");
            }
        }
        assert!(TraceFile::parse(&text).is_err());
        let (trace, skipped) = TraceFile::parse_lenient(&text).expect("recovers");
        assert_eq!(skipped, 2);
        assert_eq!(trace, sample_trace());
        // A fully clean journal skips nothing...
        let (trace, skipped) = TraceFile::parse_lenient(&good).expect("clean");
        assert_eq!(skipped, 0);
        assert_eq!(trace, sample_trace());
        // ...an empty one is fine (nothing to skip)...
        assert_eq!(TraceFile::parse_lenient("").expect("empty").1, 0);
        // ...but a journal with no parseable line at all is still an error.
        let err = TraceFile::parse_lenient("garbage\nmore garbage\n").expect_err("all bad");
        assert!(err.contains("line 1"), "{err}");
    }
}
