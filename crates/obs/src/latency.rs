//! Fixed-bucket wall-clock latency histograms per pipeline stage.
//!
//! These are the only *non-deterministic* telemetry: they measure real time
//! and therefore live outside the campaign report's `PartialEq` surface
//! (next to `ShardTiming`, on `soft_core::campaign::CampaignRun`'s side of
//! the split).

use std::fmt::Write as _;
use std::time::Duration;

/// Number of histogram buckets. Bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds; the last bucket is open-ended, covering
/// everything from ~34 seconds up.
pub const BUCKETS: usize = 36;

/// A log2-bucketed latency histogram (nanosecond resolution, fixed
/// allocation, mergeable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total_ns: u128,
    samples: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { counts: [0; BUCKETS], total_ns: 0, samples: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos();
        let bucket = if ns <= 1 {
            0
        } else {
            (127 - (ns.max(1)).leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.counts[bucket] += 1;
        self.total_ns += ns;
        self.samples += 1;
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean nanoseconds per sample (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.samples as f64
        }
    }

    /// An upper bound on the `q`-quantile (0.0–1.0), in nanoseconds: the
    /// inclusive upper edge of the bucket the quantile falls in. `None` when
    /// the histogram is empty.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.samples == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.samples as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 });
            }
        }
        Some(u64::MAX)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total_ns += other.total_ns;
        self.samples += other.samples;
    }

    /// The raw bucket counts (bucket `i` covers `[2^i, 2^(i+1))` ns).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }
}

/// Per-stage latency histograms for the campaign pipeline.
///
/// The stages are genuinely disjoint: `parse` times the campaign's central
/// prepare pass (`Engine::prepare`, one parse per planned statement) and
/// `execute` times only `Engine::execute_prepared` on the already-parsed
/// AST — no statement is parsed twice, and no parse time is double-counted
/// inside `execute`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageLatency {
    /// Pattern-based case generation, one sample per (pattern) batch.
    pub generate: LatencyHistogram,
    /// Statement preparation (`Engine::prepare`: the parse + function
    /// resolution done once per planned statement).
    pub parse: LatencyHistogram,
    /// Prepared-statement execution (`Engine::execute_prepared`, parse
    /// excluded), one sample per executed statement.
    pub execute: LatencyHistogram,
    /// PoC minimisation, one sample per unique finding.
    pub minimize: LatencyHistogram,
}

impl StageLatency {
    /// An empty set of stage histograms.
    pub fn new() -> StageLatency {
        StageLatency::default()
    }

    /// Merges another stage set into this one.
    pub fn merge(&mut self, other: &StageLatency) {
        self.generate.merge(&other.generate);
        self.parse.merge(&other.parse);
        self.execute.merge(&other.execute);
        self.minimize.merge(&other.minimize);
    }

    /// Renders a `stage → samples / mean / p50 / p99` table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<10} {:>10} {:>12} {:>12} {:>12}\n",
            "stage", "samples", "mean", "p50", "p99"
        );
        for (name, h) in [
            ("generate", &self.generate),
            ("parse", &self.parse),
            ("execute", &self.execute),
            ("minimize", &self.minimize),
        ] {
            let _ = writeln!(
                out,
                "{:<10} {:>10} {:>12} {:>12} {:>12}",
                name,
                h.samples(),
                fmt_ns(h.mean_ns()),
                h.quantile_ns(0.50).map_or_else(|| "-".into(), |n| fmt_ns(n as f64)),
                h.quantile_ns(0.99).map_or_else(|| "-".into(), |n| fmt_ns(n as f64)),
            );
        }
        out
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_log2_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1)); // bucket 0
        h.record(Duration::from_nanos(3)); // bucket 1
        h.record(Duration::from_nanos(1024)); // bucket 10
        assert_eq!(h.samples(), 3);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[10], 1);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100));
        }
        h.record(Duration::from_micros(100));
        let p50 = h.quantile_ns(0.5).expect("non-empty");
        let p99 = h.quantile_ns(0.99).expect("non-empty");
        assert!(p50 >= 100 && p50 < 256, "p50 = {p50}");
        assert!(p99 < 100_000 * 2, "p99 = {p99}");
        assert!(h.quantile_ns(1.0).expect("non-empty") >= 100_000);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(LatencyHistogram::new().quantile_ns(0.5), None);
        assert_eq!(LatencyHistogram::new().mean_ns(), 0.0);
    }

    /// Pins the log₂ bucketing rule at the edges: `bucket(0) = bucket(1) =
    /// 0`; for every k, `2^k − 1` lands one bucket below `2^k`; and
    /// `u64::MAX` saturates into the open-ended last bucket.
    #[test]
    fn bucket_boundaries_are_pinned_at_the_edges() {
        let bucket_of = |ns: u64| -> usize {
            let mut h = LatencyHistogram::new();
            h.record(Duration::from_nanos(ns));
            h.buckets().iter().position(|&n| n == 1).expect("one sample, one bucket")
        };
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        for k in 1..BUCKETS as u32 {
            let pow = 1u64 << k;
            assert_eq!(bucket_of(pow), k as usize, "2^{k} must open bucket {k}");
            assert_eq!(bucket_of(pow - 1), k as usize - 1, "2^{k}-1 must close bucket {}", k - 1);
        }
        // Beyond the last closed bucket everything saturates into bucket 35:
        // 2^36, 2^63, and u64::MAX all land there.
        assert_eq!(bucket_of(1u64 << BUCKETS), BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 63), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    /// Histogram merge is commutative and associative, so the shard join
    /// may fold timings in any order — the merged histogram is a pure
    /// function of the sample multiset.
    #[test]
    fn merge_is_commutative_and_associative_across_shard_orders() {
        // Three "shards" with deliberately different shapes, including the
        // extreme buckets.
        let shard = |samples: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &ns in samples {
                h.record(Duration::from_nanos(ns));
            }
            h
        };
        let a = shard(&[0, 1, 100, u64::MAX]);
        let b = shard(&[2, 1023, 1024]);
        let c = shard(&[7, 7, 7, 1 << 35]);
        let fold = |order: &[&LatencyHistogram]| {
            let mut acc = LatencyHistogram::new();
            for h in order {
                acc.merge(h);
            }
            acc
        };
        let abc = fold(&[&a, &b, &c]);
        // Commutativity: every permutation agrees.
        for order in [
            [&a, &c, &b],
            [&b, &a, &c],
            [&b, &c, &a],
            [&c, &a, &b],
            [&c, &b, &a],
        ] {
            assert_eq!(fold(&order), abc);
        }
        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left, abc);
        // The identity element is the empty histogram.
        let mut with_identity = LatencyHistogram::new();
        with_identity.merge(&abc);
        assert_eq!(with_identity, abc);
        assert_eq!(abc.samples(), 11);
    }

    #[test]
    fn merge_sums_counts_and_samples() {
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_nanos(10));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_nanos(10));
        b.record(Duration::from_micros(5));
        a.merge(&b);
        assert_eq!(a.samples(), 3);
        assert!(a.mean_ns() > 10.0);
    }

    #[test]
    fn stage_render_lists_all_stages() {
        let mut s = StageLatency::new();
        s.execute.record(Duration::from_micros(3));
        let text = s.render();
        for stage in ["generate", "parse", "execute", "minimize"] {
            assert!(text.contains(stage), "missing {stage} in:\n{text}");
        }
    }
}
