//! Hand-rolled, std-only JSON helpers for the JSONL journal sink.
//!
//! The workspace is hermetic (no `serde`), so the journal uses the same
//! idiom as `soft-bench`'s `BENCH_*.json` writer: strings are escaped by
//! hand and records are assembled with `format!`. This module adds the
//! *reader* side — a deliberately minimal parser for the flat (non-nested)
//! one-line objects the journal emits — so `repro trace` can analyze a
//! journal without any external crate.

use std::collections::BTreeMap;

/// A parsed JSON scalar. The journal only ever writes flat objects whose
/// values are strings, integers, or `null`, so that is all the reader
/// models.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON number (the journal only writes integers, parsed as `i64`).
    Num(i64),
    /// JSON `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one `"key": value` pair for a string value.
pub fn str_field(key: &str, value: &str) -> String {
    format!("\"{}\": \"{}\"", escape(key), escape(value))
}

/// Renders one `"key": value` pair for an integer value.
pub fn num_field(key: &str, value: i64) -> String {
    format!("\"{}\": {}", escape(key), value)
}

/// Parses one flat JSON object line (`{"k": "v", "n": 3, "x": null}`) into
/// a key → value map. Rejects nesting, arrays, floats, and trailing junk —
/// the journal never writes them, and a reader that silently accepted a
/// malformed journal would mask sink bugs.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            out.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after object at offset {}", p.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(JsonValue::Null)
                } else {
                    Err("bad literal (expected null)".into())
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!("unsupported value start {other:?}")),
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<i64>().map(JsonValue::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "non-utf8 \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return Err("truncated utf-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}é—🦀";
        let line = format!("{{{}}}", str_field("k", nasty));
        let obj = parse_object(&line).expect("parses");
        assert_eq!(obj["k"].as_str(), Some(nasty));
    }

    #[test]
    fn parses_flat_objects_with_mixed_values() {
        let obj = parse_object(r#"{"type": "stmt", "index": 42, "fault": null, "neg": -7}"#)
            .expect("parses");
        assert_eq!(obj["type"].as_str(), Some("stmt"));
        assert_eq!(obj["index"].as_num(), Some(42));
        assert_eq!(obj["fault"], JsonValue::Null);
        assert_eq!(obj["neg"].as_num(), Some(-7));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "{",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "{\"a\": [1]}",
            "{\"a\": 1.5}",
            "not json",
            "{\"a\": nul}",
        ] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_object("{}").expect("parses").is_empty());
    }
}
