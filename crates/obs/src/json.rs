//! Hand-rolled, std-only JSON helpers for the JSONL journal sink.
//!
//! The workspace is hermetic (no `serde`), so the journal uses the same
//! idiom as `soft-bench`'s `BENCH_*.json` writer: strings are escaped by
//! hand and records are assembled with `format!`. This module adds the
//! *reader* side — a deliberately minimal parser for the flat (non-nested)
//! one-line objects the journal emits — so `repro trace` can analyze a
//! journal without any external crate.
//!
//! The reader backs user-supplied files (`repro trace <path>`, forensics
//! `meta.json`), so it is hardened rather than trusting: truncated `\u`
//! escapes, raw control characters, lone surrogates, and duplicate keys are
//! all structured [`JsonError`]s with a byte offset — never a panic, never a
//! silent accept.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON scalar. The journal only ever writes flat objects whose
/// values are strings, integers, or `null`, so that is all the reader
/// models.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON number (the journal only writes integers, parsed as `i64`).
    Num(i64),
    /// JSON `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A structured parse error: what went wrong and the byte offset it went
/// wrong at. Callers that know the line number prepend it (see
/// `TraceFile::parse`), giving `line N: offset M: ...` diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the line where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    fn new(offset: usize, message: impl Into<String>) -> JsonError {
        JsonError { offset, message: message.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one `"key": value` pair for a string value.
pub fn str_field(key: &str, value: &str) -> String {
    format!("\"{}\": \"{}\"", escape(key), escape(value))
}

/// Renders one `"key": value` pair for an integer value.
pub fn num_field(key: &str, value: i64) -> String {
    format!("\"{}\": {}", escape(key), value)
}

/// Renders one `"key": null` pair.
pub fn null_field(key: &str) -> String {
    format!("\"{}\": null", escape(key))
}

/// Parses one flat JSON object line (`{"k": "v", "n": 3, "x": null}`) into
/// a key → value map. Rejects nesting, arrays, floats, duplicate keys, and
/// trailing junk — the journal never writes them, and a reader that
/// silently accepted a malformed journal would mask sink bugs.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, JsonError> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key_offset = p.pos;
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            if out.insert(key.clone(), value).is_some() {
                return Err(JsonError::new(key_offset, format!("duplicate key {key:?}")));
            }
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(JsonError::new(
                        p.pos.saturating_sub(1),
                        format!("expected ',' or '}}', got {}", describe(other)),
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(p.pos, "trailing bytes after object"));
    }
    Ok(out)
}

/// Renders a byte for error messages (`end of input` for `None`).
fn describe(b: Option<u8>) -> String {
    match b {
        None => "end of input".into(),
        Some(b) if b.is_ascii_graphic() || b == b' ' => format!("{:?}", b as char),
        Some(b) => format!("byte 0x{b:02x}"),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), JsonError> {
        let at = self.pos;
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(JsonError::new(
                at,
                format!("expected {:?}, got {}", want as char, describe(other)),
            )),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(JsonValue::Null)
                } else {
                    Err(JsonError::new(self.pos, "bad literal (expected null)"))
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => {
                Err(JsonError::new(self.pos, format!("unsupported value start {}", describe(other))))
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        // The slice is only ASCII digits (and a leading '-') by
        // construction, so from_utf8 cannot fail.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new(start, "non-ascii number"))?;
        text.parse::<i64>()
            .map(JsonValue::Num)
            .map_err(|e| JsonError::new(start, format!("bad number {text:?}: {e}")))
    }

    /// Reads the 4 hex digits of a `\u` escape (the `\u` already consumed).
    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new(self.pos, "truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new(self.pos, "non-utf8 \\u escape"))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|e| JsonError::new(self.pos, format!("bad \\u escape {hex:?}: {e}")))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let at = self.pos;
            match self.next() {
                None => return Err(JsonError::new(at, "unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        let c = match code {
                            // High surrogate: a low surrogate escape MUST
                            // follow, and the pair decodes to one scalar.
                            0xd800..=0xdbff => {
                                if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                    return Err(JsonError::new(
                                        at,
                                        "lone high surrogate (expected \\u low surrogate)",
                                    ));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..=0xdfff).contains(&low) {
                                    return Err(JsonError::new(
                                        at,
                                        format!("bad low surrogate \\u{low:04x}"),
                                    ));
                                }
                                let scalar =
                                    0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(scalar).ok_or_else(|| {
                                    JsonError::new(at, "surrogate pair out of range")
                                })?
                            }
                            0xdc00..=0xdfff => {
                                return Err(JsonError::new(at, "lone low surrogate"))
                            }
                            _ => char::from_u32(code).ok_or_else(|| {
                                JsonError::new(at, format!("invalid scalar \\u{code:04x}"))
                            })?,
                        };
                        out.push(c);
                    }
                    other => {
                        return Err(JsonError::new(
                            at,
                            format!("bad escape \\{}", describe(other)),
                        ))
                    }
                },
                // RFC 8259: control characters must be escaped inside
                // strings; a raw one means the line was mangled.
                Some(b) if b < 0x20 => {
                    return Err(JsonError::new(
                        at,
                        format!("raw control character 0x{b:02x} in string"),
                    ))
                }
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return Err(JsonError::new(start, "truncated utf-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| JsonError::new(start, "invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}é—🦀";
        let line = format!("{{{}}}", str_field("k", nasty));
        let obj = parse_object(&line).expect("parses");
        assert_eq!(obj["k"].as_str(), Some(nasty));
    }

    #[test]
    fn parses_flat_objects_with_mixed_values() {
        let obj = parse_object(r#"{"type": "stmt", "index": 42, "fault": null, "neg": -7}"#)
            .expect("parses");
        assert_eq!(obj["type"].as_str(), Some("stmt"));
        assert_eq!(obj["index"].as_num(), Some(42));
        assert_eq!(obj["fault"], JsonValue::Null);
        assert_eq!(obj["neg"].as_num(), Some(-7));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "{",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "{\"a\": [1]}",
            "{\"a\": 1.5}",
            "not json",
            "{\"a\": nul}",
        ] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_truncated_escapes_with_offsets() {
        for bad in [
            "{\"a\": \"\\u00\"}",   // 2 hex digits then the closing quote
            "{\"a\": \"\\u\"}",     // no hex digits at all
            "{\"a\": \"\\u00",      // line ends inside the escape
            "{\"a\": \"\\q\"}",     // unknown escape letter
            "{\"a\": \"\\uzzzz\"}", // non-hex digits
        ] {
            let err = parse_object(bad).expect_err(bad);
            assert!(err.message.contains("escape"), "{bad:?} -> {err}");
        }
        // The offset points into the line, and Display carries it.
        let err = parse_object("{\"a\": \"\\u00\"}").expect_err("truncated");
        assert!(err.offset > 0 && err.offset < 14, "offset {}", err.offset);
        assert!(format!("{err}").starts_with(&format!("offset {}", err.offset)));
    }

    #[test]
    fn rejects_raw_control_characters() {
        let bad = "{\"a\": \"x\u{1}y\"}";
        let err = parse_object(bad).expect_err("raw control char");
        assert!(err.message.contains("control character"), "{err}");
        // The escaped form of the same payload is fine.
        let ok = format!("{{{}}}", str_field("a", "x\u{1}y"));
        assert_eq!(parse_object(&ok).expect("parses")["a"].as_str(), Some("x\u{1}y"));
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = parse_object(r#"{"a": 1, "b": 2, "a": 3}"#).expect_err("dup key");
        assert!(err.message.contains("duplicate key \"a\""), "{err}");
        // The offset points at the second "a".
        assert_eq!(err.offset, 17);
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_are_errors() {
        let obj = parse_object(r#"{"crab": "\ud83e\udd80"}"#).expect("pair decodes");
        assert_eq!(obj["crab"].as_str(), Some("🦀"));
        for bad in [
            r#"{"a": "\ud83e"}"#,        // lone high surrogate
            r#"{"a": "\ud83e x"}"#,      // high surrogate, then plain text
            r#"{"a": "\udd80"}"#,        // lone low surrogate
            r#"{"a": "\ud83e\u0041"}"#,  // high surrogate + non-surrogate
        ] {
            let err = parse_object(bad).expect_err(bad);
            assert!(err.message.contains("surrogate"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn accepts_the_remaining_rfc_escapes() {
        let obj = parse_object(r#"{"a": "\/\b\f"}"#).expect("parses");
        assert_eq!(obj["a"].as_str(), Some("/\u{8}\u{c}"));
    }

    #[test]
    fn null_field_renders_and_parses() {
        let line = format!("{{{}}}", null_field("gone"));
        assert_eq!(parse_object(&line).expect("parses")["gone"], JsonValue::Null);
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_object("{}").expect("parses").is_empty());
    }
}
