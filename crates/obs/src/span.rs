//! Span tracing — the campaign **flight recorder**.
//!
//! The existing wall-clock surfaces ([`crate::latency`], `ShardTiming`, the
//! watchdog) answer "how long did stage X take *in aggregate*"; spans answer
//! "what was each worker doing *when*". A span is one named interval on one
//! track: track 0 is the campaign itself (planning, epochs, campaign-level
//! oracles, minimisation), track `s + 1` is shard `s` (the whole shard,
//! its batch groups, and the per-statement execute/oracle stages).
//!
//! # Recording discipline
//!
//! Spans are recorded into **per-shard buffers owned by the executing
//! worker** ([`SpanSink`]) — plain `Vec` pushes, lock-free by ownership,
//! exactly the idiom the telemetry event buffers use. The buffers ride back
//! on each shard's outcome and are merged at the join into one
//! [`SpanTrace`], which lives on `CampaignRun` — the wall-clock side of the
//! two-plane design — and never inside `CampaignReport` equality: arming
//! spans cannot change a report byte.
//!
//! # Export
//!
//! [`SpanTrace::to_chrome_json`] renders the Chrome trace-event format
//! (JSON array of `ph: "X"` duration events plus `ph: "M"` thread-name
//! metadata), which loads directly in Perfetto or `chrome://tracing`.
//! Timestamps are microseconds since campaign start. The workspace is
//! hermetic, so [`validate_json`] provides a std-only syntax check over the
//! nested output (the flat [`crate::json`] reader cannot parse it).
//!
//! Journals carry no wall-clock, so [`journal_trace`] builds a *logical*
//! trace from a parsed [`TraceFile`]: one microsecond per planned statement
//! index, tracks per shard, findings and epoch reallocations as marker
//! spans on the campaign track. It makes `repro trace --chrome` work on any
//! journal, including ones recorded before spans existed.

use crate::journal::TraceFile;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// The track id of campaign-level spans (planning, epochs, merge-side
/// stages). Shard `s` records on track `s + 1`.
pub const CAMPAIGN_TRACK: u64 = 0;

/// One recorded interval: a name, a track, and a `[start, start + dur)`
/// window in nanoseconds since the campaign clock origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`campaign`, `epoch`, `shard`, `batch-group`, `generate`,
    /// `parse`, `execute`, `oracle`, `minimize`, …). Static so the hot path
    /// never allocates for the common case.
    pub name: &'static str,
    /// Track the span renders on: [`CAMPAIGN_TRACK`] or `shard + 1`.
    pub track: u64,
    /// Nanoseconds since the campaign clock origin.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional free-form annotation (exported as `args.detail`). `None` on
    /// the per-statement hot path; populated for rare spans (batch groups,
    /// epochs, findings) where one allocation is noise.
    pub detail: Option<String>,
}

/// A per-worker span buffer: owned exclusively by one thread while it
/// records, so every operation is a plain push — no locks, no atomics.
#[derive(Debug)]
pub struct SpanSink {
    origin: Instant,
    track: u64,
    spans: Vec<SpanRecord>,
}

impl SpanSink {
    /// A sink recording onto `track`, timing against `origin` (the campaign
    /// start instant — every sink of a run must share it so the merged
    /// trace has one time base).
    pub fn new(origin: Instant, track: u64) -> SpanSink {
        SpanSink { origin, track, spans: Vec::new() }
    }

    /// Nanoseconds since the shared origin — the start-of-span timestamp.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Records a span that started at `start_ns` (from [`SpanSink::now_ns`])
    /// and ends now.
    pub fn record_since(&mut self, name: &'static str, start_ns: u64, detail: Option<String>) {
        let end = self.now_ns();
        self.spans.push(SpanRecord {
            name,
            track: self.track,
            start_ns,
            dur_ns: end.saturating_sub(start_ns),
            detail,
        });
    }

    /// Records a fully specified span (used when the duration was measured
    /// elsewhere, e.g. alongside an existing latency-histogram sample).
    pub fn record(&mut self, name: &'static str, start_ns: u64, dur_ns: u64, detail: Option<String>) {
        self.spans.push(SpanRecord { name, track: self.track, start_ns, dur_ns, detail });
    }

    /// Consumes the sink, yielding its buffer for the merge.
    pub fn into_spans(self) -> Vec<SpanRecord> {
        self.spans
    }

    /// Spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// The merged flight-recorder trace of one campaign run. Lives on
/// `CampaignRun`, outside report equality — wall-clock varies run to run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTrace {
    /// All spans, ordered by `(start_ns, track)`.
    pub spans: Vec<SpanRecord>,
}

impl SpanTrace {
    /// Merges per-worker buffers into one trace ordered by start time
    /// (ties broken by track so the merge is deterministic for a fixed set
    /// of spans).
    pub fn merge(buffers: Vec<Vec<SpanRecord>>) -> SpanTrace {
        let mut spans: Vec<SpanRecord> = buffers.into_iter().flatten().collect();
        spans.sort_by(|a, b| {
            (a.start_ns, a.track, a.name).cmp(&(b.start_ns, b.track, b.name))
        });
        SpanTrace { spans }
    }

    /// Number of spans in the trace.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the Chrome trace-event JSON array: thread-name metadata for
    /// every used track, then one `ph: "X"` complete event per span, with
    /// microsecond timestamps. The output loads in Perfetto and
    /// `chrome://tracing` as-is.
    pub fn to_chrome_json(&self, process_name: &str) -> String {
        let mut tracks: Vec<u64> = self.spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        let mut rows: Vec<String> = Vec::with_capacity(self.spans.len() + tracks.len() + 1);
        rows.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
             \"args\": {{\"name\": \"{}\"}}}}",
            crate::json::escape(process_name)
        ));
        for &t in &tracks {
            rows.push(format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {t}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                track_label(t)
            ));
        }
        for s in &self.spans {
            let mut row = format!(
                "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \
                 \"ts\": {}, \"dur\": {}",
                crate::json::escape(s.name),
                s.track,
                micros(s.start_ns),
                micros(s.dur_ns.max(1)),
            );
            if let Some(d) = &s.detail {
                let _ = write!(row, ", \"args\": {{\"detail\": \"{}\"}}", crate::json::escape(d));
            }
            row.push('}');
            rows.push(row);
        }
        format!("[\n{}\n]\n", rows.join(",\n"))
    }

    /// One-line per-stage summary (span count and total duration per name,
    /// alphabetical) for CLI output.
    pub fn render_summary(&self) -> String {
        let mut by_name: BTreeMap<&str, (usize, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = by_name.entry(s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        let parts: Vec<String> = by_name
            .iter()
            .map(|(name, (n, ns))| format!("{name} x{n} ({:.1}ms)", *ns as f64 / 1e6))
            .collect();
        format!("spans: {}", parts.join(", "))
    }
}

/// The display name of a track.
fn track_label(track: u64) -> String {
    if track == CAMPAIGN_TRACK {
        "campaign".to_string()
    } else {
        format!("shard {}", track - 1)
    }
}

/// Nanoseconds as a microsecond decimal (`12.345`), the trace-event unit.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Builds a *logical* trace from a parsed journal: one microsecond per
/// planned statement index, one span per statement on its shard's track
/// (named by generation pattern, `seed` for phase-1 replays), plus marker
/// spans on the campaign track for findings and epoch reallocations.
/// Journals carry no wall-clock, so this is the honest rendering: the
/// x-axis is statement order, not time.
pub fn journal_trace(trace: &TraceFile) -> SpanTrace {
    let mut spans: Vec<SpanRecord> = Vec::with_capacity(trace.journal.events.len() + 8);
    for e in &trace.journal.events {
        let name = e.pattern.map(|p| p.label()).unwrap_or("seed");
        let mut detail = String::from(e.outcome.label());
        if let Some(f) = &e.function {
            let _ = write!(detail, ", {f}");
        }
        if let Some(f) = &e.fault_id {
            let _ = write!(detail, ", {f}");
        }
        spans.push(SpanRecord {
            name,
            track: e.shard as u64 + 1,
            start_ns: e.index as u64 * 1000,
            dur_ns: 1000,
            detail: Some(detail),
        });
        if let Some(fault) = &e.fault_id {
            spans.push(SpanRecord {
                name: "finding",
                track: CAMPAIGN_TRACK,
                start_ns: e.index as u64 * 1000,
                dur_ns: 1000,
                detail: Some(fault.to_string()),
            });
        }
    }
    for ep in &trace.epochs {
        spans.push(SpanRecord {
            name: "epoch",
            track: CAMPAIGN_TRACK,
            start_ns: ep.start_statement as u64 * 1000,
            dur_ns: (ep.budget.max(1)) as u64 * 1000,
            detail: Some(format!("epoch {}: budget {}", ep.epoch, ep.budget)),
        });
    }
    SpanTrace::merge(vec![spans])
}

/// A std-only syntax validator for *nested* JSON (objects, arrays, strings,
/// numbers, literals) — the flat [`crate::json`] reader deliberately rejects
/// nesting, and the trace-event format needs it. Returns the number of
/// top-level array elements; errors carry a byte offset. This is a syntax
/// check only (no duplicate-key or schema validation): its job is "Perfetto
/// will not reject this file as malformed JSON".
pub fn validate_json(text: &str) -> Result<usize, String> {
    let mut p = Validator { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    if p.peek() != Some(b'[') {
        return Err(format!("byte {}: expected top-level array", p.pos));
    }
    p.pos += 1;
    let mut count = 0usize;
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            p.value()?;
            count += 1;
            p.skip_ws();
            match p.peek() {
                Some(b',') => {
                    p.pos += 1;
                    p.skip_ws();
                }
                Some(b']') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(format!("byte {}: expected ',' or ']'", p.pos)),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("byte {}: trailing content after array", p.pos));
    }
    Ok(count)
}

struct Validator<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Validator<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("byte {}: expected a JSON value", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.pos += 1; // '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(format!("byte {}: expected ':'", self.pos));
            }
            self.pos += 1;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("byte {}: expected ',' or '}}'", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.pos += 1; // '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("byte {}: expected ',' or ']'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        if self.peek() != Some(b'"') {
            return Err(format!("byte {}: expected a string", self.pos));
        }
        self.pos += 1;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len()
                                || !self.bytes[self.pos + 1..self.pos + 5]
                                    .iter()
                                    .all(u8::is_ascii_hexdigit)
                            {
                                return Err(format!("byte {}: bad \\u escape", self.pos));
                            }
                            self.pos += 5;
                        }
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1
                        }
                        _ => return Err(format!("byte {}: bad escape", self.pos)),
                    }
                }
                _ => self.pos += 1,
            }
        }
        Err(format!("byte {}: unterminated string", self.pos))
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("byte {}: expected `{word}`", self.pos))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("byte {start}: bad number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("byte {}: bad fraction", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("byte {}: bad exponent", self.pos));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn sink_records_on_its_track_with_a_shared_origin() {
        let origin = Instant::now();
        let mut sink = SpanSink::new(origin, 3);
        let start = sink.now_ns();
        std::thread::sleep(Duration::from_millis(2));
        sink.record_since("execute", start, None);
        sink.record("batch-group", 10, 20, Some("4 statements".into()));
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        let spans = sink.into_spans();
        assert_eq!(spans[0].name, "execute");
        assert_eq!(spans[0].track, 3);
        assert!(spans[0].dur_ns >= 1_000_000, "slept 2ms: {}", spans[0].dur_ns);
        assert_eq!(spans[1].detail.as_deref(), Some("4 statements"));
    }

    #[test]
    fn merge_orders_by_start_time_across_buffers() {
        let a = vec![SpanRecord { name: "shard", track: 2, start_ns: 50, dur_ns: 5, detail: None }];
        let b = vec![
            SpanRecord { name: "campaign", track: 0, start_ns: 0, dur_ns: 100, detail: None },
            SpanRecord { name: "shard", track: 1, start_ns: 70, dur_ns: 5, detail: None },
        ];
        let trace = SpanTrace::merge(vec![a, b]);
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["campaign", "shard", "shard"]);
        assert_eq!(trace.spans[1].track, 2);
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let trace = SpanTrace::merge(vec![vec![
            SpanRecord { name: "campaign", track: 0, start_ns: 0, dur_ns: 2_500, detail: None },
            SpanRecord {
                name: "execute",
                track: 1,
                start_ns: 1_234,
                dur_ns: 567,
                detail: Some("needs \"escaping\"\n".into()),
            },
        ]]);
        let json = trace.to_chrome_json("soft-repro campaign");
        // The export parses as nested JSON: metadata rows (process name +
        // two thread names) plus one event per span.
        let rows = validate_json(&json).expect("valid JSON");
        assert_eq!(rows, 3 + trace.len());
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"ph\": \"M\""), "{json}");
        assert!(json.contains("\"ts\": 1.234"), "{json}");
        assert!(json.contains("\"name\": \"shard 0\""), "{json}");
        assert!(json.contains("needs \\\"escaping\\\"\\n"), "{json}");
    }

    #[test]
    fn summary_aggregates_per_stage() {
        let trace = SpanTrace::merge(vec![vec![
            SpanRecord { name: "execute", track: 1, start_ns: 0, dur_ns: 1_000_000, detail: None },
            SpanRecord { name: "execute", track: 1, start_ns: 5, dur_ns: 1_000_000, detail: None },
            SpanRecord { name: "shard", track: 1, start_ns: 0, dur_ns: 3_000_000, detail: None },
        ]]);
        let s = trace.render_summary();
        assert!(s.contains("execute x2 (2.0ms)"), "{s}");
        assert!(s.contains("shard x1 (3.0ms)"), "{s}");
    }

    #[test]
    fn journal_trace_maps_statements_findings_and_epochs() {
        let jsonl = "\
{\"type\": \"campaign\", \"dialect\": \"MonetDB\", \"statements\": 3, \"events\": 3}\n\
{\"type\": \"stmt\", \"index\": 1, \"shard\": 0, \"seed\": 0, \"pattern\": null, \
\"function\": \"floor\", \"outcome\": \"ok\", \"fault\": null}\n\
{\"type\": \"stmt\", \"index\": 2, \"shard\": 0, \"seed\": 1, \"pattern\": \"P2.1\", \
\"function\": \"substr\", \"outcome\": \"crash\", \"fault\": \"demo-001\"}\n\
{\"type\": \"stmt\", \"index\": 3, \"shard\": 1, \"seed\": 2, \"pattern\": \"P1.1\", \
\"function\": null, \"outcome\": \"error\", \"fault\": null}\n\
{\"type\": \"epoch\", \"epoch\": 0, \"start\": 1, \"budget\": 3, \
\"pattern\": \"P1.1\", \"category\": \"string\", \"planned\": 3, \"executed\": 3, \
\"score_milli\": 0}\n";
        let parsed = TraceFile::parse(jsonl).expect("journal parses");
        let trace = journal_trace(&parsed);
        // 3 statements + 1 finding marker + 1 epoch span.
        assert_eq!(trace.len(), 5);
        let finding = trace.spans.iter().find(|s| s.name == "finding").expect("marker");
        assert_eq!(finding.track, CAMPAIGN_TRACK);
        assert_eq!(finding.start_ns, 2_000);
        assert_eq!(finding.detail.as_deref(), Some("demo-001"));
        let epoch = trace.spans.iter().find(|s| s.name == "epoch").expect("epoch span");
        assert_eq!(epoch.dur_ns, 3_000);
        let seed = trace.spans.iter().find(|s| s.name == "seed").expect("seed span");
        assert_eq!(seed.track, 1);
        // And the logical trace exports cleanly.
        validate_json(&trace.to_chrome_json("journal")).expect("valid chrome JSON");
    }

    #[test]
    fn validator_accepts_nested_and_rejects_malformed() {
        assert_eq!(validate_json("[]"), Ok(0));
        assert_eq!(validate_json("[{\"a\": [1, 2.5, -3e2]}, \"s\", true, null]"), Ok(4));
        assert_eq!(validate_json(" [ {\"k\": {\"n\": {}}} ] "), Ok(1));
        for bad in [
            "",
            "{}",
            "[",
            "[1,]",
            "[{\"a\" 1}]",
            "[\"unterminated]",
            "[1] trailing",
            "[01e]",
            "[{\"a\": }]",
            "[\"bad \\x escape\"]",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
