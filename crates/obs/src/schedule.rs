//! Epoch-reallocation telemetry for the feedback-driven scheduler.
//!
//! `soft_core::schedule` splits a campaign's statement budget into epochs
//! and reallocates each epoch's share across (pattern × seed-function
//! category) arms from the merged telemetry of the epochs before it. The
//! records here are the deterministic trace of those decisions: one
//! [`EpochRealloc`] per executed epoch, carrying every arm's planned quota,
//! the statements actually planned for it, and the bandit score the quota
//! was derived from.
//!
//! The records live *inside* [`crate::CampaignTelemetry`]'s equality
//! surface — scheduling is plan-then-execute, so two runs of the same
//! configuration must produce identical reallocations at any worker count,
//! and the determinism tests compare them field for field. Scores are
//! stored as scaled integers (`score_milli`, thousandths) so the records
//! stay `Eq` without putting floats inside report equality.
//!
//! In the JSONL journal each allocation is one flat `"epoch"` record:
//!
//! ```text
//! {"type": "epoch", "epoch": 1, "start": 501, "budget": 500,
//!  "pattern": "P1.1", "category": "String", "planned": 63,
//!  "executed": 63, "score_milli": 1840}
//! ```
//!
//! Pre-scheduler readers ignore unknown record types, so journals with
//! epoch records stay readable by older tooling and vice versa.

use crate::json::{self, JsonValue};
use soft_engine::PatternId;
use soft_types::category::FunctionCategory;
use std::collections::BTreeMap;

/// One arm's share of one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmAlloc {
    /// The arm's generation pattern.
    pub pattern: PatternId,
    /// The arm's seed-function category.
    pub category: FunctionCategory,
    /// Statements the scheduler allocated to the arm for this epoch.
    pub planned: usize,
    /// Statements actually planned from the arm's queue (less than
    /// `planned` when the queue ran dry, more when spill from dried arms
    /// was redistributed to it).
    pub executed: usize,
    /// The UCB score the allocation was derived from, in thousandths —
    /// integer so the record is `Eq` and byte-stable in the journal.
    pub score_milli: i64,
}

/// The scheduler's decision record for one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRealloc {
    /// Epoch number, starting at 0.
    pub epoch: usize,
    /// 1-based global index of the epoch's first statement.
    pub start_statement: usize,
    /// Statements the epoch actually planned (its slice of the budget,
    /// shrunk when every arm ran dry).
    pub budget: usize,
    /// Per-arm quotas, in stable arm order (pattern order, then category).
    pub allocations: Vec<ArmAlloc>,
}

impl EpochRealloc {
    /// Renders the epoch as JSONL lines (one per allocation, with trailing
    /// newlines).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for a in &self.allocations {
            out.push_str(&format!(
                "{{{}, {}, {}, {}, {}, {}, {}, {}, {}}}\n",
                json::str_field("type", "epoch"),
                json::num_field("epoch", self.epoch as i64),
                json::num_field("start", self.start_statement as i64),
                json::num_field("budget", self.budget as i64),
                json::str_field("pattern", a.pattern.label()),
                json::str_field("category", a.category.label()),
                json::num_field("planned", a.planned as i64),
                json::num_field("executed", a.executed as i64),
                json::num_field("score_milli", a.score_milli),
            ));
        }
        out
    }

    /// Parses one `"epoch"` journal record into its `(epoch header, arm
    /// allocation)` pair. The caller groups consecutive records by epoch
    /// number (see `TraceFile::parse`).
    pub fn parse_record(
        obj: &BTreeMap<String, JsonValue>,
        lineno: usize,
    ) -> Result<(EpochRealloc, ArmAlloc), String> {
        let num = |key: &str| -> Result<usize, String> {
            obj.get(key)
                .and_then(JsonValue::as_num)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| format!("line {lineno}: missing {key:?}"))
        };
        let header = EpochRealloc {
            epoch: num("epoch")?,
            start_statement: num("start")?,
            budget: num("budget")?,
            allocations: Vec::new(),
        };
        let alloc = ArmAlloc {
            pattern: obj
                .get("pattern")
                .and_then(JsonValue::as_str)
                .and_then(PatternId::from_label)
                .ok_or_else(|| format!("line {lineno}: bad pattern"))?,
            category: obj
                .get("category")
                .and_then(JsonValue::as_str)
                .and_then(FunctionCategory::from_label)
                .ok_or_else(|| format!("line {lineno}: bad category"))?,
            planned: num("planned")?,
            executed: num("executed")?,
            score_milli: obj
                .get("score_milli")
                .and_then(JsonValue::as_num)
                .ok_or_else(|| format!("line {lineno}: missing \"score_milli\""))?,
        };
        Ok((header, alloc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EpochRealloc {
        EpochRealloc {
            epoch: 2,
            start_statement: 1001,
            budget: 500,
            allocations: vec![
                ArmAlloc {
                    pattern: PatternId::P1_1,
                    category: FunctionCategory::String,
                    planned: 300,
                    executed: 298,
                    score_milli: 1840,
                },
                ArmAlloc {
                    pattern: PatternId::P2_1,
                    category: FunctionCategory::Math,
                    planned: 200,
                    executed: 202,
                    score_milli: -12,
                },
            ],
        }
    }

    #[test]
    fn jsonl_lines_round_trip() {
        let e = sample();
        let text = e.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let mut rebuilt: Option<EpochRealloc> = None;
        for (i, line) in text.lines().enumerate() {
            let obj = json::parse_object(line).expect("flat json");
            assert_eq!(obj["type"].as_str(), Some("epoch"));
            let (header, alloc) = EpochRealloc::parse_record(&obj, i + 1).expect("parses");
            let e = rebuilt.get_or_insert(header);
            e.allocations.push(alloc);
        }
        assert_eq!(rebuilt.expect("one epoch"), e);
    }

    #[test]
    fn negative_scores_survive() {
        let e = sample();
        let line = e.to_jsonl().lines().nth(1).expect("two lines").to_string();
        let obj = json::parse_object(&line).expect("parses");
        let (_, alloc) = EpochRealloc::parse_record(&obj, 2).expect("parses");
        assert_eq!(alloc.score_milli, -12);
    }

    #[test]
    fn malformed_records_name_the_line() {
        let obj = json::parse_object(r#"{"type": "epoch", "epoch": 0}"#).expect("parses");
        let err = EpochRealloc::parse_record(&obj, 7).expect_err("incomplete");
        assert!(err.contains("line 7"), "{err}");
    }
}
