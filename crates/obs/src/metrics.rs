//! Per-pattern and per-function-category yield metrics.
//!
//! Table 4 credits each bug to a pattern and a function category; these
//! counters generalize that to *every* executed statement, so a campaign can
//! answer "which pattern is earning its budget share" without re-running.
//! Everything here is a pure fold over the deterministic event journal, so
//! the metrics participate in the campaign report's equality.

use crate::event::{OutcomeClass, StatementEvent};
use soft_engine::PatternId;
use soft_types::category::FunctionCategory;
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;

/// Yield counters for one generation pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternYield {
    /// Cases the pattern generated before global dedup and budgeting.
    pub generated: usize,
    /// Statements of this pattern the campaign actually executed.
    pub executed: usize,
    /// Executed statements that crashed (including repeat faults).
    pub crashes: usize,
    /// Executed statements that raised ordinary SQL errors.
    pub errors: usize,
    /// Executed statements killed by resource limits (false positives).
    pub resource_limits: usize,
    /// Executed statements flagged wrong-result by a logic-bug oracle.
    pub logic_bugs: usize,
    /// Unique faults first triggered by this pattern (global dedup order),
    /// crash and logic-bug faults alike.
    pub unique_bugs: usize,
}

/// Yield counters for one function category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryYield {
    /// Statements targeting this category the campaign executed.
    pub executed: usize,
    /// Executed statements that crashed (including repeat faults).
    pub crashes: usize,
    /// Executed statements that raised ordinary SQL errors.
    pub errors: usize,
    /// Executed statements flagged wrong-result by a logic-bug oracle.
    pub logic_bugs: usize,
    /// Unique faults first triggered in this category (crash or logic-bug).
    pub unique_bugs: usize,
}

/// The full yield ledger: per-pattern and per-category counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct YieldMetrics {
    /// Counters per pattern (`None`-pattern seed replays are excluded).
    pub per_pattern: BTreeMap<PatternId, PatternYield>,
    /// Counters per function category, for events whose target function
    /// resolved to a known built-in.
    pub per_category: BTreeMap<FunctionCategory, CategoryYield>,
}

impl YieldMetrics {
    /// Folds a globally ordered event stream into yield counters.
    ///
    /// `generated` is the campaign's pre-dedup per-pattern generation count
    /// (`CampaignReport::generated_per_pattern`); `resolve` maps a function
    /// name to its category (usually `FunctionRegistry::resolve` composed
    /// with `|d| d.category`) and may return `None` for unknown names.
    pub fn from_events(
        events: &[StatementEvent],
        generated: &[(PatternId, usize)],
        resolve: impl Fn(&str) -> Option<FunctionCategory>,
    ) -> YieldMetrics {
        let mut out = YieldMetrics::default();
        for &(pattern, n) in generated {
            out.per_pattern.entry(pattern).or_default().generated = n;
        }
        let mut seen_faults: HashSet<&str> = HashSet::new();
        for e in events {
            let is_bug =
                matches!(e.outcome, OutcomeClass::Crash | OutcomeClass::LogicBug);
            let unique_bug = is_bug
                && e.fault_id.as_deref().is_some_and(|f| seen_faults.insert(f));
            if let Some(pattern) = e.pattern {
                let y = out.per_pattern.entry(pattern).or_default();
                y.executed += 1;
                match e.outcome {
                    OutcomeClass::Crash => y.crashes += 1,
                    OutcomeClass::Error => y.errors += 1,
                    OutcomeClass::ResourceLimit => y.resource_limits += 1,
                    OutcomeClass::LogicBug => y.logic_bugs += 1,
                    OutcomeClass::Ok => {}
                }
                if unique_bug {
                    y.unique_bugs += 1;
                }
            }
            if let Some(cat) = e.function.as_deref().and_then(&resolve) {
                let c = out.per_category.entry(cat).or_default();
                c.executed += 1;
                match e.outcome {
                    OutcomeClass::Crash => c.crashes += 1,
                    OutcomeClass::Error => c.errors += 1,
                    OutcomeClass::LogicBug => c.logic_bugs += 1,
                    _ => {}
                }
                if unique_bug {
                    c.unique_bugs += 1;
                }
            }
        }
        out
    }

    /// Renders the per-pattern table, highest-yield first (unique bugs,
    /// then crashes, then pattern order — a deterministic total order).
    pub fn render_pattern_table(&self) -> String {
        let mut rows: Vec<(&PatternId, &PatternYield)> = self.per_pattern.iter().collect();
        rows.sort_by(|(pa, a), (pb, b)| {
            (b.unique_bugs, b.crashes, *pa).cmp(&(a.unique_bugs, a.crashes, *pb))
        });
        let mut out = format!(
            "{:<8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>7} {:>7}\n",
            "pattern", "generated", "executed", "crashes", "errors", "rlimit", "logic", "bugs"
        );
        for (p, y) in rows {
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>7} {:>7}",
                p.label(),
                y.generated,
                y.executed,
                y.crashes,
                y.errors,
                y.resource_limits,
                y.logic_bugs,
                y.unique_bugs
            );
        }
        out
    }

    /// Renders the per-category table, highest-yield first.
    pub fn render_category_table(&self) -> String {
        let mut rows: Vec<(&FunctionCategory, &CategoryYield)> = self.per_category.iter().collect();
        rows.sort_by(|(ca, a), (cb, b)| {
            (b.unique_bugs, b.crashes, *ca).cmp(&(a.unique_bugs, a.crashes, *cb))
        });
        let mut out = format!(
            "{:<12} {:>10} {:>8} {:>8} {:>7} {:>7}\n",
            "category", "executed", "crashes", "errors", "logic", "bugs"
        );
        for (c, y) in rows {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>8} {:>8} {:>7} {:>7}",
                c.label(),
                y.executed,
                y.crashes,
                y.errors,
                y.logic_bugs,
                y.unique_bugs
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(
        index: usize,
        pattern: Option<PatternId>,
        function: &str,
        outcome: OutcomeClass,
        fault: Option<&str>,
    ) -> StatementEvent {
        StatementEvent {
            index,
            shard: 0,
            seed: Some(0),
            pattern,
            function: Some(function.into()),
            outcome,
            fault_id: fault.map(Into::into),
        }
    }

    fn resolve(name: &str) -> Option<FunctionCategory> {
        match name {
            "substr" => Some(FunctionCategory::String),
            "floor" => Some(FunctionCategory::Math),
            _ => None,
        }
    }

    #[test]
    fn folds_events_into_both_ledgers() {
        let events = vec![
            event(1, None, "substr", OutcomeClass::Ok, None),
            event(2, Some(PatternId::P1_2), "substr", OutcomeClass::Crash, Some("f-a")),
            event(3, Some(PatternId::P1_2), "substr", OutcomeClass::Crash, Some("f-a")),
            event(4, Some(PatternId::P3_3), "floor", OutcomeClass::Error, None),
            event(5, Some(PatternId::P3_3), "mystery", OutcomeClass::ResourceLimit, None),
        ];
        let m = YieldMetrics::from_events(&events, &[(PatternId::P1_2, 40)], resolve);

        let p12 = m.per_pattern[&PatternId::P1_2];
        assert_eq!(
            (p12.generated, p12.executed, p12.crashes, p12.unique_bugs),
            (40, 2, 2, 1)
        );
        let p33 = m.per_pattern[&PatternId::P3_3];
        assert_eq!((p33.executed, p33.errors, p33.resource_limits), (2, 1, 1));

        // Seed replays count toward categories but not patterns.
        let string = m.per_category[&FunctionCategory::String];
        assert_eq!((string.executed, string.crashes, string.unique_bugs), (3, 2, 1));
        let math = m.per_category[&FunctionCategory::Math];
        assert_eq!((math.executed, math.errors), (1, 1));
        // Unresolvable functions are skipped.
        assert_eq!(m.per_category.len(), 2);
    }

    #[test]
    fn logic_bug_events_count_toward_unique_bugs() {
        let events = vec![
            event(1, Some(PatternId::P1_2), "substr", OutcomeClass::LogicBug, Some("lg-1")),
            event(2, Some(PatternId::P1_2), "substr", OutcomeClass::LogicBug, Some("lg-1")),
            event(3, Some(PatternId::P1_2), "substr", OutcomeClass::Crash, Some("f-a")),
        ];
        let m = YieldMetrics::from_events(&events, &[], resolve);
        let p12 = m.per_pattern[&PatternId::P1_2];
        assert_eq!((p12.logic_bugs, p12.crashes, p12.unique_bugs), (2, 1, 2));
        let string = m.per_category[&FunctionCategory::String];
        assert_eq!((string.logic_bugs, string.unique_bugs), (2, 2));
        let table = m.render_pattern_table();
        assert!(table.contains("logic"), "{table}");
    }

    #[test]
    fn tables_rank_highest_yield_first() {
        let events = vec![
            event(1, Some(PatternId::P1_1), "floor", OutcomeClass::Ok, None),
            event(2, Some(PatternId::P3_3), "substr", OutcomeClass::Crash, Some("f-a")),
        ];
        let m = YieldMetrics::from_events(&events, &[], resolve);
        let table = m.render_pattern_table();
        let p33_pos = table.find("P3.3").expect("row present");
        let p11_pos = table.find("P1.1").expect("row present");
        assert!(p33_pos < p11_pos, "bug-yielding pattern should rank first:\n{table}");
        assert!(m.render_category_table().contains("string"));
    }
}
