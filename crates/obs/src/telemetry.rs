//! The campaign telemetry knob, the per-shard recorder's output, and the
//! deterministic shard merge.
//!
//! # Why the merged telemetry is deterministic
//!
//! Every event is stamped with its *planned* global statement index at
//! recording time — shards know their `start_offset` in the planned stream,
//! which depends only on the campaign configuration. The merge then sorts
//! by that index, unions coverage snapshots in shard order, and folds the
//! ordered event stream into yields and curves. No wall clock, worker id,
//! or completion order participates; wall-clock histograms come out on a
//! separate surface ([`StageLatency`]) that campaign reports never compare.

use crate::curve::{CoveragePoint, GrowthCurves};
use crate::event::StatementEvent;
use crate::journal::{Journal, TraceFile};
use crate::latency::StageLatency;
use crate::metrics::YieldMetrics;
use crate::schedule::EpochRealloc;
use soft_engine::{Coverage, PatternId};
use soft_types::category::FunctionCategory;
use std::path::PathBuf;

/// The campaign's telemetry knob.
///
/// `Off` is the default and costs one branch per executed statement — no
/// allocation, no clock reads, no buffers.
#[derive(Debug, Clone, Default)]
pub enum TelemetryConfig {
    /// No telemetry (the default).
    #[default]
    Off,
    /// Record the event journal, yields, curves, and stage latencies.
    On(TelemetryOptions),
}

impl TelemetryConfig {
    /// Telemetry on with default options.
    pub fn on() -> TelemetryConfig {
        TelemetryConfig::On(TelemetryOptions::default())
    }

    /// Telemetry on with a specific coverage-snapshot interval.
    pub fn with_interval(snapshot_interval: usize) -> TelemetryConfig {
        TelemetryConfig::On(TelemetryOptions { snapshot_interval, ..TelemetryOptions::default() })
    }

    /// The options, when telemetry is on.
    pub fn options(&self) -> Option<&TelemetryOptions> {
        match self {
            TelemetryConfig::Off => None,
            TelemetryConfig::On(opts) => Some(opts),
        }
    }

    /// True when telemetry is enabled.
    pub fn is_on(&self) -> bool {
        self.options().is_some()
    }
}

/// Options for a telemetry-on campaign.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// Take a coverage snapshot every this many statements (global index).
    /// The interval is part of the campaign semantics: two runs compare
    /// equal only under the same interval.
    pub snapshot_interval: usize,
    /// When set, the merged journal is written to this path as JSONL for
    /// `repro trace`.
    pub journal_path: Option<PathBuf>,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions { snapshot_interval: 1_000, journal_path: None }
    }
}

/// Everything one shard records; produced by the campaign runner's shard
/// loop and consumed by [`merge_shards`].
#[derive(Debug, Clone)]
pub struct ShardTelemetry {
    /// Shard index (global statement order).
    pub shard: usize,
    /// The shard's event buffer, in local execution order.
    pub events: Vec<StatementEvent>,
    /// Coverage snapshots as `(global statement count, coverage)` pairs.
    pub snapshots: Vec<(usize, Coverage)>,
    /// The shard engine's coverage after its last statement.
    pub final_coverage: Coverage,
    /// Wall-clock stage histograms recorded inside the shard.
    pub latency: StageLatency,
}

/// The deterministic telemetry of one campaign — part of the campaign
/// report's `PartialEq` surface, so the byte-identical-for-any-worker-count
/// guarantee extends to the journal, yields, and curves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignTelemetry {
    /// The globally ordered event journal.
    pub journal: Journal,
    /// Per-pattern and per-category yield counters.
    pub yields: YieldMetrics,
    /// Coverage-growth and unique-bug-growth series.
    pub curves: GrowthCurves,
    /// Pre-dedup per-pattern generation counts (duplicated from the report
    /// so a journal file is self-contained).
    pub generated: Vec<(PatternId, usize)>,
    /// The snapshot interval the curves were sampled at.
    pub snapshot_interval: usize,
    /// The feedback scheduler's epoch reallocations, in epoch order. Empty
    /// for statically scheduled campaigns. Inside the equality surface:
    /// scheduling decisions must be identical at any worker count.
    pub epochs: Vec<EpochRealloc>,
}

impl CampaignTelemetry {
    /// Packages the telemetry as a [`TraceFile`] for the JSONL sink.
    pub fn to_trace(&self, dialect: Option<&str>, statements: usize) -> TraceFile {
        TraceFile {
            dialect: dialect.map(str::to_string),
            statements: Some(statements),
            snapshot_interval: Some(self.snapshot_interval),
            generated: self.generated.clone(),
            journal: self.journal.clone(),
            coverage: self.curves.coverage.clone(),
            epochs: self.epochs.clone(),
        }
    }
}

/// Merges per-shard telemetry deterministically.
///
/// * events: concatenated and sorted by planned global index;
/// * coverage curve: shards walked in shard order, each snapshot unioned
///   with the running coverage of all *previous* shards — exactly the
///   coverage a serial run would have accumulated at that statement count;
/// * bug curve and yields: folds over the ordered journal;
/// * latencies: histogram sums (wall-clock, returned separately).
pub fn merge_shards(
    mut shards: Vec<ShardTelemetry>,
    generated: &[(PatternId, usize)],
    snapshot_interval: usize,
    resolve: impl Fn(&str) -> Option<FunctionCategory>,
) -> (CampaignTelemetry, StageLatency) {
    shards.sort_by_key(|s| s.shard);

    let mut latency = StageLatency::new();
    let mut coverage_curve: Vec<CoveragePoint> = Vec::new();
    let mut running = Coverage::new();
    let mut buffers: Vec<Vec<StatementEvent>> = Vec::with_capacity(shards.len());
    for shard in shards {
        for (statements, snap) in &shard.snapshots {
            let mut union = running.clone();
            union.merge(snap);
            coverage_curve.push(CoveragePoint {
                statements: *statements,
                functions: union.functions_triggered(),
                branches: union.branches_covered(),
            });
        }
        running.merge(&shard.final_coverage);
        latency.merge(&shard.latency);
        buffers.push(shard.events);
    }

    let journal = Journal::merge_shards(buffers);
    let yields = YieldMetrics::from_events(&journal.events, generated, resolve);
    let bugs = GrowthCurves::bugs_from_events(&journal.events);
    (
        CampaignTelemetry {
            journal,
            yields,
            curves: GrowthCurves { coverage: coverage_curve, bugs },
            generated: generated.to_vec(),
            snapshot_interval,
            // The runner stamps scheduler epochs after the merge; a shard
            // has no say in budget reallocation.
            epochs: Vec::new(),
        },
        latency,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OutcomeClass;

    fn shard(index: usize, start: usize, fns: &[&str]) -> ShardTelemetry {
        let mut cov = Coverage::new();
        let mut events = Vec::new();
        for (i, f) in fns.iter().enumerate() {
            cov.record_function(f);
            cov.record_branch(f, "site");
            events.push(StatementEvent::seed(start + i + 1, index, i, Some((*f).into())));
        }
        ShardTelemetry {
            shard: index,
            events,
            snapshots: vec![(start + fns.len(), cov.clone())],
            final_coverage: cov,
            latency: StageLatency::new(),
        }
    }

    #[test]
    fn merge_is_order_independent_and_unions_coverage() {
        let a = shard(0, 0, &["floor", "substr"]);
        let b = shard(1, 2, &["substr", "repeat"]);
        let (fwd, _) = merge_shards(vec![a.clone(), b.clone()], &[], 2, |_| None);
        let (rev, _) = merge_shards(vec![b, a], &[], 2, |_| None);
        assert_eq!(fwd, rev, "shard submission order leaked into telemetry");

        let indices: Vec<usize> = fwd.journal.events.iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![1, 2, 3, 4]);
        // Snapshot 1: {floor, substr}; snapshot 2 unions shard 0's final
        // coverage with shard 1's snapshot: {floor, substr, repeat}.
        assert_eq!(fwd.curves.coverage[0].functions, 2);
        assert_eq!(fwd.curves.coverage[1].functions, 3);
        assert!(fwd.curves.coverage[1].branches >= fwd.curves.coverage[0].branches);
    }

    #[test]
    fn crash_events_flow_into_curves_and_yields() {
        let mut s = shard(0, 0, &["substr"]);
        s.events[0].outcome = OutcomeClass::Crash;
        s.events[0].fault_id = Some("f-1".into());
        s.events[0].pattern = Some(PatternId::P1_2);
        let (t, _) = merge_shards(vec![s], &[(PatternId::P1_2, 5)], 100, |_| {
            Some(FunctionCategory::String)
        });
        assert_eq!(t.curves.bugs.len(), 1);
        assert_eq!(t.yields.per_pattern[&PatternId::P1_2].unique_bugs, 1);
        assert_eq!(t.yields.per_category[&FunctionCategory::String].crashes, 1);
        let trace = t.to_trace(Some("MonetDB"), 1);
        let parsed = TraceFile::parse(&trace.to_jsonl()).expect("round trip");
        assert_eq!(parsed.journal, t.journal);
    }

    #[test]
    fn config_knob_defaults_off() {
        assert!(!TelemetryConfig::default().is_on());
        assert!(TelemetryConfig::on().is_on());
        assert_eq!(
            TelemetryConfig::with_interval(50).options().expect("on").snapshot_interval,
            50
        );
    }
}
