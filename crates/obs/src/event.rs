//! The statement-level event record.

use soft_engine::{ExecOutcome, PatternId, SqlError};
use std::sync::Arc;

/// What executing one statement produced, collapsed to the five classes the
/// campaign distinguishes (result rows and non-query successes are both
/// "ok"; resource-limit kills are the paper's false-positive class and get
/// their own bucket so yield tables can report them; logic bugs are
/// wrong-result verdicts raised by the campaign's oracles, never by the
/// engine itself — [`OutcomeClass::of`] cannot produce them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OutcomeClass {
    /// The statement executed successfully (rows or an ok message).
    Ok,
    /// An ordinary SQL error.
    Error,
    /// A resource-limit kill (the false-positive class).
    ResourceLimit,
    /// A modelled memory-safety crash.
    Crash,
    /// A wrong-result verdict from a logic-bug oracle (the statement itself
    /// completed without crashing). Appended after `Crash` so the numeric
    /// discriminants of the original four classes stay stable — live
    /// counters index arrays by `as usize`.
    LogicBug,
}

impl OutcomeClass {
    /// Every class, in journal rendering order.
    pub const ALL: [OutcomeClass; 5] = [
        OutcomeClass::Ok,
        OutcomeClass::Error,
        OutcomeClass::ResourceLimit,
        OutcomeClass::Crash,
        OutcomeClass::LogicBug,
    ];

    /// Classifies an engine outcome.
    pub fn of(outcome: &ExecOutcome) -> OutcomeClass {
        match outcome {
            ExecOutcome::Rows(_) | ExecOutcome::Ok(_) => OutcomeClass::Ok,
            ExecOutcome::Error(SqlError::ResourceLimit(_)) => OutcomeClass::ResourceLimit,
            ExecOutcome::Error(_) => OutcomeClass::Error,
            ExecOutcome::Crash(_) => OutcomeClass::Crash,
        }
    }

    /// The journal label (`ok`, `error`, `resource-limit`, `crash`,
    /// `logic-bug`).
    pub fn label(&self) -> &'static str {
        match self {
            OutcomeClass::Ok => "ok",
            OutcomeClass::Error => "error",
            OutcomeClass::ResourceLimit => "resource-limit",
            OutcomeClass::Crash => "crash",
            OutcomeClass::LogicBug => "logic-bug",
        }
    }

    /// Parses a journal label back into a class.
    pub fn from_label(label: &str) -> Option<OutcomeClass> {
        OutcomeClass::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// One executed statement of the campaign stream.
///
/// Events are recorded per shard and merged into global statement order; the
/// `index` is the 1-based position in the *planned* stream (the same number
/// `BugFinding::statements_until_found` reports for findings), so the
/// journal from any worker count is identical event-for-event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementEvent {
    /// 1-based global statement index (monotonic across the whole campaign).
    pub index: usize,
    /// The shard that executed the statement.
    pub shard: usize,
    /// Index of the seed the statement derives from (`None` only for
    /// statements whose provenance is unknown, e.g. external generators).
    pub seed: Option<usize>,
    /// The pattern that generated the statement (`None` for phase-1 seed
    /// replays).
    pub pattern: Option<PatternId>,
    /// The statement's target function: the crash site when it crashed,
    /// otherwise the root function of the originating seed. Interned
    /// (`Arc<str>`) — the campaign records one event per statement, and the
    /// same seed function is shared across thousands of events.
    pub function: Option<Arc<str>>,
    /// Outcome class.
    pub outcome: OutcomeClass,
    /// The deduplication key of the crash, when `outcome` is
    /// [`OutcomeClass::Crash`]. Interned per campaign fault.
    pub fault_id: Option<Arc<str>>,
}

impl StatementEvent {
    /// Convenience constructor for a successful phase-1 seed replay.
    pub fn seed(index: usize, shard: usize, seed: usize, function: Option<Arc<str>>) -> Self {
        StatementEvent {
            index,
            shard,
            seed: Some(seed),
            pattern: None,
            function,
            outcome: OutcomeClass::Ok,
            fault_id: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for class in OutcomeClass::ALL {
            assert_eq!(OutcomeClass::from_label(class.label()), Some(class));
        }
        assert_eq!(OutcomeClass::from_label("segfault"), None);
    }

    #[test]
    fn classification_matches_outcomes() {
        assert_eq!(
            OutcomeClass::of(&ExecOutcome::Ok("done".into())),
            OutcomeClass::Ok
        );
        assert_eq!(
            OutcomeClass::of(&ExecOutcome::Error(SqlError::ResourceLimit("oom".into()))),
            OutcomeClass::ResourceLimit
        );
        assert_eq!(
            OutcomeClass::of(&ExecOutcome::Error(SqlError::Parse("bad".into()))),
            OutcomeClass::Error
        );
    }
}
