//! Campaign observability (`soft-obs`).
//!
//! The paper's evaluation needs *visibility into the campaign*: Table 4's
//! per-category yields, Table 6's coverage comparison, and the §7.5
//! unique-bugs-over-time curves all presuppose knowing, per statement, which
//! pattern fired, what the outcome was, and how coverage grew. This crate is
//! that layer for the reproduction's campaign runner:
//!
//! * [`event`] — the statement-level [`StatementEvent`]: seed id, pattern
//!   id, target function, outcome class, fault id, and a monotonic global
//!   statement index;
//! * [`journal`] — per-shard event buffers merged deterministically into
//!   global statement order, plus the JSONL sink and its reader;
//! * [`metrics`] — per-pattern and per-function-category
//!   generated/executed/crashing yield counters;
//! * [`latency`] — fixed-bucket wall-clock histograms per pipeline stage
//!   (generate, parse, execute, minimize);
//! * [`curve`] — coverage-vs-statements and unique-bugs-vs-statements
//!   growth series (the §7.5 analogue);
//! * [`telemetry`] — the [`TelemetryConfig`] campaign knob, the per-shard
//!   recorder, and the deterministic shard merge;
//! * [`schedule`] — the feedback scheduler's deterministic epoch
//!   reallocation records ([`EpochRealloc`]), journaled beside the events;
//! * [`json`] — the hand-rolled std-only JSON helpers behind the JSONL
//!   sink (the same idiom as `soft-bench`'s `BENCH_*.json` writer).
//!
//! On top of the deterministic plane sits the **live plane** — wall-clock
//! observability that workers feed wait-free while the campaign runs and
//! that never participates in report equality:
//!
//! * [`live`] — the lock-free [`LiveMetrics`] registry (atomic counters per
//!   pattern / outcome class / shard) and its snapshot renderers
//!   (Prometheus text, flat JSON status, JSONL curves, TTY progress line);
//! * [`http`] — a std-only HTTP/1.1 exposition server ([`MetricsServer`])
//!   serving `/metrics`, `/status`, and `/curve` from the registry;
//! * [`watchdog`] — a polling observer over the registry's per-shard
//!   heartbeats that reports stalled and slow shards ([`WatchdogReport`]);
//! * [`forensics`] — per-unique-fault triage [`Bundle`]s
//!   (`findings/<fault-id>/` with PoC, provenance, and replay command);
//! * [`span`] — the flight recorder: hierarchical wall-clock spans
//!   (campaign → epoch → shard → batch-group → statement stage) recorded
//!   into per-worker buffers, merged into a [`SpanTrace`] on `CampaignRun`,
//!   and exported as Chrome trace-event JSON for Perfetto.
//!
//! # Determinism
//!
//! Everything except the latency histograms is a pure function of the
//! campaign configuration: events are recorded against the *planned*
//! statement stream (whose shard decomposition never depends on the worker
//! count) and merged by global statement index, so a telemetry-on parallel
//! run produces the same journal, yields, and curves event-for-event as the
//! serial reference. Wall-clock histograms are kept on a separate surface
//! ([`StageLatency`]) precisely so reports can stay byte-comparable.
//!
//! # Examples
//!
//! ```
//! use soft_obs::{Journal, OutcomeClass, StatementEvent};
//!
//! let shard0 = vec![StatementEvent::seed(1, 0, 0, Some("floor".into()))];
//! let mut crash = StatementEvent::seed(2, 0, 1, Some("substr".into()));
//! crash.outcome = OutcomeClass::Crash;
//! crash.fault_id = Some("demo-001".into());
//! let journal = Journal::merge_shards(vec![vec![crash], shard0]);
//! assert_eq!(journal.events[0].index, 1);
//! assert_eq!(journal.unique_faults(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod curve;
pub mod event;
pub mod forensics;
pub mod http;
pub mod journal;
pub mod json;
pub mod latency;
pub mod live;
pub mod metrics;
pub mod schedule;
pub mod span;
pub mod telemetry;
pub mod watchdog;

pub use curve::{BugPoint, CoveragePoint, GrowthCurves};
pub use event::{OutcomeClass, StatementEvent};
pub use forensics::Bundle;
pub use http::MetricsServer;
pub use journal::{Journal, TraceFile};
pub use latency::{LatencyHistogram, StageLatency};
pub use live::{LiveMetrics, LiveSnapshot};
pub use metrics::{CategoryYield, PatternYield, YieldMetrics};
pub use schedule::{ArmAlloc, EpochRealloc};
pub use span::{SpanRecord, SpanSink, SpanTrace};
pub use telemetry::{
    CampaignTelemetry, ShardTelemetry, TelemetryConfig, TelemetryOptions,
};
pub use watchdog::{WatchdogConfig, WatchdogReport};
