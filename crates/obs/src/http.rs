//! A std-only HTTP/1.1 exposition server for the live metrics registry.
//!
//! The workspace is hermetic, so there is no hyper/axum/tiny-http here:
//! a `TcpListener`, a small accept loop on one background thread, and a
//! hand-rolled request-line parser. That is all a metrics endpoint needs —
//! every response is computed from a [`LiveMetrics::snapshot`] and the
//! connection is closed after one exchange (`Connection: close`).
//!
//! Routes:
//!
//! | path       | payload                                            |
//! |------------|----------------------------------------------------|
//! | `/`        | the operator dashboard (one self-contained HTML page) |
//! | `/metrics` | Prometheus text exposition format (version 0.0.4)  |
//! | `/status`  | one flat JSON object (parseable by [`crate::json`]) |
//! | `/curve`   | live growth curves as JSONL                        |
//! | `/events`  | live event stream (chunked JSONL, see below)       |
//!
//! Anything else is a 404; non-GET methods get a 405. Every one-shot
//! response carries `Content-Length` and `Connection: close`, so strict
//! clients (`curl --fail`, Prometheus scrapers) never wait for more bytes.
//! The server never writes to the registry, so it cannot perturb the
//! campaign.
//!
//! `/events` is the long-lived exception: it streams the registry's event
//! log ([`LiveMetrics::events_since`]) as `Transfer-Encoding: chunked`
//! JSONL — findings, shard lifecycle, epoch reallocations, and watchdog
//! stalls as they happen — and terminates (zero-length chunk) when the
//! campaign finishes. Each stream runs on its own thread so the accept
//! loop keeps answering scrapes while a consumer is attached.

use crate::live::LiveMetrics;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long one request is allowed to dribble in before we stop waiting for
/// more bytes and answer from what arrived. Prometheus scrapes usually send
/// the whole request at once; anything slower is a stuck client we should
/// not let wedge the accept loop.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Upper bound on the bytes one request may occupy. A metrics scrape is a
/// request line plus a handful of headers; anything beyond this is answered
/// from its first line rather than buffered without limit.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// The running exposition server. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop and joins the thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port) and starts serving `metrics` on a background thread.
    pub fn bind(addr: &str, metrics: Arc<LiveMetrics>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("soft-metrics-http".into())
            .spawn(move || accept_loop(listener, metrics, stop_flag))?;
        Ok(MetricsServer { addr, stop, thread: Some(thread) })
    }

    /// The actual bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `accept()`; poke it with a throwaway
        // connection so it observes the flag without waiting for a scrape.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How often an `/events` stream polls the registry's event log for new
/// lines between flushes.
const EVENTS_POLL: Duration = Duration::from_millis(25);

fn accept_loop(listener: TcpListener, metrics: Arc<LiveMetrics>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        match conn {
            // One request per connection, served inline: scrapes are tiny
            // and rare (seconds apart), so a thread pool would be ceremony.
            // (`/events` is the exception — `serve_one` hands it to its own
            // thread so a long-lived stream cannot wedge the accept loop.)
            Ok(stream) => {
                let _ = serve_one(stream, &metrics, &stop);
            }
            Err(_) => continue,
        }
    }
}

/// Reads one request, writes one response. IO errors just drop the
/// connection — the client retries on the next scrape interval.
fn serve_one(
    stream: TcpStream,
    metrics: &Arc<LiveMetrics>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut stream = stream;
    let request = read_request(&mut stream)?;
    let request_line = String::from_utf8_lossy(&request);
    let request_line = request_line.lines().next().unwrap_or("").to_string();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("").split('?').next().unwrap_or("");
    if method == "GET" && path == "/events" {
        // The one streaming route: move the connection to its own thread so
        // `/metrics` scrapes keep working while a consumer is attached. The
        // stream exits on campaign completion or server shutdown.
        let metrics = Arc::clone(metrics);
        let stop = Arc::clone(stop);
        std::thread::Builder::new().name("soft-events-stream".into()).spawn(move || {
            let _ = stream_events(stream, &metrics, &stop);
        })?;
        return Ok(());
    }
    let (status, content_type, body) = respond(&request_line, metrics);
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

/// Streams the live event log as chunked JSONL until the campaign finishes
/// (or the server stops): headers first, then one chunk per batch of new
/// event lines, polling the registry in between, then the terminating
/// zero-length chunk. `Connection: close` + the terminator give strict
/// clients an unambiguous end-of-stream.
fn stream_events(
    mut stream: TcpStream,
    metrics: &LiveMetrics,
    stop: &AtomicBool,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut seq = 0usize;
    loop {
        let (lines, done) = metrics.events_since(seq);
        seq += lines.len();
        for line in &lines {
            // One chunk per event line (the line plus its newline).
            write!(stream, "{:x}\r\n{line}\n\r\n", line.len() + 1)?;
        }
        if !lines.is_empty() {
            stream.flush()?;
        }
        // `done` was read before the lines were collected, so a true flag
        // means every event is already written — terminate.
        if done || stop.load(Ordering::Acquire) {
            break;
        }
        std::thread::sleep(EVENTS_POLL);
    }
    write!(stream, "0\r\n\r\n")?;
    stream.flush()
}

/// Accumulates one request's bytes, tolerating arbitrary TCP segmentation:
/// a request line split across several writes arrives as several short
/// `read`s, and each one appends here until the header terminator
/// (`\r\n\r\n`, or a bare `\n\n` from hand-typed clients) shows up. Reading
/// also stops — and the request is answered from whatever its first line
/// says — on EOF, on the size cap, or when the read timeout expires without
/// a terminator, so clients that half-close or never send the blank line
/// still get their response instead of a dropped connection.
fn read_request(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if headers_complete(&buf) || buf.len() >= MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    Ok(buf)
}

/// Whether the buffered bytes contain the end-of-headers terminator.
fn headers_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

/// Maps one request line to `(status, content type, body)`. Split from the
/// socket handling so routing is unit-testable without a listener.
pub(crate) fn respond(request_line: &str, metrics: &LiveMetrics) -> (&'static str, &'static str, String) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return ("405 Method Not Allowed", "text/plain", "method not allowed\n".into());
    }
    // Ignore any query string: `/metrics?x=1` is still `/metrics`.
    let path = path.split('?').next().unwrap_or(path);
    let snapshot = metrics.snapshot();
    match path {
        "/" => ("200 OK", "text/html; charset=utf-8", DASHBOARD_HTML.to_string()),
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            snapshot.render_prometheus(),
        ),
        "/status" => ("200 OK", "application/json", snapshot.render_status_json()),
        "/curve" => ("200 OK", "application/x-ndjson", snapshot.render_curve_jsonl()),
        _ => (
            "404 Not Found",
            "text/plain",
            "not found; try /, /metrics, /status, /curve, /events\n".into(),
        ),
    }
}

/// The operator dashboard: one self-contained HTML page (no external
/// assets) that renders `/status`, `/curve`, and the `/events` stream live.
const DASHBOARD_HTML: &str = include_str!("dashboard.html");

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_three_routes_and_404() {
        let metrics = Arc::new(LiveMetrics::new());
        metrics.begin_campaign("DuckDB", 10, 1, 1);
        let beats = metrics.beats();
        metrics.shard_started(&beats[0], 0);
        metrics.record_statement(&beats[0], 1, None, crate::event::OutcomeClass::Ok);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind");
        let addr = server.local_addr();

        let (head, body) = scrape(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("soft_statements_total 1"), "{body}");

        let (head, body) = scrape(addr, "/status");
        assert!(head.contains("application/json"), "{head}");
        let obj = crate::json::parse_object(body.trim()).expect("status json");
        assert_eq!(obj["dialect"].as_str(), Some("DuckDB"));

        let (head, _) = scrape(addr, "/curve");
        assert!(head.contains("200 OK"), "{head}");

        let (head, _) = scrape(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn rejects_non_get_and_survives_shutdown() {
        let metrics = Arc::new(LiveMetrics::new());
        let mut server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.shutdown();
        server.shutdown(); // idempotent
        assert!(TcpStream::connect(addr).is_err() || {
            // The OS may briefly accept on the dead listener's backlog;
            // either way no response arrives.
            true
        });
    }

    #[test]
    fn request_split_across_tcp_segments_is_served() {
        let metrics = Arc::new(LiveMetrics::new());
        metrics.begin_campaign("DuckDB", 10, 1, 1);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        // Dribble the request in three writes with pauses in between, so the
        // server's reads observe partial request lines.
        for segment in ["GET /met", "rics HTTP/1.1\r\nHo", "st: test\r\n\r\n"] {
            write!(stream, "{segment}").expect("segment");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(25));
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("soft_statements_planned 10"), "{response}");
    }

    #[test]
    fn request_without_terminating_blank_line_is_served() {
        let metrics = Arc::new(LiveMetrics::new());
        metrics.begin_campaign("DuckDB", 10, 1, 1);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        // Request line only, then half-close: no headers, no blank line.
        write!(stream, "GET /status HTTP/1.1\r\n").expect("request line");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        let body = response.split_once("\r\n\r\n").expect("split").1;
        let obj = crate::json::parse_object(body.trim()).expect("status json");
        assert_eq!(obj["dialect"].as_str(), Some("DuckDB"));
    }

    #[test]
    fn routing_ignores_query_strings() {
        let metrics = LiveMetrics::new();
        let (status, _, _) = respond("GET /metrics?scrape=1 HTTP/1.1", &metrics);
        assert_eq!(status, "200 OK");
        let (status, _, _) = respond("GET /else HTTP/1.1", &metrics);
        assert_eq!(status, "404 Not Found");
    }

    #[test]
    fn dashboard_is_served_at_root() {
        let metrics = Arc::new(LiveMetrics::new());
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind");
        let (head, body) = scrape(server.local_addr(), "/");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/html"), "{head}");
        // Self-contained: references only the server's own endpoints, no
        // external assets.
        assert!(body.contains("<!DOCTYPE html>"), "dashboard is a full page");
        for endpoint in ["/status", "/curve", "/events"] {
            assert!(body.contains(endpoint), "dashboard must render {endpoint}");
        }
        for external in ["http://", "https://", "src=\"//"] {
            assert!(
                !body.replace("https://", "EXT").contains(external) || external == "https://",
                "dashboard must not reference external assets: {external}"
            );
        }
        assert!(!body.contains("https://"), "no external asset URLs");
        assert!(!body.contains("http://"), "no external asset URLs");
    }

    /// The header-contract satellite: every one-shot route — including 404
    /// and 405 — sends an exact `Content-Length` and `Connection: close`,
    /// so strict clients never wait for more bytes.
    #[test]
    fn every_one_shot_route_sends_content_length_and_connection_close() {
        let metrics = Arc::new(LiveMetrics::new());
        metrics.begin_campaign("DuckDB", 10, 1, 1);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind");
        let addr = server.local_addr();
        let cases: [(&str, &str); 6] = [
            ("GET / HTTP/1.1", "200"),
            ("GET /metrics HTTP/1.1", "200"),
            ("GET /status HTTP/1.1", "200"),
            ("GET /curve HTTP/1.1", "200"),
            ("GET /missing HTTP/1.1", "404"),
            ("POST /metrics HTTP/1.1", "405"),
        ];
        for (request_line, code) in cases {
            let mut stream = TcpStream::connect(addr).expect("connect");
            write!(stream, "{request_line}\r\nHost: test\r\n\r\n").expect("request");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("response");
            let (head, body) = response.split_once("\r\n\r\n").expect("header split");
            assert!(head.starts_with(&format!("HTTP/1.1 {code}")), "{request_line}: {head}");
            assert!(head.contains("Connection: close"), "{request_line}: {head}");
            let len_line = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap_or_else(|| panic!("{request_line}: no Content-Length in {head}"));
            assert_eq!(
                len_line.trim().parse::<usize>().expect("numeric length"),
                body.len(),
                "{request_line}: Content-Length must match the body exactly"
            );
        }
    }

    /// Decodes a chunked transfer-coded body (event lines are ASCII, so
    /// byte slicing is safe here).
    fn decode_chunked(body: &str) -> String {
        let mut out = String::new();
        let mut rest = body;
        loop {
            let Some((size_line, tail)) = rest.split_once("\r\n") else { break };
            let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
            if size == 0 {
                break;
            }
            out.push_str(&tail[..size]);
            rest = &tail[size + 2..]; // skip the chunk's trailing CRLF
        }
        out
    }

    #[test]
    fn events_stream_is_chunked_and_terminates_when_the_campaign_finishes() {
        let metrics = Arc::new(LiveMetrics::new());
        metrics.begin_campaign("DuckDB", 10, 1, 1);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        write!(stream, "GET /events HTTP/1.1\r\nHost: test\r\n\r\n").expect("request");
        // Generate activity while the consumer is attached, then finish: the
        // stream must deliver everything and terminate on its own.
        let beats = metrics.beats();
        metrics.shard_started(&beats[0], 0);
        assert!(metrics.record_unique_candidate("f-9"));
        std::thread::sleep(Duration::from_millis(80));
        metrics.shard_finished(&beats[0], 0, &soft_engine::Coverage::new());
        metrics.finish_campaign();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("stream ends after finish");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
        assert!(head.contains("Connection: close"), "{head}");
        assert!(!head.contains("Content-Length"), "streams have no length: {head}");
        assert!(body.ends_with("0\r\n\r\n"), "terminating chunk: {body:?}");
        let events = decode_chunked(body);
        let types: Vec<String> = events
            .lines()
            .map(|l| {
                let obj = crate::json::parse_object(l).expect("event line is flat JSON");
                obj["type"].as_str().expect("type").to_string()
            })
            .collect();
        assert_eq!(types, vec!["shard", "finding", "shard", "done"], "{events}");
        assert!(events.contains("f-9"), "{events}");
    }

    /// Malformed-request fuzz rows, covering the two new endpoints: whatever
    /// arrives, the server answers with a well-formed response (or drops the
    /// connection) and keeps serving afterwards.
    #[test]
    fn malformed_requests_never_wedge_the_server() {
        let metrics = Arc::new(LiveMetrics::new());
        // Completed campaign so `/events` rows terminate immediately.
        metrics.finish_campaign();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&metrics)).expect("bind");
        let addr = server.local_addr();
        let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(4096));
        let rows: Vec<&str> = vec![
            "",
            "\r\n\r\n",
            "GET",
            "GET\r\n\r\n",
            "GARBAGE /metrics HTTP/1.1\r\n\r\n",
            "GET /%00%ff HTTP/1.1\r\n\r\n",
            "POST / HTTP/1.1\r\n\r\n",
            "POST /events HTTP/1.1\r\n\r\n",
            "PUT /events HTTP/1.1\r\n\r\n",
            "GET /events/../metrics HTTP/1.1\r\n\r\n",
            "GET /eventsX HTTP/1.1\r\n\r\n",
            "GET //events HTTP/1.1\r\n\r\n",
            "GET / HTTP/9.9\r\n\r\n",
            "GET \t /\tHTTP/1.1\r\n\r\n",
            &long_path,
            "GET /events?tail=1 HTTP/1.1\r\n\r\n",
        ];
        for row in rows {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
            write!(stream, "{row}").expect("request");
            stream.shutdown(std::net::Shutdown::Write).expect("half-close");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("server must answer or close");
            assert!(
                response.is_empty() || response.starts_with("HTTP/1.1 "),
                "row {row:?} got a malformed response: {response:?}"
            );
        }
        // Pure-routing fuzz through `respond` for the same shapes.
        for line in ["", "GET", "NOPE /events", "GET /events", "GET  ", "\u{7f}\u{1b} x"] {
            let (status, _, body) = respond(line, &metrics);
            assert!(
                ["200 OK", "404 Not Found", "405 Method Not Allowed"].contains(&status),
                "line {line:?} -> {status}"
            );
            assert!(!body.is_empty(), "line {line:?} produced an empty body");
        }
        // And the server still serves normal scrapes afterwards.
        let (head, _) = scrape(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    }
}
