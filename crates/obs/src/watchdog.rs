//! The shard watchdog: a background observer that polls the live heartbeat
//! table and flags shards that have stopped making progress.
//!
//! This is the first robustness hook toward timeout/degradation handling
//! (ROADMAP): today's engines are in-process and deterministic, so a stall
//! can only come from scheduling starvation, but the campaign loop for a
//! real DBMS target will inherit this exact surface — a worker stuck on a
//! hung statement shows up as a heartbeat that stops advancing.
//!
//! The watchdog is strictly read-only over [`LiveMetrics`]: it never
//! influences shard execution or the merged report, so the
//! byte-identical-for-any-worker-count invariant is untouched. Its findings
//! land in a [`WatchdogReport`] carried on `CampaignRun` *next to* (not
//! inside) `CampaignReport` equality, alongside the wall-clock shard
//! timings.

use crate::live::{LiveMetrics, ShardState};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Watchdog tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How often the heartbeat table is polled.
    pub poll_interval: Duration,
    /// A running shard whose heartbeat has not advanced for this long is
    /// reported as stalled.
    pub stall_after: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            poll_interval: Duration::from_millis(250),
            stall_after: Duration::from_secs(5),
        }
    }
}

/// One stalled-shard observation (the worst one per shard is kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallEvent {
    /// The stalled shard.
    pub shard: usize,
    /// Last global statement index the shard had reported.
    pub last_index: u64,
    /// How long the heartbeat had been silent when observed, in ms.
    pub stalled_ms: u64,
}

/// What the watchdog saw over the campaign, reported into `CampaignRun`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Heartbeat polls performed.
    pub polls: u64,
    /// Shards observed stalled (worst observation per shard, shard order).
    pub stalls: Vec<StallEvent>,
    /// Shards whose wall-clock runtime exceeded twice the median shard
    /// runtime — the "slow shard" skew signal. Filled in at the join from
    /// the deterministic shard timings, not from heartbeats.
    pub slow_shards: Vec<SlowShard>,
}

/// A shard that took disproportionately long relative to its siblings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowShard {
    /// The shard.
    pub shard: usize,
    /// Its wall-clock runtime in nanoseconds.
    pub nanos: u128,
    /// The median shard runtime it is compared against.
    pub median_nanos: u128,
}

impl WatchdogReport {
    /// True when the watchdog saw neither stalls nor slow shards.
    pub fn all_clear(&self) -> bool {
        self.stalls.is_empty() && self.slow_shards.is_empty()
    }

    /// One-line summary for CLI output.
    pub fn render_summary(&self) -> String {
        if self.all_clear() {
            format!("watchdog: all clear ({} polls)", self.polls)
        } else {
            format!(
                "watchdog: {} stalled shard(s), {} slow shard(s) over {} polls",
                self.stalls.len(),
                self.slow_shards.len(),
                self.polls
            )
        }
    }
}

/// Classifies slow shards from `(shard, statements, nanos)` timing rows: a
/// shard is slow when it ran more than twice the median shard runtime.
/// Plain tuples keep `soft-obs` independent of `soft-core`'s types.
pub fn classify_slow_shards(timings: &[(usize, usize, u128)]) -> Vec<SlowShard> {
    if timings.len() < 2 {
        return Vec::new();
    }
    let mut runtimes: Vec<u128> = timings.iter().map(|&(_, _, nanos)| nanos).collect();
    runtimes.sort_unstable();
    let median_nanos = runtimes[runtimes.len() / 2];
    if median_nanos == 0 {
        return Vec::new();
    }
    timings
        .iter()
        .filter(|&&(_, _, nanos)| nanos > median_nanos.saturating_mul(2))
        .map(|&(shard, _, nanos)| SlowShard { shard, nanos, median_nanos })
        .collect()
}

/// Runs the watchdog loop until `stop` is raised: polls the heartbeat table
/// every `cfg.poll_interval`, recording the worst stall observed per shard.
/// Designed to run on its own thread inside the campaign's scope; returns
/// the report for the runner to attach to `CampaignRun`.
pub fn run(metrics: &LiveMetrics, stop: &AtomicBool, cfg: WatchdogConfig) -> WatchdogReport {
    let mut worst: BTreeMap<usize, StallEvent> = BTreeMap::new();
    let mut polls = 0u64;
    let stall_ms = cfg.stall_after.as_millis() as u64;
    while !stop.load(Ordering::Acquire) {
        // Sleep in small slices so shutdown stays responsive even with a
        // long poll interval.
        let mut slept = Duration::ZERO;
        while slept < cfg.poll_interval && !stop.load(Ordering::Acquire) {
            let slice = Duration::from_millis(25).min(cfg.poll_interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
        if stop.load(Ordering::Acquire) {
            break;
        }
        polls += 1;
        let now_ms = metrics.elapsed_ms();
        for (shard, beat) in metrics.beats().iter().enumerate() {
            if beat.state() != ShardState::Running {
                continue;
            }
            let silent_ms = now_ms.saturating_sub(beat.last_beat_ms());
            if silent_ms < stall_ms {
                continue;
            }
            let event = StallEvent { shard, last_index: beat.last_index(), stalled_ms: silent_ms };
            match worst.entry(shard) {
                std::collections::btree_map::Entry::Occupied(mut worst) => {
                    if event.stalled_ms > worst.get().stalled_ms {
                        *worst.get_mut() = event;
                    }
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    // First stall observation for this shard: mirror it into
                    // the live event log so `/events` consumers see it as it
                    // happens (the report keeps the worst observation).
                    metrics.record_stall(shard, event.last_index, event.stalled_ms);
                    slot.insert(event);
                }
            }
        }
    }
    WatchdogReport { polls, stalls: worst.into_values().collect(), slow_shards: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn classifies_slow_shards_against_the_median() {
        // Median of [10, 10, 10, 50] (sorted, index 2) is 10; only the
        // 50ns shard exceeds 2x.
        let slow = classify_slow_shards(&[(0, 5, 10), (1, 5, 10), (2, 5, 10), (3, 5, 50)]);
        assert_eq!(slow, vec![SlowShard { shard: 3, nanos: 50, median_nanos: 10 }]);
        // Uniform timings: nothing is slow.
        assert!(classify_slow_shards(&[(0, 5, 10), (1, 5, 11)]).is_empty());
        // Single shard: no siblings to compare against.
        assert!(classify_slow_shards(&[(0, 5, 999)]).is_empty());
        // Zero-duration medians (coarse clocks) must not divide into chaos.
        assert!(classify_slow_shards(&[(0, 5, 0), (1, 5, 0), (2, 5, 7)]).is_empty());
    }

    #[test]
    fn detects_a_silent_running_shard() {
        let metrics = Arc::new(LiveMetrics::new());
        metrics.begin_campaign("DuckDB", 100, 2, 2);
        let beats = metrics.beats();
        // Shard 0 starts and heartbeats once, then goes silent; shard 1
        // never starts (pending shards are not stalls).
        metrics.shard_started(&beats[0], 0);
        metrics.record_statement(
            &beats[0],
            7,
            None,
            crate::event::OutcomeClass::Ok,
        );
        let stop = Arc::new(AtomicBool::new(false));
        let cfg = WatchdogConfig {
            poll_interval: Duration::from_millis(10),
            stall_after: Duration::from_millis(30),
        };
        let report = std::thread::scope(|scope| {
            let handle = {
                let metrics = Arc::clone(&metrics);
                let stop = Arc::clone(&stop);
                scope.spawn(move || run(&metrics, &stop, cfg))
            };
            std::thread::sleep(Duration::from_millis(120));
            stop.store(true, Ordering::Release);
            handle.join().expect("watchdog thread")
        });
        assert!(report.polls > 0);
        assert_eq!(report.stalls.len(), 1, "stalls: {:?}", report.stalls);
        assert_eq!(report.stalls[0].shard, 0);
        assert_eq!(report.stalls[0].last_index, 7);
        assert!(report.stalls[0].stalled_ms >= 30);
        assert!(!report.all_clear());
        // The first stall observation is mirrored into the live event log.
        let (events, _) = metrics.events_since(0);
        assert!(
            events.iter().any(|l| l.contains("\"type\": \"stall\"")),
            "stall event missing from live log: {events:?}"
        );
    }

    #[test]
    fn a_live_shard_is_not_a_stall() {
        let metrics = Arc::new(LiveMetrics::new());
        metrics.begin_campaign("DuckDB", 100, 1, 1);
        let stop = Arc::new(AtomicBool::new(false));
        let cfg = WatchdogConfig {
            poll_interval: Duration::from_millis(10),
            stall_after: Duration::from_millis(60),
        };
        let report = std::thread::scope(|scope| {
            let watchdog = {
                let metrics = Arc::clone(&metrics);
                let stop = Arc::clone(&stop);
                scope.spawn(move || run(&metrics, &stop, cfg))
            };
            // Keep the heartbeat fresh for ~100ms.
            let beats = metrics.beats();
            metrics.shard_started(&beats[0], 0);
            for i in 1..=10 {
                metrics.record_statement(&beats[0], i, None, crate::event::OutcomeClass::Ok);
                std::thread::sleep(Duration::from_millis(10));
            }
            metrics.shard_finished(&beats[0], 0, &soft_engine::Coverage::new());
            stop.store(true, Ordering::Release);
            watchdog.join().expect("watchdog thread")
        });
        assert!(report.stalls.is_empty(), "stalls: {:?}", report.stalls);
        assert_eq!(report.render_summary(), format!("watchdog: all clear ({} polls)", report.polls));
    }
}
