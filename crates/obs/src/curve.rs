//! Coverage-growth and unique-bug-growth series (the §7.5 analogue).
//!
//! The paper plots unique bugs over a 24-hour run; the reproduction's
//! budget is statements, so both series are indexed by the global statement
//! count. Points are pure data (set cardinalities at deterministic sample
//! indices), so the series participate in the campaign report's equality.

use crate::event::{OutcomeClass, StatementEvent};
use std::collections::HashSet;
use std::fmt::Write as _;

/// One sample of the coverage-vs-statements series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoveragePoint {
    /// Global statements executed when the snapshot was taken.
    pub statements: usize,
    /// Distinct built-in functions triggered so far (Table 5 metric).
    pub functions: usize,
    /// Distinct branches covered so far (Table 6 metric).
    pub branches: usize,
}

/// One step of the unique-bugs-vs-statements series: a new unique fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugPoint {
    /// Global statement index at which the fault first fired.
    pub statements: usize,
    /// Unique bugs found up to and including this statement.
    pub unique_bugs: usize,
    /// The fault that became unique here.
    pub fault_id: String,
}

/// The two growth series together.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GrowthCurves {
    /// Coverage snapshots, in statement order.
    pub coverage: Vec<CoveragePoint>,
    /// Unique-bug steps, in statement order.
    pub bugs: Vec<BugPoint>,
}

impl GrowthCurves {
    /// Derives the unique-bug series from a globally ordered event stream
    /// (first occurrence of each fault id wins — the same dedup rule the
    /// campaign's finding merge applies). Crash and logic-bug faults both
    /// step the series: a wrong-result finding is a unique bug too.
    pub fn bugs_from_events(events: &[StatementEvent]) -> Vec<BugPoint> {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut out = Vec::new();
        for e in events {
            if !matches!(e.outcome, OutcomeClass::Crash | OutcomeClass::LogicBug) {
                continue;
            }
            let Some(fault) = e.fault_id.as_deref() else { continue };
            if seen.insert(fault) {
                out.push(BugPoint {
                    statements: e.index,
                    unique_bugs: seen.len(),
                    fault_id: fault.to_string(),
                });
            }
        }
        out
    }

    /// Renders both series as aligned text curves with bar gauges — the
    /// `repro trace` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.bugs.is_empty() {
            out.push_str("unique bugs vs statements\n");
            let max = self.bugs.last().map(|b| b.unique_bugs).unwrap_or(1).max(1);
            for b in &self.bugs {
                let _ = writeln!(
                    out,
                    "{:>10} {:>4}  {}  {}",
                    b.statements,
                    b.unique_bugs,
                    bar(b.unique_bugs, max),
                    b.fault_id
                );
            }
        }
        if !self.coverage.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str("coverage vs statements (functions / branches)\n");
            let max = self.coverage.iter().map(|p| p.branches).max().unwrap_or(1).max(1);
            for p in &self.coverage {
                let _ = writeln!(
                    out,
                    "{:>10} {:>6} {:>8}  {}",
                    p.statements,
                    p.functions,
                    p.branches,
                    bar(p.branches, max)
                );
            }
        }
        out
    }
}

/// A 32-column proportional bar.
fn bar(value: usize, max: usize) -> String {
    let cols = (value * 32 + max - 1) / max.max(1);
    "#".repeat(cols.min(32))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(index: usize, fault: &str) -> StatementEvent {
        StatementEvent {
            index,
            shard: 0,
            seed: Some(0),
            pattern: None,
            function: None,
            outcome: OutcomeClass::Crash,
            fault_id: Some(fault.into()),
        }
    }

    #[test]
    fn bug_series_dedups_in_order() {
        let events = vec![
            StatementEvent::seed(1, 0, 0, None),
            crash(2, "f-a"),
            crash(3, "f-a"),
            crash(5, "f-b"),
        ];
        let bugs = GrowthCurves::bugs_from_events(&events);
        assert_eq!(bugs.len(), 2);
        assert_eq!((bugs[0].statements, bugs[0].unique_bugs), (2, 1));
        assert_eq!((bugs[1].statements, bugs[1].unique_bugs), (5, 2));
    }

    #[test]
    fn render_shows_both_series() {
        let curves = GrowthCurves {
            coverage: vec![
                CoveragePoint { statements: 100, functions: 10, branches: 50 },
                CoveragePoint { statements: 200, functions: 14, branches: 90 },
            ],
            bugs: GrowthCurves::bugs_from_events(&[crash(7, "f-x")]),
        };
        let text = curves.render();
        assert!(text.contains("unique bugs vs statements"));
        assert!(text.contains("coverage vs statements"));
        assert!(text.contains("f-x"));
        assert!(text.contains('#'));
    }
}
