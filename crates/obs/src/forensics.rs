//! Crash-forensics bundles: one self-contained triage directory per unique
//! fault.
//!
//! The paper's harness "logs the corresponding SQL statements for bug
//! reporting" (§7.1); a production fuzzing service needs more than the
//! statement — it needs everything a human (or a replay bot) requires to
//! reproduce and triage the finding without the original campaign. A bundle
//! is that artifact:
//!
//! ```text
//! findings/<fault-id>/
//!   meta.json      # provenance: dialect, kind, stage, patterns, bucket, ...
//!   poc.sql        # the minimized PoC
//!   original.sql   # the pre-minimization statement that first fired
//! ```
//!
//! `meta.json` is one flat JSON object in the same hand-rolled idiom as the
//! journal, so [`crate::json`] round-trips it. This module is deliberately
//! **stringly typed**: `soft-obs` sits below `soft-core` and `soft-dialects`
//! in the crate graph, so kind/stage/pattern/dialect arrive as their stable
//! labels and the conversion back to rich types happens in
//! `soft_core::forensics`, which also owns replay.

use crate::json::{self, JsonValue};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// One crash-forensics bundle, as written to / read from a
/// `findings/<fault-id>/` directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bundle {
    /// The fault's stable id — also the dedup key and the directory name.
    pub fault_id: String,
    /// Dialect display name (e.g. `ClickHouse`).
    pub dialect: String,
    /// Crash kind abbreviation (e.g. `NPD`, `SO`).
    pub kind: String,
    /// Engine stage the crash fired in (`parsing`, `optimization`,
    /// `execution`).
    pub stage: String,
    /// Function category label (Table 4's "Function Type").
    pub category: String,
    /// The pattern the corpus credits (Table 4 ground truth).
    pub credited_pattern: String,
    /// The pattern whose generated statement actually triggered it first.
    pub found_by_pattern: String,
    /// Function the crash occurred in, when known.
    pub function: Option<String>,
    /// Root function of the seed the triggering statement derives from.
    pub seed_function: Option<String>,
    /// The dedup bucket key (`dialect/stage/kind/function`): the coarse
    /// equivalence class a triager would group by *before* fault ids exist,
    /// the way SQLaser buckets crashes pre-triage.
    pub bucket: String,
    /// Global statement index at which the fault first fired.
    pub statements_until_found: usize,
    /// Whether the paper reports the underlying bug fixed.
    pub fixed: bool,
    /// The oracle that raised the finding (`pivot`, `multi-form`,
    /// `differential`) when it is a wrong-result logic bug; `None` for
    /// crash findings.
    pub oracle: Option<String>,
    /// What the oracle expected (logic bugs only).
    pub expected: Option<String>,
    /// What the engine actually produced (logic bugs only).
    pub actual: Option<String>,
    /// A copy-pasteable replay command line.
    pub replay: String,
    /// The minimized PoC.
    pub poc: String,
    /// The pre-minimization statement that first triggered the fault.
    pub original: String,
}

impl Bundle {
    /// The directory this bundle lives in under a findings root: the fault
    /// id with any path-hostile characters replaced.
    pub fn dir_name(&self) -> String {
        sanitize_dir_name(&self.fault_id)
    }

    /// Renders `meta.json` (one flat JSON line, trailing newline).
    pub fn render_meta(&self) -> String {
        let opt = |key: &str, v: &Option<String>| match v {
            Some(s) => json::str_field(key, s),
            None => json::null_field(key),
        };
        let fields = [
            json::str_field("fault_id", &self.fault_id),
            json::str_field("dialect", &self.dialect),
            json::str_field("kind", &self.kind),
            json::str_field("stage", &self.stage),
            json::str_field("category", &self.category),
            json::str_field("credited_pattern", &self.credited_pattern),
            json::str_field("found_by_pattern", &self.found_by_pattern),
            opt("function", &self.function),
            opt("seed_function", &self.seed_function),
            json::str_field("bucket", &self.bucket),
            json::num_field("statements_until_found", self.statements_until_found as i64),
            json::num_field("fixed", i64::from(self.fixed)),
            opt("oracle", &self.oracle),
            opt("expected", &self.expected),
            opt("actual", &self.actual),
            json::str_field("replay", &self.replay),
        ];
        format!("{{{}}}\n", fields.join(", "))
    }

    /// Writes the bundle under `root` as `root/<dir_name>/{meta.json,
    /// poc.sql, original.sql}`, creating directories as needed. Returns the
    /// bundle directory.
    pub fn write(&self, root: &Path) -> std::io::Result<PathBuf> {
        let dir = root.join(self.dir_name());
        fs::create_dir_all(&dir)?;
        fs::write(dir.join("meta.json"), self.render_meta())?;
        fs::write(dir.join("poc.sql"), format!("{}\n", self.poc.trim_end()))?;
        fs::write(dir.join("original.sql"), format!("{}\n", self.original.trim_end()))?;
        Ok(dir)
    }

    /// Reads one bundle back from its directory.
    pub fn read(dir: &Path) -> Result<Bundle, String> {
        let meta_path = dir.join("meta.json");
        let meta = fs::read_to_string(&meta_path)
            .map_err(|e| format!("{}: {e}", meta_path.display()))?;
        let obj = json::parse_object(meta.trim())
            .map_err(|e| format!("{}: {e}", meta_path.display()))?;
        let read_sql = |file: &str| -> Result<String, String> {
            let path = dir.join(file);
            fs::read_to_string(&path)
                .map(|s| s.trim_end().to_string())
                .map_err(|e| format!("{}: {e}", path.display()))
        };
        let str_key = |key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{}: missing {key:?}", meta_path.display()))
        };
        let opt_key = |key: &str| -> Option<String> {
            obj.get(key).and_then(JsonValue::as_str).map(str::to_string)
        };
        let num_key = |key: &str| -> Result<i64, String> {
            obj.get(key)
                .and_then(JsonValue::as_num)
                .ok_or_else(|| format!("{}: missing {key:?}", meta_path.display()))
        };
        Ok(Bundle {
            fault_id: str_key("fault_id")?,
            dialect: str_key("dialect")?,
            kind: str_key("kind")?,
            stage: str_key("stage")?,
            category: str_key("category")?,
            credited_pattern: str_key("credited_pattern")?,
            found_by_pattern: str_key("found_by_pattern")?,
            function: opt_key("function"),
            seed_function: opt_key("seed_function"),
            bucket: str_key("bucket")?,
            statements_until_found: usize::try_from(num_key("statements_until_found")?)
                .map_err(|_| format!("{}: negative statement index", meta_path.display()))?,
            fixed: num_key("fixed")? != 0,
            oracle: opt_key("oracle"),
            expected: opt_key("expected"),
            actual: opt_key("actual"),
            replay: str_key("replay")?,
            poc: read_sql("poc.sql")?,
            original: read_sql("original.sql")?,
        })
    }

    /// Reads every bundle under a findings root (any direct subdirectory
    /// containing a `meta.json`), sorted by fault id for deterministic
    /// iteration.
    pub fn read_all(root: &Path) -> Result<Vec<Bundle>, String> {
        let entries =
            fs::read_dir(root).map_err(|e| format!("{}: {e}", root.display()))?;
        let mut bundles = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", root.display()))?;
            let dir = entry.path();
            if dir.is_dir() && dir.join("meta.json").is_file() {
                bundles.push(Bundle::read(&dir)?);
            }
        }
        bundles.sort_by(|a, b| a.fault_id.cmp(&b.fault_id));
        Ok(bundles)
    }

    /// Renders a one-line human summary (for `repro bundle` output).
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{} [{} {} @ {}] found at statement {} by {}",
            self.fault_id,
            self.kind,
            self.category,
            self.stage,
            self.statements_until_found,
            self.found_by_pattern,
        );
        if let Some(f) = &self.function {
            let _ = write!(out, " in {f}()");
        }
        out
    }
}

/// Builds the dedup bucket key from its components (missing function →
/// `?`). Kept next to [`Bundle`] so writers and tests agree on the shape.
pub fn bucket_key(dialect_key: &str, stage: &str, kind: &str, function: Option<&str>) -> String {
    format!("{dialect_key}/{stage}/{kind}/{}", function.unwrap_or("?"))
}

/// Replaces path-hostile characters so a fault id is usable as a directory
/// name on any filesystem. Public because the seed repository
/// (`soft_core::repo`) derives its entry directories from fault ids with
/// the same rule, so a bundle and its repository entry always share a name.
pub fn sanitize_dir_name(fault_id: &str) -> String {
    let cleaned: String = fault_id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '_' })
        .collect();
    // A name of only dots would be `.`/`..`; prefix it out of danger.
    if cleaned.chars().all(|c| c == '.') || cleaned.is_empty() {
        format!("fault_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bundle {
        Bundle {
            fault_id: "clickhouse-string-npd-listing1-3".into(),
            dialect: "ClickHouse".into(),
            kind: "NPD".into(),
            stage: "execution".into(),
            category: "String".into(),
            credited_pattern: "P1.2".into(),
            found_by_pattern: "P1.2".into(),
            function: Some("substr".into()),
            seed_function: Some("substr".into()),
            bucket: "clickhouse/execution/NPD/substr".into(),
            statements_until_found: 1234,
            fixed: true,
            oracle: None,
            expected: None,
            actual: None,
            replay: "repro replay findings/clickhouse-string-npd-listing1-3".into(),
            poc: "SELECT substr('', 1)".into(),
            original: "SELECT substr('', 1, 99999) FROM t ORDER BY 1".into(),
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("soft-forensics-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp root");
        dir
    }

    #[test]
    fn bundle_round_trips_through_the_filesystem() {
        let root = temp_root("roundtrip");
        let b = sample();
        let dir = b.write(&root).expect("write");
        assert!(dir.join("meta.json").is_file());
        assert!(dir.join("poc.sql").is_file());
        assert!(dir.join("original.sql").is_file());
        let back = Bundle::read(&dir).expect("read");
        assert_eq!(back, b);
        let all = Bundle::read_all(&root).expect("read_all");
        assert_eq!(all, vec![b]);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn meta_is_one_flat_json_line() {
        let meta = sample().render_meta();
        assert_eq!(meta.lines().count(), 1);
        let obj = json::parse_object(meta.trim()).expect("flat json");
        assert_eq!(obj["fault_id"].as_str(), Some("clickhouse-string-npd-listing1-3"));
        assert_eq!(obj["fixed"].as_num(), Some(1));
        assert_eq!(obj["statements_until_found"].as_num(), Some(1234));
    }

    #[test]
    fn optional_fields_round_trip_as_null() {
        let root = temp_root("nulls");
        let mut b = sample();
        b.function = None;
        b.seed_function = None;
        b.fixed = false;
        let dir = b.write(&root).expect("write");
        let back = Bundle::read(&dir).expect("read");
        assert_eq!(back.function, None);
        assert_eq!(back.seed_function, None);
        assert!(!back.fixed);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn oracle_provenance_round_trips() {
        let root = temp_root("oracle");
        let mut b = sample();
        b.fault_id = "logic-multiform-tostring".into();
        b.kind = "LOGIC".into();
        b.oracle = Some("multi-form".into());
        b.expected = Some("42".into());
        b.actual = Some("42.0".into());
        let dir = b.write(&root).expect("write");
        let back = Bundle::read(&dir).expect("read");
        assert_eq!(back, b);
        assert_eq!(back.oracle.as_deref(), Some("multi-form"));
        assert_eq!(back.expected.as_deref(), Some("42"));
        assert_eq!(back.actual.as_deref(), Some("42.0"));
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn dir_names_are_sanitized() {
        let mut b = sample();
        b.fault_id = "weird/fault:id with spaces".into();
        assert_eq!(b.dir_name(), "weird_fault_id_with_spaces");
        b.fault_id = "..".into();
        assert_eq!(b.dir_name(), "fault_..");
    }

    #[test]
    fn bucket_key_shape() {
        assert_eq!(
            bucket_key("monetdb", "execution", "SO", Some("repeat")),
            "monetdb/execution/SO/repeat"
        );
        assert_eq!(bucket_key("mysql", "parsing", "AF", None), "mysql/parsing/AF/?");
    }

    #[test]
    fn summary_mentions_the_triage_essentials() {
        let line = sample().render_summary();
        assert!(line.contains("clickhouse-string-npd-listing1-3"), "{line}");
        assert!(line.contains("NPD"), "{line}");
        assert!(line.contains("statement 1234"), "{line}");
        assert!(line.contains("substr()"), "{line}");
    }
}
