//! Campaign findings and reports (the data behind Table 4 and §7.3).

use crate::oracle::LogicBug;
use soft_dialects::DialectId;
use soft_engine::{CrashKind, PatternId, Stage};
use soft_types::category::FunctionCategory;
use std::collections::BTreeMap;

/// What kind of bug a finding is: a crash (the paper's Table 4 classes) or
/// a wrong result raised by one of the logic-bug oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The statement crashed the engine; carries the Table 4 class.
    Crash(CrashKind),
    /// The statement completed with a wrong result; carries the oracle's
    /// verdict.
    Logic(LogicBug),
}

impl FindingKind {
    /// Short label for tables and forensics bundles: the crash kind's
    /// abbreviation, or `"LOGIC"` for wrong-result findings.
    pub fn abbrev(&self) -> &'static str {
        match self {
            FindingKind::Crash(k) => k.abbrev(),
            FindingKind::Logic(_) => "LOGIC",
        }
    }

    /// The crash classification, when this is a crash.
    pub fn crash(&self) -> Option<CrashKind> {
        match self {
            FindingKind::Crash(k) => Some(*k),
            FindingKind::Logic(_) => None,
        }
    }

    /// The oracle verdict, when this is a wrong result.
    pub fn logic(&self) -> Option<&LogicBug> {
        match self {
            FindingKind::Crash(_) => None,
            FindingKind::Logic(bug) => Some(bug),
        }
    }
}

/// One discovered bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugFinding {
    /// The fault's stable id (dedup key).
    pub fault_id: String,
    /// Target it was found in.
    pub dialect: DialectId,
    /// Crash classification, or the logic-bug oracle's verdict.
    pub kind: FindingKind,
    /// Stage of the crash.
    pub stage: Stage,
    /// Function category (Table 4's "Function Type").
    pub category: FunctionCategory,
    /// The pattern the corpus credits (Table 4 ground truth).
    pub credited_pattern: PatternId,
    /// The pattern whose generated statement actually triggered it first.
    pub found_by_pattern: PatternId,
    /// Function the crash occurred in.
    pub function: Option<String>,
    /// Root function of the seed the triggering statement derives from
    /// (forensics provenance; `None` for external generators). Interned —
    /// the campaign shares one allocation per seed across findings and
    /// journal events.
    pub seed_function: Option<std::sync::Arc<str>>,
    /// The triggering statement.
    pub poc: String,
    /// How many statements had been executed when it fired.
    pub statements_until_found: usize,
    /// Whether the paper reports the bug fixed.
    pub fixed: bool,
}

/// Deterministic per-shard execution counters from the sharded campaign
/// runner. These are part of the report's `PartialEq` surface: the shard
/// decomposition depends only on the configuration, never on the worker
/// count, so equal configurations yield equal shard stats. Wall-clock
/// telemetry (statements/sec) lives in
/// [`ShardTiming`](crate::campaign::ShardTiming) instead, outside the
/// comparable report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index, in global statement order.
    pub shard: usize,
    /// Global statement offset where the shard begins (0-based).
    pub start_offset: usize,
    /// Statements the shard executed (its budget consumed).
    pub statements: usize,
    /// Crash outcomes observed (including repeats of already-found faults).
    pub crashes: usize,
    /// Ordinary SQL errors observed.
    pub errors: usize,
    /// Resource-limit kills observed.
    pub false_positives: usize,
    /// Statements the logic-bug oracles flagged as wrong results
    /// (including repeats of already-found faults). Zero when the campaign
    /// runs with oracles off.
    pub logic_bugs: usize,
}

/// The result of one campaign against one target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Target tested.
    pub dialect: DialectId,
    /// Statements executed (the budget actually spent).
    pub statements_executed: usize,
    /// Unique bugs found, in discovery order.
    pub findings: Vec<BugFinding>,
    /// Resource-limit kills (the paper's false-positive class).
    pub false_positives: usize,
    /// Ordinary SQL errors observed.
    pub errors: usize,
    /// Distinct built-in functions triggered (Table 5 metric).
    pub functions_triggered: usize,
    /// Branches covered in the function component (Table 6 metric).
    pub branches_covered: usize,
    /// Cases generated per pattern before dedup/budgeting, in application
    /// order — empty for non-pattern generators ([`run_generator`] runs).
    /// Guards against a pattern silently dropping out of the campaign.
    ///
    /// [`run_generator`]: crate::campaign::run_generator
    pub generated_per_pattern: Vec<(PatternId, usize)>,
    /// Per-shard execution counters, in shard order — empty for unsharded
    /// [`run_generator`] runs.
    ///
    /// [`run_generator`]: crate::campaign::run_generator
    pub shards: Vec<ShardStats>,
    /// Deterministic campaign telemetry (event journal, yield metrics,
    /// growth curves) when [`CampaignConfig::telemetry`] is on. Inside the
    /// `PartialEq` surface on purpose: the worker-count-invariance guarantee
    /// extends to the journal, event for event. Wall-clock telemetry (stage
    /// latency histograms, shard timings) lives on
    /// [`CampaignRun`](crate::campaign::CampaignRun) instead.
    ///
    /// [`CampaignConfig::telemetry`]: crate::campaign::CampaignConfig
    pub telemetry: Option<soft_obs::CampaignTelemetry>,
}

impl CampaignReport {
    /// Crash findings per crash kind, Table 4 legend order. Wrong-result
    /// findings have no crash kind and are counted by [`logic_count`]
    /// instead.
    ///
    /// [`logic_count`]: CampaignReport::logic_count
    pub fn by_kind(&self) -> Vec<(CrashKind, usize)> {
        CrashKind::ALL
            .iter()
            .map(|k| (*k, self.findings.iter().filter(|f| f.kind.crash() == Some(*k)).count()))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// Number of crash findings.
    pub fn crash_count(&self) -> usize {
        self.findings.iter().filter(|f| f.kind.crash().is_some()).count()
    }

    /// Number of wrong-result (logic-bug) findings.
    pub fn logic_count(&self) -> usize {
        self.findings.iter().filter(|f| f.kind.logic().is_some()).count()
    }

    /// Findings per credited pattern.
    pub fn by_pattern(&self) -> Vec<(PatternId, usize)> {
        PatternId::ALL
            .iter()
            .map(|p| (*p, self.findings.iter().filter(|f| f.credited_pattern == *p).count()))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// Findings per pattern *group* (1 = literals, 2 = castings,
    /// 3 = nested), using the discovering pattern.
    pub fn by_found_group(&self) -> [usize; 3] {
        let mut out = [0usize; 3];
        for f in &self.findings {
            out[f.found_by_pattern.group() as usize - 1] += 1;
        }
        out
    }

    /// Findings grouped per category, as Table 4 rows.
    ///
    /// Ordering audit (deterministic by construction, pinned by the
    /// `ordering_is_pinned` test): rows come out of a `BTreeMap` keyed by
    /// [`FunctionCategory`] (ascending `Ord`), and the kind / pattern
    /// breakdown strings are joined from `BTreeMap`s too, so the output is
    /// a pure function of the finding *set* — the order findings were
    /// recorded in never leaks into the table. `by_kind` / `by_pattern`
    /// likewise walk the fixed `::ALL` arrays, not the findings.
    pub fn table4_rows(&self) -> Vec<(FunctionCategory, usize, String, String)> {
        let mut rows: BTreeMap<FunctionCategory, Vec<&BugFinding>> = BTreeMap::new();
        for f in &self.findings {
            rows.entry(f.category).or_default().push(f);
        }
        rows.into_iter()
            .map(|(cat, fs)| {
                let mut kinds: BTreeMap<&'static str, usize> = BTreeMap::new();
                let mut pats: BTreeMap<&'static str, usize> = BTreeMap::new();
                for f in &fs {
                    *kinds.entry(f.kind.abbrev()).or_insert(0) += 1;
                    *pats.entry(f.credited_pattern.label()).or_insert(0) += 1;
                }
                let kind_s = kinds
                    .iter()
                    .map(|(k, n)| format!("{k}({n})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let pat_s = pats
                    .iter()
                    .map(|(p, n)| format!("{p}({n})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                (cat, fs.len(), kind_s, pat_s)
            })
            .collect()
    }

    /// Number of findings marked fixed.
    pub fn fixed_count(&self) -> usize {
        self.findings.iter().filter(|f| f.fixed).count()
    }
}

/// Renders a set of per-dialect reports as a Table 4-style text table.
pub fn render_table4(reports: &[CampaignReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<14} {:<6} {:<34} {:<34} {}\n",
        "DBMS", "Function Type", "Bugs", "Bug Types", "Patterns", "Status"
    ));
    let mut total = 0usize;
    let mut total_fixed = 0usize;
    for r in reports {
        for (cat, n, kinds, pats) in r.table4_rows() {
            let fixed = r
                .findings
                .iter()
                .filter(|f| f.category == cat && f.fixed)
                .count();
            out.push_str(&format!(
                "{:<12} {:<14} {:<6} {:<34} {:<34} {} confirmed, {} fixed\n",
                r.dialect.name(),
                cat.label(),
                n,
                kinds,
                pats,
                n,
                fixed
            ));
        }
        total += r.findings.len();
        total_fixed += r.fixed_count();
    }
    out.push_str(&format!(
        "TOTAL: {total} bugs, {total_fixed} fixed\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(kind: CrashKind, pattern: PatternId, cat: FunctionCategory) -> BugFinding {
        BugFinding {
            fault_id: format!("{}-{}", kind.abbrev(), pattern.label()),
            dialect: DialectId::Mysql,
            kind: FindingKind::Crash(kind),
            stage: Stage::Execution,
            category: cat,
            credited_pattern: pattern,
            found_by_pattern: pattern,
            function: Some("f".into()),
            seed_function: Some("f".into()),
            poc: "SELECT f(NULL)".into(),
            statements_until_found: 10,
            fixed: true,
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            dialect: DialectId::Mysql,
            statements_executed: 100,
            findings: vec![
                finding(CrashKind::NullPointerDereference, PatternId::P1_2, FunctionCategory::String),
                finding(CrashKind::NullPointerDereference, PatternId::P3_3, FunctionCategory::String),
                finding(CrashKind::StackOverflow, PatternId::P2_1, FunctionCategory::Json),
            ],
            false_positives: 2,
            errors: 5,
            functions_triggered: 40,
            branches_covered: 900,
            generated_per_pattern: vec![(PatternId::P1_1, 10), (PatternId::P1_2, 40)],
            shards: vec![ShardStats {
                shard: 0,
                start_offset: 0,
                statements: 100,
                crashes: 3,
                errors: 5,
                false_positives: 2,
                logic_bugs: 0,
            }],
            telemetry: None,
        }
    }

    #[test]
    fn aggregations() {
        let r = report();
        assert_eq!(r.by_kind(), vec![
            (CrashKind::NullPointerDereference, 2),
            (CrashKind::StackOverflow, 1)
        ]);
        assert_eq!(r.by_found_group(), [1, 1, 1]);
        assert_eq!(r.fixed_count(), 3);
        let rows = r.table4_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1 + rows[1].1, 3);
    }

    /// Pins the ordering audit of [`CampaignReport::table4_rows`]: every
    /// rendered surface must be a pure function of the finding *set*, so
    /// reversing the order findings were recorded in changes nothing, and
    /// the row / legend orders follow the fixed `Ord` / `::ALL` orders.
    #[test]
    fn ordering_is_pinned() {
        let forward = report();
        let mut reversed = report();
        reversed.findings.reverse();
        assert_eq!(forward.table4_rows(), reversed.table4_rows());
        assert_eq!(forward.by_kind(), reversed.by_kind());
        assert_eq!(forward.by_pattern(), reversed.by_pattern());
        assert_eq!(render_table4(&[forward.clone()]), render_table4(&[reversed]));

        // Rows ascend in category order; breakdowns ascend alphabetically.
        let rows = forward.table4_rows();
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(rows[0].0, FunctionCategory::String);
        assert_eq!(rows[0].3, "P1.2(1), P3.3(1)");
        // by_pattern follows PatternId::ALL order, not discovery order.
        assert_eq!(
            forward.by_pattern(),
            vec![(PatternId::P1_2, 1), (PatternId::P2_1, 1), (PatternId::P3_3, 1)]
        );
    }

    #[test]
    fn logic_findings_count_separately_from_crashes() {
        use crate::oracle::OracleKind;
        let mut r = report();
        let mut f = finding(CrashKind::StackOverflow, PatternId::P1_1, FunctionCategory::Math);
        f.fault_id = "logic-multiform-tostring".into();
        f.kind = FindingKind::Logic(LogicBug {
            oracle: OracleKind::MultiForm,
            expected: "rows: 42".into(),
            actual: "rows: 42.0".into(),
        });
        r.findings.push(f);
        assert_eq!(r.crash_count(), 3);
        assert_eq!(r.logic_count(), 1);
        // by_kind only counts crashes; the logic finding shows up in the
        // rendered table under its own LOGIC label.
        assert_eq!(r.by_kind().iter().map(|(_, n)| n).sum::<usize>(), 3);
        assert!(render_table4(&[r]).contains("LOGIC(1)"));
    }

    #[test]
    fn table4_rendering_mentions_everything() {
        let text = render_table4(&[report()]);
        assert!(text.contains("MySQL"));
        assert!(text.contains("NPD(2)"));
        assert!(text.contains("P1.2(1)"));
        assert!(text.contains("TOTAL: 3 bugs, 3 fixed"));
    }
}
