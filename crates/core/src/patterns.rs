//! The ten boundary-value-generation patterns (§6) as statement
//! transformations.
//!
//! Each generator takes a seed statement, locates its function expressions,
//! and produces mutated statements per the pattern's template. Following
//! Finding 3, mutations that would nest more than two function expressions
//! are discarded.

use crate::pool;
use soft_engine::PatternId;
use soft_parser::ast::{Expr, FunctionExpr, Literal, SelectBody, SelectItem, SelectStmt, Statement, TypeName};
use soft_parser::visit;

/// One generated test case.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedCase {
    /// The statement text to execute.
    pub sql: String,
    /// The pattern that generated it.
    pub pattern: PatternId,
}

/// Shared generation context built from the collection step.
#[derive(Debug, Clone)]
pub struct GenCtx {
    /// The P1.1 boundary literal pool.
    pub pool: Vec<Expr>,
    /// Collected function expressions (P3.3 donors).
    pub donor_exprs: Vec<FunctionExpr>,
    /// Distinct arguments of collected expressions (P2.3 donors), most
    /// interesting first.
    pub donor_args: Vec<Expr>,
    /// Unary collected functions usable as P3.2 wrappers.
    pub wrappers: Vec<String>,
    /// Cast target types for P2.1.
    pub cast_types: Vec<TypeName>,
}

impl GenCtx {
    /// Builds the context from a collection.
    pub fn new(collection: &crate::collect::Collection) -> GenCtx {
        // One donor expression per distinct function name: for P3.3 the
        // donor's *identity* matters, not its argument variations, and
        // deduplication lets the rotation cover the whole catalog.
        let mut donor_exprs: Vec<FunctionExpr> = Vec::new();
        let mut donor_names = std::collections::HashSet::new();
        for fx in &collection.expressions {
            if donor_names.insert(fx.name.to_ascii_lowercase()) {
                donor_exprs.push(fx.clone());
            }
        }
        let mut donor_args: Vec<Expr> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for fx in &collection.expressions {
            for a in &fx.args {
                // Nested calls are P3.3's donors; P2.3 transplants values.
                if matches!(a, Expr::Function(_)) {
                    continue;
                }
                let key = a.to_string();
                if seen.insert(key) {
                    donor_args.push(a.clone());
                }
            }
        }
        donor_args.sort_by_key(|e| std::cmp::Reverse(interest(e)));
        let cast_types = [
            "DECIMAL", "INTEGER", "DOUBLE", "TEXT", "BINARY", "JSON", "XML", "GEOMETRY", "DATE",
        ]
        .iter()
        .map(|t| TypeName::simple(t))
        .collect();
        GenCtx {
            pool: pool::boundary_literals(),
            donor_exprs,
            donor_args,
            wrappers: collection.wrappers.clone(),
            cast_types,
        }
    }
}

/// How likely an expression is to be a boundary value for *another*
/// function: structured text, typed/constructed values, long digit strings.
fn interest(e: &Expr) -> u32 {
    match e {
        Expr::Literal(Literal::String(s)) => {
            if soft_types::boundary::looks_structured(s) {
                9
            } else if s.chars().filter(char::is_ascii_digit).count() > 6 {
                7
            } else {
                1
            }
        }
        Expr::Literal(Literal::HexBlob(_)) => 8,
        Expr::IntervalLiteral { .. } => 8,
        Expr::ArrayLiteral(_) | Expr::Row(_) => 6,
        Expr::Cast { .. } => 6,
        Expr::Literal(Literal::Number(n)) => {
            if n.len() > 6 {
                5
            } else {
                1
            }
        }
        Expr::Function(_) => 3,
        _ => 0,
    }
}

/// Replaces argument `arg_idx` of the `fn_idx`-th function expression.
fn mutate_arg(
    stmt: &Statement,
    fn_idx: usize,
    arg_idx: usize,
    build: impl FnOnce(&Expr) -> Expr,
) -> Option<Statement> {
    let mut s = stmt.clone();
    let mut applied = false;
    let replaced = visit::replace_function_expr(&mut s, fn_idx, |orig| {
        let mut f = orig.clone();
        if arg_idx < f.args.len() {
            let new_arg = build(&f.args[arg_idx]);
            f.args[arg_idx] = new_arg;
            applied = true;
        }
        Expr::Function(f)
    });
    if !replaced || !applied {
        return None;
    }
    // Finding 3: at most two nested function expressions.
    if visit::max_function_nesting(&s) > 2 {
        return None;
    }
    Some(s)
}

/// Enumerates (function index, argument index) pairs of a statement.
fn call_sites(stmt: &Statement) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (fi, fx) in visit::collect_function_exprs(stmt).iter().enumerate() {
        for ai in 0..fx.args.len() {
            out.push((fi, ai));
        }
        if fx.args.is_empty() {
            // Zero-argument calls still get boundary arguments *added* by
            // P1.2 (e.g. `PI(*)` probes arity handling) — skip: the engine
            // rejects arity mismatches before the function sees them.
        }
    }
    out
}

/// Applies one pattern to one seed, appending up to `cap` cases.
///
/// `salt` rotates the starting position inside the donor/wrapper pools so
/// that, across many seeds, the whole pool is exercised even under tight
/// per-seed caps.
pub fn apply_salted(
    pattern: PatternId,
    seed: &Statement,
    ctx: &GenCtx,
    cap: usize,
    salt: usize,
    out: &mut Vec<GeneratedCase>,
) {
    let start = out.len();
    let push = |out: &mut Vec<GeneratedCase>, stmt: Statement| {
        out.push(GeneratedCase { sql: stmt.to_string(), pattern });
    };
    match pattern {
        PatternId::P1_1 => {
            // Direct boundary probing: the pool value *is* the argument
            // vector. Every argument of a collected call is replaced by the
            // same boundary literal at once — the paper's "simple boundary
            // argument" in its purest form, distinct from P1.2's one-
            // argument-at-a-time substitution.
            let nfuncs = visit::collect_function_exprs(seed).len();
            'outer: for fi in 0..nfuncs {
                for b in &ctx.pool {
                    let mut s = seed.clone();
                    let mut applied = false;
                    let replaced = visit::replace_function_expr(&mut s, fi, |orig| {
                        let mut f = orig.clone();
                        if !f.args.is_empty() {
                            for a in f.args.iter_mut() {
                                *a = b.clone();
                            }
                            applied = true;
                        }
                        Expr::Function(f)
                    });
                    if !replaced || !applied || visit::max_function_nesting(&s) > 2 {
                        continue;
                    }
                    if s.to_string() == seed.to_string() {
                        continue;
                    }
                    push(out, s);
                    if out.len() - start >= cap {
                        break 'outer;
                    }
                }
            }
        }
        PatternId::P1_2 => {
            'outer: for (fi, ai) in call_sites(seed) {
                for b in &ctx.pool {
                    if let Some(s) = mutate_arg(seed, fi, ai, |_| b.clone()) {
                        push(out, s);
                        if out.len() - start >= cap {
                            break 'outer;
                        }
                    }
                }
            }
        }
        PatternId::P1_3 => {
            // Insert digit runs into literals (strings *and* numbers — the
            // Listing 6 AVG case is a long numeric literal).
            'outer: for (fi, ai) in call_sites(seed) {
                for run in [5usize, 25, 64] {
                    let digits = "9".repeat(run);
                    let mutated = mutate_arg(seed, fi, ai, |orig| match orig {
                        Expr::Literal(Literal::String(s)) => {
                            let mid = s.len() / 2;
                            let mut t = s.clone();
                            t.insert_str(mid, &digits);
                            Expr::string(&t)
                        }
                        Expr::Literal(Literal::Number(n)) => {
                            if n.contains('.') {
                                Expr::number(&format!("{n}{digits}"))
                            } else {
                                Expr::number(&format!("{n}.{digits}"))
                            }
                        }
                        other => other.clone(),
                    });
                    match mutated {
                        Some(s) if s.to_string() != seed.to_string() => {
                            push(out, s);
                            if out.len() - start >= cap {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        PatternId::P1_4 => {
            // Duplicate a character of a string literal in place.
            'outer: for (fi, ai) in call_sites(seed) {
                for times in [8usize, 16, 64] {
                    let mutated = mutate_arg(seed, fi, ai, |orig| match orig {
                        Expr::Literal(Literal::String(s)) if !s.is_empty() => {
                            let first = s.chars().next().expect("non-empty");
                            let mut t = String::with_capacity(s.len() + times);
                            for _ in 0..times {
                                t.push(first);
                            }
                            t.push_str(s);
                            Expr::string(&t)
                        }
                        // The container analogue: duplicate the leading
                        // element in place.
                        Expr::ArrayLiteral(items) if !items.is_empty() => {
                            let mut out = Vec::with_capacity(items.len() + times);
                            for _ in 0..times {
                                out.push(items[0].clone());
                            }
                            out.extend(items.iter().cloned());
                            Expr::ArrayLiteral(out)
                        }
                        other => other.clone(),
                    });
                    match mutated {
                        Some(s) if s.to_string() != seed.to_string() => {
                            push(out, s);
                            if out.len() - start >= cap {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        PatternId::P2_1 => {
            'outer: for (fi, ai) in call_sites(seed) {
                for ty in &ctx.cast_types {
                    let mutated = mutate_arg(seed, fi, ai, |orig| Expr::Cast {
                        expr: Box::new(orig.clone()),
                        type_name: ty.clone(),
                        postgres_style: false,
                    });
                    if let Some(s) = mutated {
                        push(out, s);
                        if out.len() - start >= cap {
                            break 'outer;
                        }
                    }
                }
            }
        }
        PatternId::P2_2 => {
            // f(c) -> f((SELECT c UNION ALL SELECT v LIMIT 1)): the UNION
            // aligns c to the wider type, creating an implicit cast.
            let partners: [Expr; 3] =
                [Expr::string("zz"), Expr::number("1e200"), Expr::ArrayLiteral(vec![])];
            'outer: for (fi, ai) in call_sites(seed) {
                for v in &partners {
                    let mutated = mutate_arg(seed, fi, ai, |orig| {
                        union_subquery(orig.clone(), v.clone())
                    });
                    if let Some(s) = mutated {
                        push(out, s);
                        if out.len() - start >= cap {
                            break 'outer;
                        }
                    }
                }
            }
        }
        PatternId::P2_3 => {
            let n = ctx.donor_args.len().max(1);
            // Always try the high-interest head (structured text, blobs,
            // intervals come first), then a salt-rotated sample of the rest.
            'outer: for (fi, ai) in call_sites(seed) {
                for k in 0..n.min(64) {
                    let idx = if k < 24 { k } else { (salt + k) % n };
                    let donor = &ctx.donor_args[idx];
                    let mutated = mutate_arg(seed, fi, ai, |_| donor.clone());
                    match mutated {
                        Some(s) if s.to_string() != seed.to_string() => {
                            push(out, s);
                            if out.len() - start >= cap {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        PatternId::P3_1 => {
            'outer: for (fi, ai) in call_sites(seed) {
                for count in pool::repetition_counts() {
                    for default_prefix in ["[", "[1,", "{\"a\":"] {
                        let mutated = mutate_arg(seed, fi, ai, |orig| {
                            let prefix = match orig {
                                Expr::Literal(Literal::String(s)) if !s.is_empty() => {
                                    s.chars().take(3).collect::<String>()
                                }
                                _ => default_prefix.to_string(),
                            };
                            Expr::func(
                                "REPEAT",
                                vec![Expr::string(&prefix), Expr::number(&count.to_string())],
                            )
                        });
                        if let Some(s) = mutated {
                            push(out, s);
                            if out.len() - start >= cap {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        PatternId::P3_2 => {
            let n = ctx.wrappers.len().max(1);
            'outer: for (fi, ai) in call_sites(seed) {
                for k in 0..n.min(16) {
                    let wrapper = &ctx.wrappers[(salt + k) % n];
                    let mutated = mutate_arg(seed, fi, ai, |orig| {
                        Expr::func(wrapper, vec![orig.clone()])
                    });
                    if let Some(s) = mutated {
                        push(out, s);
                        if out.len() - start >= cap {
                            break 'outer;
                        }
                    }
                }
            }
        }
        PatternId::P3_3 => {
            let n = ctx.donor_exprs.len().max(1);
            'outer: for (fi, ai) in call_sites(seed) {
                for k in 0..n.min(320) {
                    let donor = &ctx.donor_exprs[(salt + k) % n];
                    let mutated = mutate_arg(seed, fi, ai, |_| Expr::Function(donor.clone()));
                    match mutated {
                        Some(s) if s.to_string() != seed.to_string() => {
                            push(out, s);
                            if out.len() - start >= cap {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// [`apply_salted`] with salt 0.
pub fn apply(
    pattern: PatternId,
    seed: &Statement,
    ctx: &GenCtx,
    cap: usize,
    out: &mut Vec<GeneratedCase>,
) {
    apply_salted(pattern, seed, ctx, cap, 0, out);
}

/// Builds `(SELECT c UNION ALL SELECT v LIMIT 1)`.
fn union_subquery(c: Expr, v: Expr) -> Expr {
    let query = |e: Expr| {
        SelectBody::Query(Box::new(soft_parser::ast::Query {
            distinct: false,
            items: vec![SelectItem::Expr { expr: e, alias: None }],
            from: None,
            where_clause: None,
            group_by: vec![],
            having: None,
        }))
    };
    Expr::Subquery(Box::new(SelectStmt {
        body: SelectBody::Union {
            left: Box::new(query(c)),
            right: Box::new(query(v)),
            all: true,
        },
        order_by: vec![],
        limit: Some(1),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_parser::parse_statement;

    fn ctx() -> GenCtx {
        let profile = soft_dialects::DialectProfile::build(soft_dialects::DialectId::Mariadb);
        GenCtx::new(&crate::collect::collect(&profile))
    }

    fn seed(sql: &str) -> Statement {
        parse_statement(sql).unwrap()
    }

    fn gen(pattern: PatternId, sql: &str) -> Vec<String> {
        let mut out = Vec::new();
        apply(pattern, &seed(sql), &ctx(), 1000, &mut out);
        out.iter().map(|c| c.sql.clone()).collect()
    }

    #[test]
    fn p1_1_probes_whole_argument_vectors() {
        let cases = gen(PatternId::P1_1, "SELECT f('abc', 1)");
        // One case per pool literal: both arguments replaced at once.
        assert_eq!(cases.len(), pool::boundary_literals().len());
        assert!(cases.contains(&"SELECT f(NULL, NULL)".to_string()));
        assert!(cases.contains(&"SELECT f('', '')".to_string()));
        // P1.2's partial substitutions must NOT appear.
        assert!(!cases.contains(&"SELECT f(NULL, 1)".to_string()));
    }

    #[test]
    fn p1_2_substitutes_pool_literals() {
        let cases = gen(PatternId::P1_2, "SELECT f('abc', 1)");
        // Two argument positions × pool size.
        assert_eq!(cases.len(), 2 * pool::boundary_literals().len());
        assert!(cases.contains(&"SELECT f(NULL, 1)".to_string()));
        assert!(cases.contains(&"SELECT f(*, 1)".to_string()));
        assert!(cases.contains(&"SELECT f('abc', '')".to_string()));
        assert!(cases.iter().any(|c| c.contains(&"9".repeat(45))));
    }

    #[test]
    fn p1_3_inserts_digit_runs() {
        let cases = gen(PatternId::P1_3, "SELECT AVG(1.2)");
        assert!(cases.iter().any(|c| c.contains(&format!("1.2{}", "9".repeat(64)))));
        let str_cases = gen(PatternId::P1_3, "SELECT f('ab')");
        assert!(str_cases.iter().any(|c| c.contains("99999")));
    }

    #[test]
    fn p1_4_duplicates_characters() {
        let cases = gen(PatternId::P1_4, "SELECT JSON_VALID('{\"key\": 0}')");
        assert!(cases.iter().any(|c| c.contains(&"{".repeat(9))), "{cases:?}");
    }

    #[test]
    fn p2_1_wraps_in_casts() {
        let cases = gen(PatternId::P2_1, "SELECT f(1)");
        assert!(cases.contains(&"SELECT f(CAST(1 AS JSON))".to_string()));
        assert!(cases.contains(&"SELECT f(CAST(1 AS GEOMETRY))".to_string()));
    }

    #[test]
    fn p2_2_builds_union_subqueries() {
        let cases = gen(PatternId::P2_2, "SELECT f(7)");
        assert!(cases
            .contains(&"SELECT f((SELECT 7 UNION ALL SELECT 'zz' LIMIT 1))".to_string()));
    }

    #[test]
    fn p2_3_transplants_donor_args() {
        let cases = gen(PatternId::P2_3, "SELECT ABS(1)");
        assert!(!cases.is_empty());
        // Donor args come from the collection, most interesting first.
        assert!(cases.iter().any(|c| c != "SELECT ABS(1)"));
    }

    #[test]
    fn p3_1_builds_repeat_calls() {
        let cases = gen(PatternId::P3_1, "SELECT JSON_LENGTH('[1]')");
        assert!(cases.iter().any(|c| c.contains("REPEAT('[1]'")
            || c.contains("REPEAT('[1,'")
            || c.contains("REPEAT('[1")));
    }

    #[test]
    fn p3_2_wraps_arguments() {
        let cases = gen(PatternId::P3_2, "SELECT f('x')");
        assert!(!cases.is_empty());
        for c in &cases {
            let stmt = parse_statement(c).unwrap();
            assert!(soft_parser::visit::max_function_nesting(&stmt) <= 2);
        }
    }

    #[test]
    fn p3_3_replaces_with_donor_calls() {
        let cases = gen(PatternId::P3_3, "SELECT f(1)");
        assert!(!cases.is_empty());
        for c in &cases {
            let stmt = parse_statement(c).unwrap();
            assert!(soft_parser::visit::max_function_nesting(&stmt) <= 2, "{c}");
        }
    }

    #[test]
    fn nesting_cap_blocks_triple_nesting() {
        // A seed that already has two nested functions cannot be wrapped
        // further.
        let cases = gen(PatternId::P3_2, "SELECT f(g('x'))");
        for c in &cases {
            let stmt = parse_statement(c).unwrap();
            assert!(soft_parser::visit::max_function_nesting(&stmt) <= 2, "{c}");
        }
    }

    #[test]
    fn all_generated_cases_reparse() {
        for pattern in PatternId::ALL {
            for sql in ["SELECT f('abc', 1)", "SELECT JSON_LENGTH('[1]', '$.a')"] {
                for case in gen(pattern, sql) {
                    parse_statement(&case)
                        .unwrap_or_else(|e| panic!("{pattern}: {case}: {e}"));
                }
            }
        }
    }

    #[test]
    fn caps_are_respected() {
        let mut out = Vec::new();
        apply(PatternId::P1_2, &seed("SELECT f('a', 'b', 'c')"), &ctx(), 5, &mut out);
        assert_eq!(out.len(), 5);
    }
}
