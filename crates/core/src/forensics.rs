//! Crash-forensics bundling and replay — the rich-typed side of
//! [`soft_obs::forensics`].
//!
//! `soft-obs` sits below `soft-core` in the crate graph, so its
//! [`Bundle`] is stringly typed. This module owns the conversion from a
//! campaign's [`BugFinding`]s (with their enum-typed kind / stage / pattern
//! provenance) into bundles — minimizing each PoC on the way, the way the
//! paper's §7.4 listings are minimized before reporting — and the inverse
//! direction: replaying a bundle's PoC against a freshly built profile and
//! checking it still fires the recorded fault.

use crate::collect;
use crate::minimize::{minimize, minimize_logic};
use crate::oracle::{self, OracleKind};
use crate::report::{BugFinding, CampaignReport, FindingKind};
use soft_dialects::{DialectId, DialectProfile};
use soft_engine::{Engine, ExecOutcome};
use soft_obs::forensics::bucket_key;
use soft_obs::Bundle;
use std::path::{Path, PathBuf};

/// Builds an engine with the profile's preparation statements replayed —
/// the state every campaign statement (and therefore every PoC) executes
/// against.
fn prepared_engine(profile: &DialectProfile) -> Engine {
    let mut engine = profile.engine();
    for sql in &collect::collect(profile).preparation {
        let _ = engine.execute(&sql.to_string());
    }
    engine
}

/// Converts one campaign finding into a forensics [`Bundle`]: the finding's
/// provenance flattened to its stable labels, the PoC minimized against a
/// prepared engine, and a copy-pasteable replay command pointing into
/// `findings_root`.
pub fn bundle_finding(
    profile: &DialectProfile,
    finding: &BugFinding,
    findings_root: &str,
) -> Bundle {
    let template = prepared_engine(profile);
    // Crash PoCs minimise under the crash signature; multi-form PoCs under
    // the oracle's verdict. Pivot and differential findings carry fixed
    // probe/corpus queries — already minimal, shipped verbatim.
    let poc = match &finding.kind {
        FindingKind::Crash(_) => minimize(&finding.poc, || template.clone()),
        FindingKind::Logic(bug) if bug.oracle == OracleKind::MultiForm => {
            minimize_logic(&finding.poc, || template.clone())
        }
        FindingKind::Logic(_) => finding.poc.clone(),
    };
    let verdict = finding.kind.logic();
    let mut bundle = Bundle {
        fault_id: finding.fault_id.clone(),
        dialect: profile.id.name().to_string(),
        kind: finding.kind.abbrev().to_string(),
        stage: finding.stage.to_string(),
        category: finding.category.label().to_string(),
        credited_pattern: finding.credited_pattern.label().to_string(),
        found_by_pattern: finding.found_by_pattern.label().to_string(),
        function: finding.function.clone(),
        seed_function: finding.seed_function.as_deref().map(str::to_string),
        bucket: bucket_key(
            profile.id.key(),
            &finding.stage.to_string(),
            finding.kind.abbrev(),
            finding.function.as_deref(),
        ),
        statements_until_found: finding.statements_until_found,
        fixed: finding.fixed,
        oracle: verdict.map(|b| b.oracle.label().to_string()),
        expected: verdict.map(|b| b.expected.clone()),
        actual: verdict.map(|b| b.actual.clone()),
        replay: String::new(),
        poc,
        original: finding.poc.clone(),
    };
    bundle.replay = format!("repro replay {}/{}", findings_root, bundle.dir_name());
    bundle
}

/// Writes one bundle per unique finding of a campaign report under `root`,
/// in discovery order. Returns the bundle directories.
pub fn write_campaign_bundles(
    profile: &DialectProfile,
    report: &CampaignReport,
    root: &Path,
) -> std::io::Result<Vec<PathBuf>> {
    let root_label = root.display().to_string();
    report
        .findings
        .iter()
        .map(|f| bundle_finding(profile, f, &root_label).write(root))
        .collect()
}

/// Replays a bundle's minimized PoC against a freshly built profile (with
/// preparation replayed, exactly like a campaign shard) and checks the
/// recorded verdict still holds: crash bundles must crash with the recorded
/// fault id, logic bundles must still be flagged by the recorded oracle.
/// This is the triage contract: a bundle that fails replay is stale or
/// corrupted.
pub fn replay_bundle(bundle: &Bundle) -> Result<(), String> {
    let id = DialectId::from_name(&bundle.dialect)
        .ok_or_else(|| format!("{}: unknown dialect {:?}", bundle.fault_id, bundle.dialect))?;
    let profile = DialectProfile::build(id);
    if bundle.kind == "LOGIC" {
        return replay_logic(&profile, bundle);
    }
    let mut engine = prepared_engine(&profile);
    match engine.execute(&bundle.poc) {
        ExecOutcome::Crash(c) if c.fault_id == bundle.fault_id => Ok(()),
        ExecOutcome::Crash(c) => Err(format!(
            "{}: PoC crashed with a different fault: {}",
            bundle.fault_id, c.fault_id
        )),
        _ => Err(format!("{}: PoC no longer crashes", bundle.fault_id)),
    }
}

/// Replays a wrong-result bundle through the oracle family its `oracle`
/// label names and checks the finding still reproduces.
fn replay_logic(profile: &DialectProfile, bundle: &Bundle) -> Result<(), String> {
    let oracle_label = bundle.oracle.as_deref().unwrap_or("");
    let kind = OracleKind::from_label(oracle_label).ok_or_else(|| {
        format!("{}: unknown oracle {oracle_label:?}", bundle.fault_id)
    })?;
    let template = prepared_engine(profile);
    match kind {
        OracleKind::MultiForm => {
            let stmt = soft_parser::parse_statement(&bundle.poc)
                .map_err(|e| format!("{}: PoC no longer parses: {e}", bundle.fault_id))?;
            match oracle::multi_form_check(&template, &bundle.poc, &stmt) {
                Some(_) => Ok(()),
                None => Err(format!(
                    "{}: the multi-form oracle no longer flags the PoC",
                    bundle.fault_id
                )),
            }
        }
        OracleKind::Pivot => {
            let hit = oracle::pivot_check(&template)
                .iter()
                .any(|(fault, _, _)| *fault == bundle.fault_id);
            if hit {
                Ok(())
            } else {
                Err(format!("{}: the pivot probe no longer fails", bundle.fault_id))
            }
        }
        OracleKind::Differential => {
            let hit = oracle::differential_check(profile)
                .iter()
                .any(|(fault, _, _)| *fault == bundle.fault_id);
            if hit {
                Ok(())
            } else {
                Err(format!(
                    "{}: the differential divergence no longer reproduces",
                    bundle.fault_id
                ))
            }
        }
    }
}

/// Reads every bundle under `root` and replays each one, collecting
/// failures. `Ok(n)` = all `n` bundles replayed.
pub fn replay_all(root: &Path) -> Result<usize, Vec<String>> {
    let bundles = Bundle::read_all(root).map_err(|e| vec![e])?;
    let failures: Vec<String> =
        bundles.iter().filter_map(|b| replay_bundle(b).err()).collect();
    if failures.is_empty() {
        Ok(bundles.len())
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_soft, CampaignConfig};

    fn small_report(profile: &DialectProfile) -> CampaignReport {
        let cfg = CampaignConfig {
            max_statements: 30_000,
            per_seed_cap: 32,
            ..CampaignConfig::default()
        };
        run_soft(profile, &cfg)
    }

    #[test]
    fn findings_bundle_and_replay() {
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let report = small_report(&profile);
        assert!(!report.findings.is_empty(), "need at least one finding to bundle");
        let finding = &report.findings[0];
        let bundle = bundle_finding(&profile, finding, "findings");
        assert_eq!(bundle.fault_id, finding.fault_id);
        assert_eq!(bundle.dialect, "ClickHouse");
        assert!(bundle.poc.len() <= bundle.original.len(), "minimization grew the PoC");
        assert!(bundle.replay.starts_with("repro replay findings/"));
        assert_eq!(
            bundle.bucket,
            bucket_key(
                "clickhouse",
                &finding.stage.to_string(),
                finding.kind.abbrev(),
                finding.function.as_deref()
            )
        );
        replay_bundle(&bundle).expect("minimized PoC must still fire the fault");
    }

    #[test]
    fn logic_bundles_carry_the_verdict_and_replay_through_the_oracle() {
        use soft_engine::{PatternId, Stage};
        use soft_types::category::FunctionCategory;

        let profile = DialectProfile::build(DialectId::Clickhouse);
        let template = prepared_engine(&profile);
        let poc = "SELECT toString(42), 'decoy' LIMIT 3";
        let stmt = soft_parser::parse_statement(poc).expect("parse");
        let bug = oracle::multi_form_check(&template, poc, &stmt)
            .expect("the shipped quirk must be flagged");
        let finding = BugFinding {
            fault_id: "logic-multiform-tostring".into(),
            dialect: profile.id,
            kind: FindingKind::Logic(bug),
            stage: Stage::Execution,
            category: FunctionCategory::Casting,
            credited_pattern: PatternId::P1_2,
            found_by_pattern: PatternId::P1_2,
            function: Some("tostring".into()),
            seed_function: None,
            poc: poc.into(),
            statements_until_found: 1,
            fixed: false,
        };
        let bundle = bundle_finding(&profile, &finding, "findings");
        assert_eq!(bundle.kind, "LOGIC");
        assert_eq!(bundle.oracle.as_deref(), Some("multi-form"));
        assert!(bundle.expected.is_some() && bundle.actual.is_some());
        assert!(!bundle.poc.contains("decoy"), "logic PoC was not minimised: {}", bundle.poc);
        replay_bundle(&bundle).expect("minimised logic PoC must still trip the oracle");

        let mut tampered = bundle;
        tampered.poc = "SELECT 1".into();
        assert!(replay_bundle(&tampered).is_err(), "honest PoC must fail logic replay");
    }

    #[test]
    fn replay_rejects_a_tampered_bundle() {
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let report = small_report(&profile);
        let mut bundle = bundle_finding(&profile, &report.findings[0], "findings");
        bundle.poc = "SELECT 1".into();
        assert!(replay_bundle(&bundle).is_err(), "harmless PoC must fail replay");
        let mut wrong_dialect = bundle_finding(&profile, &report.findings[0], "findings");
        wrong_dialect.dialect = "NoSuchDB".into();
        assert!(replay_bundle(&wrong_dialect).is_err());
    }
}
