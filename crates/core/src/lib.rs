//! SOFT — the pattern-based SQL function bug detector of the paper,
//! reimplemented.
//!
//! The pipeline follows §7.1: **collection** (documentation + test suite →
//! seed function expressions), **pattern-based generation** (the ten
//! boundary-value-generation patterns of §6 applied to the seeds, capped at
//! two nested function expressions per Finding 3), and **bug detection**
//! (execute, watch for crash outcomes, deduplicate by crash signature,
//! restart the target after each crash).
//!
//! Two campaign-steering layers sit on top of the pipeline: [`schedule`]
//! (the epoch-based bandit that reallocates the statement budget across
//! (pattern × seed-category) arms from the deterministic telemetry of prior
//! epochs) and [`repo`] (the persistent seed repository that feeds one
//! campaign's distilled findings — PoCs and boundary literals — into the
//! next, across dialects).
//!
//! # Examples
//!
//! ```no_run
//! use soft_core::campaign::{run_soft, CampaignConfig};
//! use soft_dialects::{DialectId, DialectProfile};
//!
//! let profile = DialectProfile::build(DialectId::Clickhouse);
//! let report = run_soft(&profile, &CampaignConfig::default());
//! println!("{} bugs found", report.findings.len());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod campaign;
pub mod collect;
pub mod extend;
pub mod forensics;
pub mod minimize;
pub mod oracle;
pub mod patterns;
pub mod pool;
pub mod repo;
pub mod report;
pub mod schedule;

pub use campaign::{
    default_workers, run_campaign, run_generator, run_soft, run_soft_parallel,
    run_soft_parallel_live, run_soft_parallel_timed, CampaignConfig, CampaignRun, LivePlane,
    ShardTiming, StatementGenerator,
};
pub use forensics::{bundle_finding, replay_all, replay_bundle, write_campaign_bundles};
pub use oracle::{LogicBug, OracleConfig, OracleKind, OracleOptions};
pub use patterns::{GenCtx, GeneratedCase};
pub use repo::{IngestStats, RepoEntry, RepoStats, SeedRepository};
pub use report::{render_table4, BugFinding, CampaignReport, FindingKind, ShardStats};
pub use schedule::{ArmId, ArmReward, Bandit, ScheduleConfig, ScheduleOptions};
// The telemetry vocabulary, re-exported so campaign callers need not name
// `soft-obs` directly.
pub use soft_obs::{CampaignTelemetry, StageLatency, TelemetryConfig, TelemetryOptions};
