//! §8 extensions: what the paper sketches beyond crash bugs in function
//! arguments.
//!
//! * **Boundary values for other clauses** ("Extending Existing DBMS Testing
//!   Works with SOFT"): [`where_boundary_cases`] pushes the P1.1 pool into
//!   `WHERE` comparisons, exercising filtering the way SOFT exercises
//!   function arguments.
//! * **Correctness bugs** ("Correctness Bugs in SQL Functions"):
//!   [`tlp_check`] implements the Ternary Logic Partitioning oracle the
//!   paper cites (TLP, its reference 50): for any predicate `p`, a query must return the
//!   same multiset of rows as the union of its `WHERE p`, `WHERE NOT p` and
//!   `WHERE p IS NULL` partitions.

use crate::patterns::GeneratedCase;
use crate::pool;
use soft_engine::{Engine, ExecOutcome, PatternId};
use soft_parser::ast::{Expr, SelectBody, Statement};

/// Generates `WHERE`-boundary variants of a seed: each comparison literal in
/// the WHERE clause is replaced by each P1.1 pool value.
pub fn where_boundary_cases(seed: &Statement, cap: usize) -> Vec<GeneratedCase> {
    let mut out = Vec::new();
    let Statement::Select(sel) = seed else { return out };
    let SelectBody::Query(q) = &sel.body else { return out };
    if q.where_clause.is_none() {
        return out;
    }
    for b in pool::boundary_literals() {
        // `*` is not a valid predicate operand.
        if matches!(b, Expr::Star) {
            continue;
        }
        let mut stmt = seed.clone();
        let mut replaced = false;
        soft_parser::visit::visit_exprs_mut(&mut stmt, &mut |e| {
            if replaced {
                return;
            }
            if let Expr::Binary { right, .. } = e {
                if matches!(**right, Expr::Literal(_)) {
                    **right = b.clone();
                    replaced = true;
                }
            }
        });
        if replaced {
            out.push(GeneratedCase { sql: stmt.to_string(), pattern: PatternId::P1_2 });
            if out.len() >= cap {
                break;
            }
        }
    }
    out
}

/// A TLP violation: the partitions did not sum back to the original result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlpViolation {
    /// The original query.
    pub query: String,
    /// The partitioning predicate.
    pub predicate: String,
    /// Row count of the unpartitioned query.
    pub base_rows: usize,
    /// Summed row count of the three partitions.
    pub partitioned_rows: usize,
}

/// Outcome of one TLP check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlpOutcome {
    /// Partitions agree with the base query.
    Consistent,
    /// A logic bug: partitions disagree.
    Violation(TlpViolation),
    /// The base query or a partition errored; no verdict.
    Inconclusive,
}

/// Runs the TLP oracle: compares `SELECT ... FROM t` against the union of
/// its three predicate partitions.
///
/// `base` must be a simple `SELECT ... FROM <table>` without WHERE/GROUP
/// BY/aggregates; `predicate` is any boolean SQL expression over the
/// table's columns.
pub fn tlp_check(engine: &mut Engine, base: &str, predicate: &str) -> TlpOutcome {
    let count = |engine: &mut Engine, sql: &str| -> Option<usize> {
        match engine.execute(sql) {
            ExecOutcome::Rows(rs) => Some(rs.rows.len()),
            _ => None,
        }
    };
    let Some(base_rows) = count(engine, base) else {
        return TlpOutcome::Inconclusive;
    };
    let mut partitioned = 0usize;
    for variant in [
        format!("{base} WHERE {predicate}"),
        format!("{base} WHERE NOT ({predicate})"),
        format!("{base} WHERE ({predicate}) IS NULL"),
    ] {
        match count(engine, &variant) {
            Some(n) => partitioned += n,
            None => return TlpOutcome::Inconclusive,
        }
    }
    if partitioned == base_rows {
        TlpOutcome::Consistent
    } else {
        TlpOutcome::Violation(TlpViolation {
            query: base.to_string(),
            predicate: predicate.to_string(),
            base_rows,
            partitioned_rows: partitioned,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_parser::parse_statement;

    fn engine_with_data() -> Engine {
        let mut e = Engine::with_default_functions(Default::default());
        e.execute("CREATE TABLE t (a INTEGER, b TEXT)");
        e.execute("INSERT INTO t VALUES (1, 'x'), (2, NULL), (NULL, 'y'), (4, 'z')");
        e
    }

    #[test]
    fn tlp_holds_on_the_reference_engine() {
        let mut e = engine_with_data();
        for pred in [
            "a > 2",
            "a = 1",
            "b = 'x'",
            "a + 1 > a",
            "LENGTH(b) > 0",
            "a > 2 AND b IS NOT NULL",
            "a IN (1, 2)",
            "a BETWEEN 1 AND 3",
            "UPPER(b) = 'X'",
        ] {
            match tlp_check(&mut e, "SELECT a, b FROM t", pred) {
                TlpOutcome::Consistent => {}
                other => panic!("{pred}: {other:?}"),
            }
        }
    }

    #[test]
    fn tlp_is_inconclusive_on_errors() {
        let mut e = engine_with_data();
        assert_eq!(
            tlp_check(&mut e, "SELECT * FROM missing", "a > 1"),
            TlpOutcome::Inconclusive
        );
        assert_eq!(
            tlp_check(&mut e, "SELECT a FROM t", "NO_SUCH_FN(a)"),
            TlpOutcome::Inconclusive
        );
    }

    #[test]
    fn where_boundaries_generate_reparseable_cases() {
        let seed = parse_statement("SELECT a FROM t WHERE a > 5").unwrap();
        let cases = where_boundary_cases(&seed, 100);
        assert!(cases.len() >= 20, "{}", cases.len());
        for c in &cases {
            parse_statement(&c.sql).unwrap_or_else(|e| panic!("{}: {e}", c.sql));
            assert!(c.sql.contains("WHERE"));
        }
        // The pool's NULL and 45-digit values appear.
        assert!(cases.iter().any(|c| c.sql.ends_with("WHERE a > NULL")));
        assert!(cases.iter().any(|c| c.sql.contains(&"9".repeat(45))));
    }

    #[test]
    fn where_boundaries_skip_seeds_without_where() {
        let seed = parse_statement("SELECT a FROM t").unwrap();
        assert!(where_boundary_cases(&seed, 10).is_empty());
    }

    #[test]
    fn where_boundary_cases_execute_without_crash() {
        let mut e = engine_with_data();
        let seed = parse_statement("SELECT a FROM t WHERE a > 5").unwrap();
        for case in where_boundary_cases(&seed, 100) {
            let out = e.execute(&case.sql);
            assert!(!out.is_crash(), "{}: {out:?}", case.sql);
        }
    }
}
