//! Function Expression Collection (§7.1 step 1).
//!
//! SOFT "initially acquires initial function expressions by scanning the
//! documentation and regression test suite of the DBMS": here, a dialect
//! profile's synthesised documentation plus its seed corpus. Collection
//! yields (a) preparation statements (DDL/DML to replay before testing),
//! (b) seed statements containing function expressions, and (c) the
//! de-duplicated set of collected function expressions that feed the
//! cross-function patterns (P2.3, P3.2, P3.3).

use soft_dialects::DialectProfile;
use soft_parser::ast::{FunctionExpr, Statement};
use soft_parser::visit;
use std::collections::HashSet;

/// The result of the collection step.
#[derive(Debug, Clone, Default)]
pub struct Collection {
    /// DDL/DML statements the seeds depend on (Finding 4's prerequisites).
    pub preparation: Vec<Statement>,
    /// Statements containing at least one function expression.
    pub seeds: Vec<Statement>,
    /// All distinct collected function expressions.
    pub expressions: Vec<FunctionExpr>,
    /// Names of collected unary-call functions (used as P3.2 wrappers).
    pub wrappers: Vec<String>,
}

/// Runs collection against a dialect profile.
pub fn collect(profile: &DialectProfile) -> Collection {
    let mut out = Collection::default();
    let mut seen_exprs: HashSet<String> = HashSet::new();
    let mut seen_seeds: HashSet<String> = HashSet::new();
    let mut push_seed = |stmt: Statement, out: &mut Collection| {
        let rendered = stmt.to_string();
        if !seen_seeds.insert(rendered) {
            return;
        }
        for fx in visit::collect_function_exprs(&stmt) {
            let key = fx.to_string();
            if seen_exprs.insert(key) {
                if fx.args.len() == 1 {
                    let lname = fx.name.to_ascii_lowercase();
                    if !out.wrappers.contains(&lname) {
                        out.wrappers.push(lname);
                    }
                }
                out.expressions.push(fx);
            }
        }
        out.seeds.push(stmt);
    };
    // Documentation examples become `SELECT <example>` seeds.
    for doc in &profile.documentation {
        if let Ok(stmt) = soft_parser::parse_statement(&format!("SELECT {}", doc.example)) {
            push_seed(stmt, &mut out);
        }
    }
    // Test-suite queries: DDL/DML is preparation, the rest are seeds when
    // they contain function expressions.
    for sql in &profile.seed_corpus {
        let Ok(stmt) = soft_parser::parse_statement(sql) else { continue };
        match &stmt {
            Statement::CreateTable(_) | Statement::Insert(_) | Statement::DropTable { .. } => {
                out.preparation.push(stmt);
            }
            Statement::Select(_) => {
                if visit::count_function_exprs(&stmt) > 0 {
                    push_seed(stmt, &mut out);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_dialects::DialectId;

    #[test]
    fn collection_gathers_docs_and_suite() {
        let profile = DialectProfile::build(DialectId::Mariadb);
        let c = collect(&profile);
        assert!(!c.preparation.is_empty(), "prep statements expected");
        // Every documented function should contribute a seed.
        assert!(c.seeds.len() >= profile.documentation.len() / 2);
        assert!(c.expressions.len() >= 100, "got {}", c.expressions.len());
        assert!(c.wrappers.len() >= 20);
    }

    #[test]
    fn expressions_are_deduplicated() {
        let profile = DialectProfile::build(DialectId::Monetdb);
        let c = collect(&profile);
        let mut keys: Vec<String> = c.expressions.iter().map(|e| e.to_string()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn wrappers_are_unary() {
        let profile = DialectProfile::build(DialectId::Mysql);
        let c = collect(&profile);
        for w in &c.wrappers {
            assert!(profile.registry.resolve(w).is_some(), "{w} not in registry");
        }
    }
}
