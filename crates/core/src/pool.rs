//! Pattern 1.1: the boundary literal pool.
//!
//! §6: *"We construct the boundary values of these literal types by Pattern
//! 1.1. Particularly for integer and decimal values, we enumerate values
//! with different digit lengths"* — merely trying one extreme value is
//! insufficient because different DBMSs cap digit counts differently.

use soft_parser::ast::{Expr, Literal};

/// Digit lengths enumerated for numeric boundary literals.
///
/// Chosen to straddle the common implementation limits: `i32`/`i64` widths,
/// the 31-digit formatting threshold, the 38/40-digit decimal buffers and
/// the 65-digit `DECIMAL` cap.
pub const DIGIT_LENGTHS: [usize; 5] = [1, 5, 10, 20, 45];

/// Builds the P1.1 boundary literal pool.
///
/// # Examples
///
/// ```
/// let pool = soft_core::pool::boundary_literals();
/// let rendered: Vec<String> = pool.iter().map(|e| e.to_string()).collect();
/// assert!(rendered.contains(&"NULL".to_string()));
/// assert!(rendered.contains(&"*".to_string()));
/// assert!(rendered.contains(&"''".to_string()));
/// assert!(rendered.iter().any(|s| s.len() > 40));
/// ```
pub fn boundary_literals() -> Vec<Expr> {
    let mut out = vec![
        Expr::Literal(Literal::Null),
        Expr::Star,
        Expr::string(""),
        Expr::number("0"),
        Expr::number("-0.0"),
    ];
    for len in DIGIT_LENGTHS {
        let nines = "9".repeat(len);
        // ±99...9 with `len` digits.
        out.push(Expr::number(&nines));
        out.push(Expr::number(&format!("-{nines}")));
        // ±0.99...9 with `len` fractional digits.
        out.push(Expr::number(&format!("0.{nines}")));
        out.push(Expr::number(&format!("-0.{nines}")));
    }
    out
}

/// A compact sub-pool for patterns that embed pool values inside other
/// constructions (P3.1 repetition counts).
pub fn repetition_counts() -> Vec<i64> {
    vec![100, 1000, 100_000]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_size_and_shape() {
        let pool = boundary_literals();
        assert_eq!(pool.len(), 5 + 4 * DIGIT_LENGTHS.len());
        // All entries must be valid expressions when printed and reparsed.
        for e in &pool {
            let sql = format!("SELECT f({e})");
            soft_parser::parse_statement(&sql).unwrap_or_else(|err| panic!("{sql}: {err}"));
        }
    }

    #[test]
    fn pool_contains_the_paper_exemplars() {
        let rendered: Vec<String> =
            boundary_literals().iter().map(|e| e.to_string()).collect();
        // The paper's P1.1 examples: ±0.99999, ±99999, '', NULL, *.
        assert!(rendered.contains(&"0.99999".to_string()));
        assert!(rendered.contains(&"-0.99999".to_string()));
        assert!(rendered.contains(&"99999".to_string()));
        assert!(rendered.contains(&"-99999".to_string()));
    }

    #[test]
    fn includes_45_digit_values() {
        let pool = boundary_literals();
        assert!(pool.iter().any(|e| e.to_string() == "9".repeat(45)));
    }
}
