//! Wrong-result (logic-bug) oracles — the detection plane for bugs that do
//! not crash.
//!
//! The crash plane catches any statement whose injected fault fires; these
//! oracles catch the quieter failure mode the paper's §6 calls *wrong
//! results*: the statement completes, but the answer is wrong. Three
//! families run here, all pure functions of `(template engine, statement)`
//! so campaign results stay byte-identical across worker counts:
//!
//! * **Multi-form execution** ([`multi_form_check`]) — executes one
//!   statement through semantically equivalent forms (prepared AST vs. the
//!   string path, and a literal-unfolded variant that rewrites `f(42)` to
//!   `f(42 + 0)`), and flags any divergence in outcome or result. Folding a
//!   literal through an operator flips its provenance, so quirks gated on
//!   [`soft_engine::ProvPred::IsLiteral`] stop firing and betray themselves.
//! * **PQS-style pivot probes** ([`pivot_check`]) — picks a *pivot* row
//!   from the shared seed tables and synthesises a boundary-function
//!   predicate that provably selects it; a result set missing the pivot is
//!   a containment violation (the pivot construction of Rigger & Su's
//!   Pivoted Query Synthesis, adapted to the fixed seed catalog).
//! * **Cross-dialect differential** ([`differential_check`]) — runs the
//!   portable shared queries on the campaign's (armed) engine and on every
//!   *fault-free* peer dialect, flagging result divergences not covered by
//!   the [`KNOWN_DIVERGENCES`] allowlist.
//!
//! Division of labour with the crash plane is strict: if any form, probe,
//! or peer crashes, the oracle returns nothing — the crash pipeline already
//! owns that statement.

use soft_dialects::{seeds, DialectId, DialectProfile};
use soft_engine::{Engine, ExecOutcome, SqlError};
use soft_parser::ast::{BinaryOp, Expr, Literal, Statement};
use soft_parser::visit;

/// Which oracle family raised a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OracleKind {
    /// PQS-style pivot containment probe.
    Pivot,
    /// Multi-form (prepared / string / literal-unfolded) execution.
    MultiForm,
    /// Cross-dialect differential against fault-free peers.
    Differential,
}

impl OracleKind {
    /// Stable label used in reports, journals and forensics bundles.
    pub fn label(&self) -> &'static str {
        match self {
            OracleKind::Pivot => "pivot",
            OracleKind::MultiForm => "multi-form",
            OracleKind::Differential => "differential",
        }
    }

    /// The inverse of [`OracleKind::label`] — forensics bundles round-trip
    /// through it.
    pub fn from_label(label: &str) -> Option<OracleKind> {
        match label {
            "pivot" => Some(OracleKind::Pivot),
            "multi-form" => Some(OracleKind::MultiForm),
            "differential" => Some(OracleKind::Differential),
            _ => None,
        }
    }
}

/// One wrong-result verdict: which oracle fired and the disagreeing
/// expected/actual signatures, both rendered for humans and for the
/// forensics bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicBug {
    /// The oracle family that raised this finding.
    pub oracle: OracleKind,
    /// What the reference form / pivot / peer produced.
    pub expected: String,
    /// What the engine under test produced instead.
    pub actual: String,
}

/// Which oracle families an armed campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOptions {
    /// Run the multi-form execution oracle on every planned statement.
    pub multi_form: bool,
    /// Run the pivot containment probes once per campaign.
    pub pivot: bool,
    /// Run the cross-dialect differential suite once per campaign.
    pub differential: bool,
}

impl Default for OracleOptions {
    fn default() -> OracleOptions {
        OracleOptions { multi_form: true, pivot: true, differential: true }
    }
}

/// Campaign-level oracle switch, mirroring `TelemetryConfig`'s shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OracleConfig {
    /// No wrong-result detection (the crash plane still runs).
    #[default]
    Off,
    /// Wrong-result detection with the given families enabled.
    On(OracleOptions),
}

impl OracleConfig {
    /// All families enabled.
    pub fn on() -> OracleConfig {
        OracleConfig::On(OracleOptions::default())
    }

    /// The options, when enabled.
    pub fn options(&self) -> Option<&OracleOptions> {
        match self {
            OracleConfig::Off => None,
            OracleConfig::On(o) => Some(o),
        }
    }

    /// Whether any oracle runs.
    pub fn is_on(&self) -> bool {
        matches!(self, OracleConfig::On(_))
    }
}

/// A comparable signature of one execution outcome. `None` means the
/// outcome was a crash — the crash plane owns it, the oracles stand down.
fn signature(outcome: &ExecOutcome) -> Option<String> {
    match outcome {
        ExecOutcome::Rows(rs) => {
            let rows: Vec<String> = rs
                .rows
                .iter()
                .map(|row| {
                    row.iter().map(|v| v.render()).collect::<Vec<_>>().join(", ")
                })
                .collect();
            Some(format!("rows: {}", rows.join("; ")))
        }
        ExecOutcome::Ok(_) => Some("ok".to_string()),
        // All resource kills are one class (limits are legitimately
        // form-sensitive: the string path has a length gate the prepared
        // path does not), and all ordinary errors are one class (error
        // *messages* may mention the literal spelling the unfolding
        // changed).
        ExecOutcome::Error(SqlError::ResourceLimit(_)) => Some("resource-limit".to_string()),
        ExecOutcome::Error(_) => Some("error".to_string()),
        ExecOutcome::Crash(_) => None,
    }
}

/// Runs one statement through its equivalent forms and reports the first
/// divergence. `template` is the campaign's prepared template engine (seed
/// tables loaded, no statements from other cases executed); every form runs
/// on a private clone, so the check is free of cross-case state.
///
/// Form A (the reference) executes the prepared AST — the campaign's normal
/// hot path. Form B re-enters through the string path (`Engine::execute`),
/// which re-lexes and re-parses `sql`. Form C, when literal unfolding
/// finds anything to rewrite, executes `f(42 + 0)` in place of `f(42)` —
/// same value, different provenance. Any form crashing returns `None`.
pub fn multi_form_check(template: &Engine, sql: &str, stmt: &Statement) -> Option<LogicBug> {
    let reference = {
        let mut engine = template.clone();
        let prepared = engine.prepare_parsed(stmt.clone());
        engine.execute_prepared(&prepared)
    };
    multi_form_check_with(template, sql, stmt, &reference)
}

/// [`multi_form_check`] with form A's outcome supplied by the caller,
/// skipping one template clone and one prepared execution per check. The
/// campaign's batch demux uses this: a batched statement's outcome *is* the
/// prepared-path outcome, and batchable statements read neither tables nor
/// mutable session state, so the outcome the shard engine produced is
/// exactly what a private template clone would produce — the purity
/// contract [`multi_form_check`] establishes by cloning.
pub fn multi_form_check_with(
    template: &Engine,
    sql: &str,
    stmt: &Statement,
    reference: &ExecOutcome,
) -> Option<LogicBug> {
    let expected = signature(reference)?;

    let string_form = template.clone().execute(sql);
    match signature(&string_form) {
        None => return None,
        Some(actual) if actual != expected => {
            return Some(LogicBug { oracle: OracleKind::MultiForm, expected, actual });
        }
        Some(_) => {}
    }

    if provenance_sensitive(stmt) {
        return None;
    }
    if let Some(unfolded) = unfold_literals(stmt) {
        let mut engine = template.clone();
        let prepared = engine.prepare_parsed(unfolded);
        let outcome = engine.execute_prepared(&prepared);
        match signature(&outcome) {
            None => return None,
            Some(actual) if actual != expected => {
                return Some(LogicBug { oracle: OracleKind::MultiForm, expected, actual });
            }
            Some(_) => {}
        }
    }
    None
}

/// The fault id and credited function for a multi-form finding on `stmt`:
/// `logic-multiform-<function>` for the statement's first function call
/// (the boundary argument under test), `logic-multiform-expr` otherwise.
pub fn multi_form_fault_id(stmt: &Statement) -> (String, Option<String>) {
    match visit::collect_function_exprs(stmt).first() {
        Some(fx) => {
            let name = fx.name.to_ascii_lowercase();
            (format!("logic-multiform-{name}"), Some(name))
        }
        None => ("logic-multiform-expr".to_string(), None),
    }
}

/// Functions whose *documented* semantics depend on argument provenance —
/// MySQL's `COERCIBILITY` reports 4 for a literal and 2 for an expression,
/// by design. Unfolding a literal through an operator legitimately changes
/// their result, so the literal-unfolded form is skipped for statements
/// that call one.
const PROVENANCE_SENSITIVE: &[&str] = &["coercibility"];

/// Whether the statement calls a function the literal-unfolded form would
/// legitimately perturb (see [`PROVENANCE_SENSITIVE`]).
fn provenance_sensitive(stmt: &Statement) -> bool {
    let mut hit = false;
    visit::for_each_function_name(stmt, |name| {
        if PROVENANCE_SENSITIVE.iter().any(|f| name.eq_ignore_ascii_case(f)) {
            hit = true;
        }
    });
    hit
}

/// Rewrites literal arguments of function calls into equivalent operator
/// forms: `42` becomes `42 + 0`, `'x'` becomes `'x' || ''`. Returns `None`
/// when the statement has nothing to unfold. Numbers only unfold when they
/// parse as an `i64` comfortably below the overflow boundary — the corpus
/// deliberately feeds `9e999`-style extremes whose `+ 0` would *legitimately*
/// change the outcome, and a legitimate change is not a bug.
fn unfold_literals(stmt: &Statement) -> Option<Statement> {
    let mut unfolded = stmt.clone();
    let mut changed = false;
    visit::visit_exprs_mut(&mut unfolded, &mut |expr| {
        if let Expr::Function(fx) = expr {
            for arg in &mut fx.args {
                match arg {
                    Expr::Literal(Literal::Number(n))
                        if n.parse::<i64>()
                            .ok()
                            .and_then(i64::checked_abs)
                            .is_some_and(|v| v < i64::MAX / 2) =>
                    {
                        let lit = std::mem::replace(arg, Expr::null());
                        *arg = Expr::Binary {
                            left: Box::new(lit),
                            op: BinaryOp::Add,
                            right: Box::new(Expr::number("0")),
                        };
                        changed = true;
                    }
                    Expr::Literal(Literal::String(_)) => {
                        let lit = std::mem::replace(arg, Expr::null());
                        *arg = Expr::Binary {
                            left: Box::new(lit),
                            op: BinaryOp::Concat,
                            right: Box::new(Expr::string("")),
                        };
                        changed = true;
                    }
                    _ => {}
                }
            }
        }
    });
    changed.then_some(unfolded)
}

/// One pivot probe: a query over a shared seed table whose predicate is
/// built from boundary functions and *must* select the pivot row.
struct PivotProbe {
    /// The seed table the pivot row lives in.
    table: &'static str,
    /// The probe query. Every predicate conjunct provably holds for the
    /// pivot row given the seed data in [`seeds::SHARED_PREP`].
    sql: &'static str,
    /// The pivot row's first column, as [`soft_types::value::Value::render`]
    /// prints it.
    pivot: &'static str,
}

/// The probe set. Pivots are fixed rows of the shared seed tables, so the
/// probes hold on every dialect that can execute them; a dialect missing
/// one of the functions reports an ordinary error and the probe is skipped
/// (capability gap, not a wrong result).
const PIVOT_PROBES: &[PivotProbe] = &[
    PivotProbe {
        table: "t1",
        // Pivot (1, 'alpha', 1.5): LENGTH('alpha') = 5 and ABS(1 - 1) = 0.
        sql: "SELECT a, b, c FROM t1 WHERE LENGTH(b) = 5 AND ABS(a - 1) = 0",
        pivot: "1",
    },
    PivotProbe {
        table: "t2",
        // Pivot ('y', 30): UPPER('y') = 'Y' and ABS(30 - 30) = 0.
        sql: "SELECT k, v FROM t2 WHERE UPPER(k) = 'Y' AND ABS(v - 30) = 0",
        pivot: "y",
    },
    PivotProbe {
        table: "t3",
        // Pivot ('2024-01-15', …): LENGTH = 10, SUBSTR(d, 6, 2) = '01'.
        sql: "SELECT d, j FROM t3 WHERE LENGTH(d) = 10 AND SUBSTR(d, 6, 2) = '01'",
        pivot: "2024-01-15",
    },
];

/// Runs the pivot probes against a clone of the campaign's template engine
/// and reports every probe whose result set omits its pivot row. Returns
/// `(fault id, verdict, probe sql)` triples, in fixed probe order.
pub fn pivot_check(template: &Engine) -> Vec<(String, LogicBug, String)> {
    let mut out = Vec::new();
    for probe in PIVOT_PROBES {
        let mut engine = template.clone();
        let rs = match engine.execute(probe.sql) {
            ExecOutcome::Rows(rs) => rs,
            // Error: the dialect lacks a probe function — a capability
            // gap, not a wrong result. Crash: the crash plane owns it.
            _ => continue,
        };
        let present = rs
            .rows
            .iter()
            .any(|row| row.first().is_some_and(|v| v.render() == probe.pivot));
        if !present {
            let rendered: Vec<String> = rs
                .rows
                .iter()
                .map(|row| {
                    row.iter().map(|v| v.render()).collect::<Vec<_>>().join(", ")
                })
                .collect();
            out.push((
                format!("logic-pivot-{}", probe.table),
                LogicBug {
                    oracle: OracleKind::Pivot,
                    expected: format!(
                        "a row of {} with first column {}",
                        probe.table, probe.pivot
                    ),
                    actual: format!("rows: {}", rendered.join("; ")),
                },
                probe.sql.to_string(),
            ));
        }
    }
    out
}

/// One allowlisted divergence: (dialect under test, peer dialect, index
/// into [`seeds::SHARED_QUERIES`]). Divergences listed here are understood
/// dialect differences, not bugs, and the differential oracle skips them.
pub type KnownDivergence = (DialectId, DialectId, usize);

/// The shipped allowlist. Empty today: the fault-free builds of all seven
/// dialects agree on every shared query both can run (pinned by
/// `tests/differential.rs`), so any divergence the campaign sees is the
/// armed engine's quirk corpus showing through — exactly what the oracle
/// hunts.
pub const KNOWN_DIVERGENCES: &[KnownDivergence] = &[];

/// Cross-dialect differential with the shipped [`KNOWN_DIVERGENCES`].
pub fn differential_check(profile: &DialectProfile) -> Vec<(String, LogicBug, String)> {
    differential_check_with_allowlist(profile, KNOWN_DIVERGENCES)
}

/// Runs every shared query on `profile`'s *armed* engine and on the
/// fault-free build of every peer dialect, reporting each non-allowlisted
/// divergence as `(fault id, verdict, query sql)`. Queries the armed
/// engine crashes on (or either side cannot run) are skipped — the crash
/// plane and the capability matrix own those. Deterministic: peers iterate
/// in [`DialectId::ALL`] order, queries in corpus order.
pub fn differential_check_with_allowlist(
    profile: &DialectProfile,
    allowlist: &[KnownDivergence],
) -> Vec<(String, LogicBug, String)> {
    let mut ours = prepared_engine(profile.engine());
    let mine: Vec<Option<String>> = seeds::SHARED_QUERIES
        .iter()
        .map(|sql| match ours.execute(sql) {
            ExecOutcome::Rows(rs) => signature(&ExecOutcome::Rows(rs)),
            // Only row-producing runs participate: errors are capability
            // gaps and crashes belong to the crash plane.
            _ => None,
        })
        .collect();

    let mut out = Vec::new();
    for peer_id in DialectId::ALL {
        if peer_id == profile.id {
            continue;
        }
        let peer_profile = DialectProfile::build(peer_id);
        let mut peer = prepared_engine(peer_profile.engine_without_faults());
        for (qi, sql) in seeds::SHARED_QUERIES.iter().enumerate() {
            if allowlist.contains(&(profile.id, peer_id, qi)) {
                continue;
            }
            let Some(mine) = mine[qi].as_ref() else { continue };
            let theirs = match peer.execute(sql) {
                ExecOutcome::Rows(rs) => match signature(&ExecOutcome::Rows(rs)) {
                    Some(s) => s,
                    None => continue,
                },
                _ => continue,
            };
            if *mine != theirs {
                out.push((
                    format!("logic-diff-{}-q{qi}", peer_id.key()),
                    LogicBug {
                        oracle: OracleKind::Differential,
                        expected: format!("{}: {theirs}", peer_id.name()),
                        actual: format!("{}: {mine}", profile.id.name()),
                    },
                    sql.to_string(),
                ));
            }
        }
    }
    out
}

/// Replays the shared preparation suite on a fresh engine. The shared prep
/// is crash-free on every dialect (pinned by `tests/differential.rs`), so
/// failures here would be caught by the seed replay long before an oracle
/// runs.
fn prepared_engine(mut engine: Engine) -> Engine {
    for sql in seeds::SHARED_PREP {
        engine.execute(sql);
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_engine::{LogicQuirkSpec, QuirkEffect, Trigger, ValuePred};

    fn profile(id: DialectId) -> DialectProfile {
        DialectProfile::build(id)
    }

    fn template(p: &DialectProfile) -> Engine {
        prepared_engine(p.engine())
    }

    #[test]
    fn oracle_kind_labels_round_trip() {
        for k in [OracleKind::Pivot, OracleKind::MultiForm, OracleKind::Differential] {
            assert_eq!(OracleKind::from_label(k.label()), Some(k));
        }
        assert_eq!(OracleKind::from_label("psychic"), None);
    }

    #[test]
    fn multi_form_flags_the_clickhouse_tostring_quirk() {
        // The shipped ClickHouse quirk makes toString(42) return "42.0",
        // but only when the argument is a bare literal. Unfolding 42 into
        // 42 + 0 keeps the value and flips the provenance, so form C
        // disagrees with the reference — the exact multi-form signal.
        let p = profile(DialectId::Clickhouse);
        let t = template(&p);
        let sql = "SELECT toString(42)";
        let stmt = soft_parser::parse_statement(sql).expect("parse");
        let bug = multi_form_check(&t, sql, &stmt).expect("quirk must be flagged");
        assert_eq!(bug.oracle, OracleKind::MultiForm);
        assert!(bug.expected.contains("42.0"), "{bug:?}");
        assert!(bug.actual.contains("42"), "{bug:?}");
        assert_eq!(
            multi_form_fault_id(&stmt),
            ("logic-multiform-tostring".to_string(), Some("tostring".to_string()))
        );
    }

    #[test]
    fn multi_form_is_quiet_on_honest_statements() {
        let p = profile(DialectId::Postgres);
        let t = template(&p);
        for sql in [
            "SELECT UPPER(b), LENGTH(b) FROM t1",
            "SELECT ABS(-17), LENGTH('soft')",
            "SELECT SUBSTR('boundary', 1, 5)",
            "SELECT 1 + 1",
        ] {
            let stmt = soft_parser::parse_statement(sql).expect("parse");
            assert_eq!(multi_form_check(&t, sql, &stmt), None, "false positive on {sql}");
        }
    }

    #[test]
    fn provenance_sensitive_functions_are_not_unfolded() {
        // COERCIBILITY legitimately reports 4 for a literal and 2 for an
        // expression — the unfolded form would diverge by design, so the
        // oracle must stand down instead of raising a false positive.
        let p = profile(DialectId::Mysql);
        let t = template(&p);
        let sql = "SELECT COERCIBILITY('x')";
        let stmt = soft_parser::parse_statement(sql).expect("parse");
        assert_eq!(multi_form_check(&t, sql, &stmt), None);
    }

    #[test]
    fn unfolding_skips_overflow_prone_numbers() {
        let stmt =
            soft_parser::parse_statement("SELECT ABS(9223372036854775807), LENGTH('x')")
                .expect("parse");
        let unfolded = unfold_literals(&stmt).expect("the string still unfolds");
        let rendered = unfolded.to_string();
        assert!(rendered.contains("9223372036854775807"), "{rendered}");
        assert!(!rendered.contains("9223372036854775807 + 0"), "{rendered}");
        assert!(rendered.contains("'x' || ''"), "{rendered}");
    }

    #[test]
    fn pivot_probes_hold_on_every_dialect() {
        for id in DialectId::ALL {
            let p = profile(id);
            let hits = pivot_check(&template(&p));
            assert!(hits.is_empty(), "{id}: {hits:?}");
        }
    }

    #[test]
    fn pivot_catches_a_planted_length_quirk() {
        // Plant a quirk that makes LENGTH of any ≥5-char argument return
        // NULL: the t1 probe's predicate no longer selects the pivot row
        // (1, 'alpha', 1.5), so the oracle must flag it.
        let mut p = profile(DialectId::Postgres);
        p.logic_quirks.push(LogicQuirkSpec {
            id: "planted-length-null".to_string(),
            function: "length".to_string(),
            trigger: Trigger::Arg { index: Some(0), pred: ValuePred::LenAtLeast(5) },
            effect: QuirkEffect::NullResult,
            description: "planted: LENGTH of long text yields NULL".to_string(),
        });
        let hits = pivot_check(&template(&p));
        assert!(
            hits.iter().any(|(id, bug, _)| id == "logic-pivot-t1"
                && bug.oracle == OracleKind::Pivot
                && bug.expected.contains("first column 1")),
            "{hits:?}"
        );
    }

    #[test]
    fn differential_is_quiet_on_a_stock_profile() {
        let p = profile(DialectId::Duckdb);
        assert_eq!(differential_check(&p), vec![]);
    }

    #[test]
    fn differential_catches_a_planted_upper_quirk_and_honours_the_allowlist() {
        // Plant a wrong-result quirk on UPPER (exercised by shared query
        // q0); every fault-free peer disagrees with the armed engine.
        let mut p = profile(DialectId::Mysql);
        p.logic_quirks.push(LogicQuirkSpec {
            id: "planted-upper-suffix".to_string(),
            function: "upper".to_string(),
            trigger: Trigger::Always,
            effect: QuirkEffect::TextSuffix("!".to_string()),
            description: "planted: UPPER appends '!'".to_string(),
        });
        let hits = differential_check(&p);
        assert!(!hits.is_empty());
        assert!(
            hits.iter().all(|(id, bug, sql)| {
                id.ends_with("-q0")
                    && bug.oracle == OracleKind::Differential
                    && sql.contains("UPPER")
            }),
            "{hits:?}"
        );

        // Allowlisting the (dialect, peer, query) triples silences it.
        let allow: Vec<KnownDivergence> = DialectId::ALL
            .into_iter()
            .filter(|&peer| peer != p.id)
            .map(|peer| (p.id, peer, 0))
            .collect();
        assert_eq!(differential_check_with_allowlist(&p, &allow), vec![]);
    }
}
