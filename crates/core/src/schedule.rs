//! Feedback-driven budget scheduling: an epoch-based UCB bandit over
//! (pattern × seed-function-category) arms.
//!
//! The paper's yield tables show boundary-argument productivity is wildly
//! uneven across patterns and function categories, yet the static planner
//! spends budget round-robin. This module closes the loop the way SQLaser's
//! clause-guided scheduling and BugForge's repository-driven testing do
//! (PAPERS.md): split the statement budget into fixed epochs, score each
//! arm by its crash/logic/unique-bug yield in the epochs executed so far,
//! and reallocate the next epoch's budget toward productive arms — UCB-style
//! exploration plus a floor so no arm ever starves.
//!
//! # Determinism
//!
//! The bandit never sees a clock, a worker id, or engine-internal coverage
//! counters. Its only inputs are the deterministic merged statement events
//! of prior epochs (sorted by planned global index), so the resulting
//! allocation — and therefore the entire statement stream — is a pure
//! function of (seed, config). The campaign runner executes each epoch with
//! the same plan-then-execute shard machinery as a static campaign, which
//! is what keeps reports byte-identical at any worker count with the
//! scheduler armed.
//!
//! Rewards are intentionally *event-derived* rather than coverage-derived:
//! per-statement engine coverage deltas are unobservable under batch
//! execution (a batch evaluates a whole shape group at once), so scoring on
//! them would make scheduling depend on the batch knob. Events are identical
//! under batch, scalar, and any telemetry configuration.

use soft_engine::PatternId;
use soft_types::category::FunctionCategory;

/// The campaign's scheduling knob.
///
/// `Off` (the default) keeps the static round-robin planner: the whole
/// budget is planned in one pass, exactly as before the scheduler existed.
#[derive(Debug, Clone, Default)]
pub enum ScheduleConfig {
    /// Static round-robin planning (the default).
    #[default]
    Off,
    /// Feedback-driven epoch scheduling.
    On(ScheduleOptions),
}

impl ScheduleConfig {
    /// Adaptive scheduling with default options.
    pub fn on() -> ScheduleConfig {
        ScheduleConfig::On(ScheduleOptions::default())
    }

    /// Adaptive scheduling with a specific epoch count.
    pub fn with_epochs(epochs: usize) -> ScheduleConfig {
        ScheduleConfig::On(ScheduleOptions { epochs, ..ScheduleOptions::default() })
    }

    /// The options, when scheduling is on.
    pub fn options(&self) -> Option<&ScheduleOptions> {
        match self {
            ScheduleConfig::Off => None,
            ScheduleConfig::On(opts) => Some(opts),
        }
    }

    /// True when adaptive scheduling is enabled.
    pub fn is_on(&self) -> bool {
        self.options().is_some()
    }
}

/// Options for an adaptively scheduled campaign.
///
/// All tuning knobs are scaled integers (thousandths) so configurations are
/// `Eq`-comparable and journal-stable; the bandit converts them to floats
/// internally.
#[derive(Debug, Clone)]
pub struct ScheduleOptions {
    /// Number of epochs the statement budget is split into. Epoch 0 is
    /// always uniform (there is no telemetry to learn from yet).
    pub epochs: usize,
    /// UCB exploration constant `c`, in thousandths (500 ⇒ c = 0.5).
    pub exploration_milli: u64,
    /// Budget fraction distributed uniformly across live arms before
    /// score-proportional allocation, in thousandths (250 ⇒ every live arm
    /// is guaranteed at least 25% of its equal share — the no-starvation
    /// floor).
    pub floor_milli: u64,
    /// Per-epoch decay applied to accumulated rewards and pull counts, in
    /// thousandths (500 ⇒ an epoch-old observation weighs half). Biases
    /// scores toward *recent* yield.
    pub decay_milli: u64,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            epochs: 8,
            exploration_milli: 500,
            floor_milli: 250,
            decay_milli: 500,
        }
    }
}

/// A scheduling arm: one generation pattern crossed with the function
/// category of the seed the generated statement mutates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArmId {
    /// The generation pattern.
    pub pattern: PatternId,
    /// The seed root function's category.
    pub category: FunctionCategory,
}

/// One arm's observed outcomes over one epoch, folded from the epoch's
/// merged statement events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArmReward {
    /// Statements executed for the arm.
    pub executed: usize,
    /// Crash outcomes.
    pub crashes: usize,
    /// Wrong-result (logic-bug) outcomes.
    pub logic_bugs: usize,
    /// Error outcomes — weak evidence the arm reaches argument validation.
    pub errors: usize,
    /// First-ever-seen fault ids (the quantity campaigns maximise).
    pub unique_bugs: usize,
    /// First-ever-seen target functions — an event-derived stand-in for
    /// coverage growth that stays observable under batch execution.
    pub new_functions: usize,
}

impl ArmReward {
    /// The reward value in thousandths: unique bugs dominate, repeat
    /// crashes/logic hits and newly reached functions matter, errors are a
    /// weak tiebreak.
    fn value_milli(&self) -> f64 {
        1000.0 * self.unique_bugs as f64
            + 50.0 * (self.crashes + self.logic_bugs) as f64
            + 20.0 * self.new_functions as f64
            + 1.0 * self.errors as f64
    }
}

/// The UCB bandit state across epochs.
#[derive(Debug, Clone)]
pub struct Bandit {
    opts: ScheduleOptions,
    /// Decayed accumulated reward per arm, in thousandths.
    reward_milli: Vec<f64>,
    /// Decayed accumulated statement count per arm.
    pulls: Vec<f64>,
    /// Number of epochs observed.
    observed_epochs: usize,
}

impl Bandit {
    /// A fresh bandit over `arms` arms.
    pub fn new(arms: usize, opts: ScheduleOptions) -> Bandit {
        Bandit {
            opts,
            reward_milli: vec![0.0; arms],
            pulls: vec![0.0; arms],
            observed_epochs: 0,
        }
    }

    /// Folds one epoch's per-arm rewards in, decaying older observations
    /// first. `rewards` must be aligned with the arm order given to
    /// [`Bandit::new`].
    pub fn observe(&mut self, rewards: &[ArmReward]) {
        assert_eq!(rewards.len(), self.reward_milli.len(), "arm count mismatch");
        let decay = self.opts.decay_milli as f64 / 1000.0;
        for a in 0..rewards.len() {
            self.reward_milli[a] *= decay;
            self.pulls[a] *= decay;
            self.reward_milli[a] += rewards[a].value_milli();
            self.pulls[a] += rewards[a].executed as f64;
        }
        self.observed_epochs += 1;
    }

    /// UCB score per arm: decayed mean reward per statement plus the
    /// exploration bonus `c·sqrt(ln N / n)`. Zero for every arm before the
    /// first observation (epoch 0 is uniform by construction).
    fn scores(&self) -> Vec<f64> {
        if self.observed_epochs == 0 {
            return vec![0.0; self.pulls.len()];
        }
        let total: f64 = self.pulls.iter().sum::<f64>().max(1.0);
        let c = self.opts.exploration_milli as f64 / 1000.0;
        self.pulls
            .iter()
            .zip(&self.reward_milli)
            .map(|(&n, &r)| {
                let n = n.max(1.0);
                r / n / 1000.0 + c * (total.ln().max(0.0) / n).sqrt()
            })
            .collect()
    }

    /// The scores as scaled integers for the journal's epoch records.
    pub fn scores_milli(&self) -> Vec<i64> {
        self.scores().iter().map(|s| (s * 1000.0).round() as i64).collect()
    }

    /// Splits `budget` statements across arms: a uniform floor over every
    /// live arm (one with `available > 0`), then score-proportional
    /// largest-remainder apportionment of the rest, capped by availability.
    /// The result sums to `min(budget, Σ available)`.
    pub fn allocate(&self, budget: usize, available: &[usize]) -> Vec<usize> {
        assert_eq!(available.len(), self.pulls.len(), "arm count mismatch");
        let mut alloc = vec![0usize; available.len()];
        let live = available.iter().filter(|&&n| n > 0).count();
        if live == 0 || budget == 0 {
            return alloc;
        }
        let floor = budget * self.opts.floor_milli as usize / 1000 / live;
        let mut spent = 0;
        for (a, &avail) in available.iter().enumerate() {
            if avail > 0 {
                alloc[a] = floor.min(avail);
                spent += alloc[a];
            }
        }
        let scores = self.scores();
        let weights: Vec<f64> = scores.iter().map(|s| s.max(0.0)).collect();
        let caps: Vec<usize> =
            available.iter().zip(&alloc).map(|(&av, &al)| av - al).collect();
        let rest = apportion(budget.saturating_sub(spent), &weights, &caps);
        for (a, r) in rest.into_iter().enumerate() {
            alloc[a] += r;
        }
        alloc
    }
}

/// Deterministic capped largest-remainder apportionment: splits `total`
/// across arms proportionally to `weights`, never exceeding `caps`,
/// redistributing capped-off share to the arms still open. All-zero weights
/// degrade to uniform. Ties in remainders break by arm index.
fn apportion(total: usize, weights: &[f64], caps: &[usize]) -> Vec<usize> {
    let mut alloc = vec![0usize; weights.len()];
    let mut remaining = total.min(caps.iter().sum());
    while remaining > 0 {
        let open: Vec<usize> =
            (0..caps.len()).filter(|&a| alloc[a] < caps[a]).collect();
        if open.is_empty() {
            break;
        }
        let sum: f64 = open.iter().map(|&a| weights[a]).sum();
        let w = |a: usize| if sum > 0.0 { weights[a] / sum } else { 1.0 / open.len() as f64 };

        let mut granted = 0usize;
        let mut fractions: Vec<(usize, f64)> = Vec::with_capacity(open.len());
        for &a in &open {
            let ideal = remaining as f64 * w(a);
            let base = (ideal.floor() as usize).min(caps[a] - alloc[a]);
            alloc[a] += base;
            granted += base;
            if alloc[a] < caps[a] {
                fractions.push((a, ideal - ideal.floor()));
            }
        }
        // Leftover from flooring goes to the largest remainders, arm index
        // breaking ties.
        fractions.sort_by(|(ia, fa), (ib, fb)| {
            fb.partial_cmp(fa).unwrap_or(std::cmp::Ordering::Equal).then(ia.cmp(ib))
        });
        let mut leftover = remaining - granted.min(remaining);
        for (a, _) in fractions {
            if leftover == 0 {
                break;
            }
            if alloc[a] < caps[a] {
                alloc[a] += 1;
                granted += 1;
                leftover -= 1;
            }
        }
        let progressed = granted.min(remaining);
        remaining -= progressed;
        if progressed == 0 {
            // Every open arm rounded to zero (tiny remainder, many arms):
            // hand out one statement each in arm order.
            for a in open {
                if remaining == 0 {
                    break;
                }
                if alloc[a] < caps[a] {
                    alloc[a] += 1;
                    remaining -= 1;
                }
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reward(executed: usize, unique: usize) -> ArmReward {
        ArmReward { executed, unique_bugs: unique, ..ArmReward::default() }
    }

    #[test]
    fn epoch_zero_is_uniform() {
        let b = Bandit::new(4, ScheduleOptions::default());
        let alloc = b.allocate(100, &[100, 100, 100, 100]);
        assert_eq!(alloc, vec![25, 25, 25, 25]);
        assert!(b.scores_milli().iter().all(|&s| s == 0));
    }

    #[test]
    fn productive_arms_attract_budget_but_no_live_arm_starves() {
        let mut b = Bandit::new(3, ScheduleOptions::default());
        b.observe(&[reward(100, 8), reward(100, 0), reward(100, 0)]);
        let alloc = b.allocate(1000, &[1000, 1000, 1000]);
        assert_eq!(alloc.iter().sum::<usize>(), 1000);
        assert!(alloc[0] > alloc[1], "winner did not attract budget: {alloc:?}");
        // floor_milli = 250 over 3 live arms ⇒ every arm gets ≥ 83.
        let floor = 1000 * 250 / 1000 / 3;
        assert!(alloc.iter().all(|&a| a >= floor), "an arm starved: {alloc:?}");
    }

    #[test]
    fn allocation_respects_availability_and_spills() {
        let mut b = Bandit::new(3, ScheduleOptions::default());
        b.observe(&[reward(100, 8), reward(100, 0), reward(100, 0)]);
        let alloc = b.allocate(1000, &[50, 1000, 0]);
        assert_eq!(alloc[0], 50, "cap exceeded: {alloc:?}");
        assert_eq!(alloc[2], 0, "dry arm allocated: {alloc:?}");
        assert_eq!(alloc.iter().sum::<usize>(), 1000, "spill lost budget: {alloc:?}");
    }

    #[test]
    fn allocation_is_deterministic() {
        let mut b = Bandit::new(5, ScheduleOptions::default());
        b.observe(&[reward(50, 1), reward(50, 1), reward(50, 0), reward(50, 2), reward(50, 0)]);
        let avail = [40, 500, 500, 500, 3];
        assert_eq!(b.allocate(777, &avail), b.allocate(777, &avail));
        assert_eq!(b.scores_milli(), b.scores_milli());
    }

    #[test]
    fn decay_prefers_recent_yield() {
        let mut recent = Bandit::new(2, ScheduleOptions::default());
        // Arm 0 was productive long ago; arm 1 is productive now.
        recent.observe(&[reward(100, 5), reward(100, 0)]);
        recent.observe(&[reward(100, 0), reward(100, 0)]);
        recent.observe(&[reward(100, 0), reward(100, 4)]);
        let scores = recent.scores_milli();
        assert!(scores[1] > scores[0], "decay did not bias to recent: {scores:?}");
    }

    #[test]
    fn apportion_handles_zero_weights_and_tiny_totals() {
        assert_eq!(apportion(3, &[0.0, 0.0], &[10, 10]), vec![2, 1]);
        assert_eq!(apportion(0, &[1.0], &[10]), vec![0]);
        assert_eq!(apportion(10, &[1.0, 1.0], &[2, 3]), vec![2, 3]);
    }

    #[test]
    fn config_knob_defaults_off() {
        assert!(!ScheduleConfig::default().is_on());
        assert!(ScheduleConfig::on().is_on());
        assert_eq!(ScheduleConfig::with_epochs(4).options().expect("on").epochs, 4);
    }
}
