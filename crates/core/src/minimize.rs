//! PoC minimisation: shrink a crashing statement while preserving the crash
//! signature.
//!
//! The paper's harness "logs the corresponding SQL statements for bug
//! reporting" (§7.1); in practice reported PoCs are minimised first (the
//! listings in §7.4 are all one-liners). This reducer applies
//! crash-preserving simplifications until a fixpoint:
//!
//! 1. drop statement clauses (ORDER BY, LIMIT, WHERE, projections),
//! 2. replace function arguments with simpler literals,
//! 3. unwrap nested function calls and casts,
//! 4. shorten long string literals and digit runs.
//!
//! Every accepted reduction is validated twice: once on the mutated AST
//! (the fast path) and once on its *rendering*, re-entered through the
//! string path. The minimised PoC is shipped as text — `repro replay`
//! re-parses it — so a candidate whose rendering drifts from its AST
//! (however the renderer evolves) must not be accepted on AST evidence
//! alone.

use crate::oracle::{self, LogicBug};
use soft_engine::{Engine, ExecOutcome};
use soft_parser::ast::{Expr, Literal, SelectItem, Statement};
use soft_parser::visit;

/// Returns the fault id the statement crashes with, if any.
fn crash_id(engine: &mut Engine, sql: &str) -> Option<String> {
    match engine.execute(sql) {
        ExecOutcome::Crash(c) => {
            engine.reset_database();
            Some(c.fault_id)
        }
        _ => None,
    }
}

/// Returns the fault id an already-parsed candidate crashes with, if any —
/// the reduction loop's hot path, which executes the AST directly and never
/// touches the lexer. Safe to skip the engine's statement-length gate: every
/// candidate is strictly shorter than the (gate-passing) PoC it shrinks.
fn crash_id_parsed(engine: &mut Engine, stmt: &Statement) -> Option<String> {
    let prepared = engine.prepare_parsed(stmt.clone());
    match engine.execute_prepared(&prepared) {
        ExecOutcome::Crash(c) => Some(c.fault_id),
        _ => None,
    }
}

/// Minimises `poc` against a fresh-engine factory, preserving its fault id.
///
/// `make_engine` must produce an engine with any prerequisite state already
/// loaded (the reducer resets/rebuilds via the factory between attempts).
///
/// # Examples
///
/// ```
/// use soft_dialects::{DialectId, DialectProfile};
/// let profile = DialectProfile::build(DialectId::Postgres);
/// let witness = profile.faults[0].witness.clone();
/// let minimized = soft_core::minimize::minimize(&witness, || profile.engine());
/// assert!(minimized.len() <= witness.len());
/// ```
pub fn minimize(poc: &str, mut make_engine: impl FnMut() -> Engine) -> String {
    let Ok(stmt) = soft_parser::parse_statement(poc) else {
        return poc.to_string();
    };
    let mut engine = make_engine();
    let Some(target) = crash_id(&mut engine, poc) else {
        return poc.to_string();
    };
    let mut best = stmt;
    let mut best_len = best.to_string().len();
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 8 {
        changed = false;
        rounds += 1;
        for candidate in simplifications(&best) {
            let rendered = candidate.to_string();
            if rendered.len() >= best_len {
                continue;
            }
            // Fast path first: execute the mutated AST directly. Only if
            // the AST still crashes right do we pay the render → re-lex
            // round trip that proves the *shipped text* crashes right too.
            let mut engine = make_engine();
            if crash_id_parsed(&mut engine, &candidate).as_deref() != Some(&target) {
                continue;
            }
            let mut engine = make_engine();
            if crash_id(&mut engine, &rendered).as_deref() == Some(&target) {
                best_len = rendered.len();
                best = candidate;
                changed = true;
            }
        }
    }
    best.to_string()
}

/// Minimises a wrong-result PoC flagged by the multi-form oracle,
/// preserving the oracle's verdict: a reduction is accepted only while
/// [`oracle::multi_form_check`], run on the candidate's *rendering*
/// re-parsed through the string path, still reports a divergence. Inputs
/// the oracle does not currently flag come back unchanged.
///
/// `make_engine` must produce the campaign's template engine (seed state
/// loaded); the oracle clones it per form, so one template serves the whole
/// reduction.
pub fn minimize_logic(poc: &str, mut make_engine: impl FnMut() -> Engine) -> String {
    let Ok(stmt) = soft_parser::parse_statement(poc) else {
        return poc.to_string();
    };
    let template = make_engine();
    let flags = |sql: &str, stmt: &Statement| -> Option<LogicBug> {
        oracle::multi_form_check(&template, sql, stmt)
    };
    if flags(poc, &stmt).is_none() {
        return poc.to_string();
    }
    let mut best = stmt;
    let mut best_len = best.to_string().len();
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 8 {
        changed = false;
        rounds += 1;
        for candidate in simplifications(&best) {
            let rendered = candidate.to_string();
            if rendered.len() >= best_len {
                continue;
            }
            // Judge the rendering re-parsed through the string path — the
            // same text `repro replay` will feed the oracle.
            let Ok(reparsed) = soft_parser::parse_statement(&rendered) else {
                continue;
            };
            if flags(&rendered, &reparsed).is_some() {
                best_len = rendered.len();
                best = candidate;
                changed = true;
            }
        }
    }
    best.to_string()
}

/// One-step syntactic simplifications of a statement.
fn simplifications(stmt: &Statement) -> Vec<Statement> {
    let mut out = Vec::new();
    // Clause dropping.
    if let Statement::Select(sel) = stmt {
        if !sel.order_by.is_empty() || sel.limit.is_some() {
            let mut s = sel.clone();
            s.order_by.clear();
            s.limit = None;
            out.push(Statement::Select(s));
        }
        if let soft_parser::ast::SelectBody::Query(q) = &sel.body {
            if q.where_clause.is_some() || q.having.is_some() || !q.group_by.is_empty() {
                let mut s = sel.clone();
                if let soft_parser::ast::SelectBody::Query(q) = &mut s.body {
                    q.where_clause = None;
                    q.having = None;
                    q.group_by.clear();
                }
                out.push(Statement::Select(s));
            }
            if q.items.len() > 1 {
                for keep in 0..q.items.len() {
                    if matches!(q.items[keep], SelectItem::Wildcard) {
                        continue;
                    }
                    let mut s = sel.clone();
                    if let soft_parser::ast::SelectBody::Query(q2) = &mut s.body {
                        let item = q2.items[keep].clone();
                        q2.items = vec![item];
                    }
                    out.push(Statement::Select(s));
                }
            }
        }
    }
    // Expression-level simplifications, one site at a time.
    let n_funcs = visit::count_function_exprs(stmt);
    for fi in 0..n_funcs {
        // Unwrap: replace f(...) by its first argument.
        let mut s = stmt.clone();
        let mut unwrapped = None;
        visit::replace_function_expr(&mut s, fi, |orig| {
            unwrapped = orig.args.first().cloned();
            match &unwrapped {
                Some(a) => a.clone(),
                None => Expr::Function(orig.clone()),
            }
        });
        if unwrapped.is_some() {
            out.push(s);
        }
        // Argument simplification.
        let arity = {
            let mut a = 0;
            let mut seen = 0;
            visit::visit_exprs(stmt, &mut |e| {
                if let Expr::Function(fx) = e {
                    if seen == fi {
                        a = fx.args.len();
                    }
                    seen += 1;
                }
            });
            a
        };
        for ai in 0..arity {
            for replacement in [Expr::number("1"), Expr::string("a"), Expr::null()] {
                let mut s = stmt.clone();
                let mut did = false;
                visit::replace_function_expr(&mut s, fi, |orig| {
                    let mut f = orig.clone();
                    if ai < f.args.len() && f.args[ai] != replacement {
                        f.args[ai] = replacement.clone();
                        did = true;
                    }
                    Expr::Function(f)
                });
                if did {
                    out.push(s);
                }
            }
            // Shorten string/number literals in place.
            let mut s = stmt.clone();
            let mut did = false;
            visit::replace_function_expr(&mut s, fi, |orig| {
                let mut f = orig.clone();
                if let Some(arg) = f.args.get_mut(ai) {
                    match arg {
                        Expr::Literal(Literal::String(v)) if v.len() > 8 => {
                            let half = v.chars().take(v.chars().count() / 2).collect::<String>();
                            *arg = Expr::string(&half);
                            did = true;
                        }
                        Expr::Literal(Literal::Number(v)) if v.len() > 8 => {
                            let half = v[..v.len() / 2].to_string();
                            if half.parse::<f64>().is_ok() {
                                *arg = Expr::number(&half);
                                did = true;
                            }
                        }
                        _ => {}
                    }
                }
                Expr::Function(f)
            });
            if did {
                out.push(s);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_dialects::{DialectId, DialectProfile};

    #[test]
    fn minimized_pocs_still_crash_with_the_same_fault() {
        let profile = DialectProfile::build(DialectId::Clickhouse);
        for fault in &profile.faults {
            let minimized = minimize(&fault.witness, || profile.engine());
            let mut engine = profile.engine();
            match engine.execute(&minimized) {
                ExecOutcome::Crash(c) => assert_eq!(
                    c.fault_id, fault.spec.id,
                    "minimised `{minimized}` drifted to another fault"
                ),
                other => panic!("minimised `{minimized}` no longer crashes: {other:?}"),
            }
            assert!(minimized.len() <= fault.witness.len());
        }
    }

    #[test]
    fn minimization_drops_irrelevant_clauses() {
        // Build an inflated PoC around a known witness and check the
        // reducer strips the noise.
        let profile = DialectProfile::build(DialectId::Postgres);
        let witness = &profile.faults[0].witness;
        let inner = witness.strip_prefix("SELECT ").expect("witness is a SELECT");
        let inflated = format!("SELECT {inner}, 'decoy', 12345 LIMIT 99");
        let minimized = minimize(&inflated, || profile.engine());
        assert!(!minimized.contains("decoy"), "{minimized}");
        assert!(!minimized.contains("LIMIT"), "{minimized}");
        assert!(minimized.len() < inflated.len());
    }

    #[test]
    fn logic_pocs_minimize_while_the_oracle_still_fires() {
        // toString(42) trips the shipped ClickHouse provenance quirk; the
        // reducer must strip the noise but never accept a candidate the
        // multi-form oracle stops flagging (toString(1), bare 42, …).
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let inflated = "SELECT toString(42), 'decoy', 12345 LIMIT 7";
        let minimized = minimize_logic(inflated, || profile.engine());
        assert!(!minimized.contains("decoy"), "{minimized}");
        assert!(!minimized.contains("LIMIT"), "{minimized}");
        assert!(minimized.contains("toString(42)"), "{minimized}");
        let stmt = soft_parser::parse_statement(&minimized).expect("parse");
        assert!(
            oracle::multi_form_check(&profile.engine(), &minimized, &stmt).is_some(),
            "minimised `{minimized}` no longer trips the oracle"
        );
    }

    #[test]
    fn unflagged_input_is_returned_unchanged_by_the_logic_reducer() {
        let profile = DialectProfile::build(DialectId::Postgres);
        let sql = "SELECT UPPER('abc')";
        assert_eq!(minimize_logic(sql, || profile.engine()), sql);
    }

    #[test]
    fn non_crashing_input_is_returned_unchanged() {
        let profile = DialectProfile::build(DialectId::Mysql);
        let sql = "SELECT UPPER('abc')";
        assert_eq!(minimize(sql, || profile.engine()), sql);
        let garbage = "not sql at all";
        assert_eq!(minimize(garbage, || profile.engine()), garbage);
    }
}
