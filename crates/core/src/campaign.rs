//! The SOFT campaign runner (§7.1 step 3, "SQL Function Bug Detection").
//!
//! The runner replays a target's preparation statements, executes the
//! collected seeds, then streams pattern-generated statements into the
//! engine under a statement budget — the reproduction's deterministic
//! substitute for the paper's wall-clock budgets. Crashes are deduplicated
//! by fault id; after each crash the database is "restarted"
//! ([`soft_engine::Engine::reset_database`]) and preparation replayed, the
//! way the paper's harness restarts its DBMS containers.

use crate::collect;
use crate::patterns::{self, GenCtx, GeneratedCase};
use crate::report::{BugFinding, CampaignReport};
use soft_dialects::DialectProfile;
use soft_engine::{Engine, ExecOutcome, PatternId, SqlError};
use std::collections::HashSet;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Statement budget (the 24-hour analogue).
    pub max_statements: usize,
    /// Cases generated per (pattern, seed) pair.
    pub per_seed_cap: usize,
    /// Restrict generation to these patterns (None = all ten) — the
    /// ablation knob.
    pub patterns: Option<Vec<PatternId>>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { max_statements: 200_000, per_seed_cap: 64, patterns: None }
    }
}

/// The pattern application order; interleaved round-robin at execution.
/// Must list all ten patterns — the default campaign claims to apply every
/// pattern, and `PatternId::ALL`-based regression tests hold it to that.
const PATTERN_ORDER: [PatternId; 10] = [
    PatternId::P1_1,
    PatternId::P1_2,
    PatternId::P1_3,
    PatternId::P1_4,
    PatternId::P2_1,
    PatternId::P2_2,
    PatternId::P2_3,
    PatternId::P3_1,
    PatternId::P3_2,
    PatternId::P3_3,
];

/// Runs a full SOFT campaign against one dialect profile.
pub fn run_soft(profile: &DialectProfile, config: &CampaignConfig) -> CampaignReport {
    let collection = collect::collect(profile);
    let ctx = GenCtx::new(&collection);
    let mut engine = profile.engine();
    let mut statements = 0usize;
    let mut false_positives = 0usize;
    let mut errors = 0usize;
    let mut found: HashSet<String> = HashSet::new();
    let mut findings: Vec<BugFinding> = Vec::new();

    let prep: Vec<String> = collection.preparation.iter().map(|s| s.to_string()).collect();
    let replay_prep = |engine: &mut Engine| {
        for sql in &prep {
            let _ = engine.execute(sql);
        }
    };
    replay_prep(&mut engine);

    // Phase 1: execute the seeds themselves (they should be crash-free, but
    // they count toward the budget and they prime coverage).
    let run_stmt = |engine: &mut Engine,
                        sql: &str,
                        pattern: Option<PatternId>,
                        statements: &mut usize,
                        false_positives: &mut usize,
                        errors: &mut usize,
                        findings: &mut Vec<BugFinding>,
                        found: &mut HashSet<String>| {
        *statements += 1;
        match engine.execute(sql) {
            ExecOutcome::Crash(c) => {
                if found.insert(c.fault_id.clone()) {
                    // Look up the corpus entry for ground-truth metadata.
                    let spec = profile
                        .faults
                        .iter()
                        .find(|f| f.spec.id == c.fault_id)
                        .map(|f| &f.spec);
                    findings.push(BugFinding {
                        fault_id: c.fault_id.clone(),
                        dialect: profile.id,
                        kind: c.kind,
                        stage: c.stage,
                        category: spec
                            .map(|s| s.category)
                            .unwrap_or(soft_types::category::FunctionCategory::System),
                        credited_pattern: spec.map(|s| s.pattern).unwrap_or(PatternId::P1_2),
                        found_by_pattern: pattern.unwrap_or(PatternId::P1_2),
                        function: c.function.clone(),
                        poc: sql.to_string(),
                        statements_until_found: *statements,
                        fixed: spec.map(|s| s.fixed).unwrap_or(false),
                    });
                }
                // "Restart" the DBMS and re-prepare.
                engine.reset_database();
                replay_prep(engine);
            }
            ExecOutcome::Error(SqlError::ResourceLimit(_)) => *false_positives += 1,
            ExecOutcome::Error(_) => *errors += 1,
            ExecOutcome::Rows(_) | ExecOutcome::Ok(_) => {}
        }
    };

    let mut executed: HashSet<String> = HashSet::new();
    for stmt in &collection.seeds {
        if statements >= config.max_statements {
            break;
        }
        let sql = stmt.to_string();
        if executed.insert(sql.clone()) {
            run_stmt(
                &mut engine,
                &sql,
                None,
                &mut statements,
                &mut false_positives,
                &mut errors,
                &mut findings,
                &mut found,
            );
        }
    }

    // Phase 2: pattern-based generation, interleaved round-robin across
    // patterns so every pattern gets budget share.
    let active: Vec<PatternId> = match &config.patterns {
        None => PATTERN_ORDER.to_vec(),
        Some(ps) => PATTERN_ORDER.iter().copied().filter(|p| ps.contains(p)).collect(),
    };
    let mut per_pattern: Vec<Vec<GeneratedCase>> = Vec::with_capacity(active.len());
    let mut generated_per_pattern: Vec<(PatternId, usize)> = Vec::with_capacity(active.len());
    for pattern in active {
        // The cross-function patterns need wider per-seed budgets: their
        // search space is (seed × donor), not (seed × pool).
        let cap = match pattern {
            PatternId::P3_3 => config.per_seed_cap.max(640),
            PatternId::P2_3 => config.per_seed_cap.max(128),
            _ => config.per_seed_cap,
        };
        let mut cases = Vec::new();
        for (si, seed) in collection.seeds.iter().enumerate() {
            patterns::apply_salted(pattern, seed, &ctx, cap, si, &mut cases);
        }
        generated_per_pattern.push((pattern, cases.len()));
        per_pattern.push(cases);
    }
    let mut cursors = vec![0usize; per_pattern.len()];
    'outer: loop {
        let mut progressed = false;
        for (pi, cases) in per_pattern.iter().enumerate() {
            if statements >= config.max_statements {
                break 'outer;
            }
            while cursors[pi] < cases.len() {
                let case = &cases[cursors[pi]];
                cursors[pi] += 1;
                if executed.insert(case.sql.clone()) {
                    run_stmt(
                        &mut engine,
                        &case.sql,
                        Some(case.pattern),
                        &mut statements,
                        &mut false_positives,
                        &mut errors,
                        &mut findings,
                        &mut found,
                    );
                    progressed = true;
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }

    CampaignReport {
        dialect: profile.id,
        statements_executed: statements,
        findings,
        false_positives,
        errors,
        functions_triggered: engine.coverage().functions_triggered(),
        branches_covered: engine.coverage().branches_covered(),
        generated_per_pattern,
    }
}

/// Anything that can stream test statements at a target — the interface the
/// baseline tools implement for the Tables 5/6 comparison.
pub trait StatementGenerator {
    /// Tool name (for report labels).
    fn name(&self) -> &'static str;
    /// Produces the next statement, or `None` when the tool is exhausted.
    fn next_statement(&mut self) -> Option<String>;
}

/// Runs any statement generator against a profile under a budget,
/// measuring the same campaign metrics as [`run_soft`].
pub fn run_generator(
    profile: &DialectProfile,
    generator: &mut dyn StatementGenerator,
    max_statements: usize,
) -> CampaignReport {
    let mut engine = profile.engine();
    let mut statements = 0usize;
    let mut false_positives = 0usize;
    let mut errors = 0usize;
    let mut found: HashSet<String> = HashSet::new();
    let mut findings: Vec<BugFinding> = Vec::new();
    while statements < max_statements {
        let Some(sql) = generator.next_statement() else { break };
        statements += 1;
        match engine.execute(&sql) {
            ExecOutcome::Crash(c) => {
                if found.insert(c.fault_id.clone()) {
                    let spec = profile
                        .faults
                        .iter()
                        .find(|f| f.spec.id == c.fault_id)
                        .map(|f| &f.spec);
                    findings.push(BugFinding {
                        fault_id: c.fault_id.clone(),
                        dialect: profile.id,
                        kind: c.kind,
                        stage: c.stage,
                        category: spec
                            .map(|s| s.category)
                            .unwrap_or(soft_types::category::FunctionCategory::System),
                        credited_pattern: spec.map(|s| s.pattern).unwrap_or(PatternId::P1_2),
                        found_by_pattern: spec.map(|s| s.pattern).unwrap_or(PatternId::P1_2),
                        function: c.function.clone(),
                        poc: sql.clone(),
                        statements_until_found: statements,
                        fixed: spec.map(|s| s.fixed).unwrap_or(false),
                    });
                }
                engine.reset_database();
            }
            ExecOutcome::Error(SqlError::ResourceLimit(_)) => false_positives += 1,
            ExecOutcome::Error(_) => errors += 1,
            _ => {}
        }
    }
    CampaignReport {
        dialect: profile.id,
        statements_executed: statements,
        findings,
        false_positives,
        errors,
        functions_triggered: engine.coverage().functions_triggered(),
        branches_covered: engine.coverage().branches_covered(),
        // External generators are not pattern-based.
        generated_per_pattern: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_dialects::DialectId;

    #[test]
    fn small_budget_campaign_is_deterministic() {
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let cfg = CampaignConfig { max_statements: 3_000, per_seed_cap: 8, patterns: None };
        let a = run_soft(&profile, &cfg);
        let b = run_soft(&profile, &cfg);
        assert_eq!(a.statements_executed, b.statements_executed);
        assert_eq!(
            a.findings.iter().map(|f| &f.fault_id).collect::<Vec<_>>(),
            b.findings.iter().map(|f| &f.fault_id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn campaign_finds_bugs_in_clickhouse() {
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let cfg = CampaignConfig { max_statements: 60_000, per_seed_cap: 48, patterns: None };
        let report = run_soft(&profile, &cfg);
        assert!(
            !report.findings.is_empty(),
            "SOFT should find at least one of the 6 ClickHouse bugs"
        );
        // Findings carry unique fault ids.
        let ids: HashSet<&String> = report.findings.iter().map(|f| &f.fault_id).collect();
        assert_eq!(ids.len(), report.findings.len());
        // Coverage was recorded.
        assert!(report.functions_triggered > 100);
        assert!(report.branches_covered > 500);
    }

    #[test]
    fn budget_is_respected() {
        let profile = DialectProfile::build(DialectId::Monetdb);
        let cfg = CampaignConfig { max_statements: 500, per_seed_cap: 4, patterns: None };
        let report = run_soft(&profile, &cfg);
        assert!(report.statements_executed <= 500);
    }
}
