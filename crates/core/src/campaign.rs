//! The SOFT campaign runner (§7.1 step 3, "SQL Function Bug Detection").
//!
//! The runner replays a target's preparation statements, executes the
//! collected seeds, then streams pattern-generated statements into the
//! engine under a statement budget — the reproduction's deterministic
//! substitute for the paper's wall-clock budgets. Crashes are deduplicated
//! by fault id; after each crash the database is "restarted" by snapshot
//! restore ([`soft_engine::Engine::restore_database`]) from the prepared
//! template engine — state-identical to the reset-and-replay-preparation
//! loop the paper's harness performs on its DBMS containers, without
//! re-executing the preparation statements.
//!
//! # Prepared execution
//!
//! Every planned statement is parsed **exactly once**: after planning, the
//! campaign compiles the stream against the shard template
//! (`Plan::prepare` → [`soft_engine::Engine::prepare`]), and the shards
//! execute the owned ASTs via
//! [`soft_engine::Engine::execute_prepared`]. The rendered SQL string is
//! kept only for findings/PoCs and the event journal. Preparation also
//! resolves every function name to its registry entry, so per-call dispatch
//! inside the executor does zero heap allocation.
//!
//! # Parallel execution
//!
//! The paper drives seven DBMSs concurrently on a 128-core testbed (§7.1);
//! this runner exploits the same hardware through **seed sharding**. The
//! campaign first *plans* the exact statement stream a serial run would
//! execute (seeds, then the round-robin of pattern-generated cases, globally
//! deduplicated and truncated at the budget), then partitions that stream
//! into fixed-size shards. Every shard executes against a private [`Engine`]
//! cloned from a prepared template, and a deterministic merge combines the
//! shard results: findings are deduplicated by fault id in global statement
//! order, counters are summed, and coverage sets are unioned.
//!
//! Because the shard decomposition depends only on the configuration — never
//! on the worker count — [`run_soft_parallel`] produces a byte-identical
//! [`CampaignReport`] for any number of workers, and [`run_soft`] (the
//! serial reference) is simply the same plan executed inline. Parallelism
//! changes wall-clock time, nothing else.
//!
//! # The live plane
//!
//! [`run_soft_parallel_live`] additionally feeds a [`LivePlane`]: a
//! lock-free [`LiveMetrics`] registry that workers update wait-free per
//! statement (scraped by `soft_obs::http::MetricsServer` and the
//! `--progress` ticker) and an optional shard watchdog thread that polls
//! per-shard heartbeats for stalls. Both are strictly *observers* — the
//! campaign never reads them back, so the byte-identical guarantee is
//! untouched; their outputs land on [`CampaignRun`], next to the other
//! wall-clock surfaces, never inside [`CampaignReport`] equality.
//!
//! The flight recorder ([`LivePlane::spans`]) is the third observer on the
//! same plane: each shard records hierarchical wall-clock spans (shard,
//! batch-group, execute, oracle) into a buffer it owns exclusively, the
//! campaign thread records the planning stages (generate, parse, epoch,
//! minimize, campaign), and the join merges everything into a
//! [`SpanTrace`] on [`CampaignRun::spans`] — exportable as Chrome
//! trace-event JSON for Perfetto. Spans are wall-clock and therefore live
//! outside report equality, like every other surface here.

use crate::collect::{self, Collection};
use crate::oracle::{self, OracleConfig, OracleKind, OracleOptions};
use crate::patterns::{self, GenCtx, GeneratedCase};
use crate::report::{BugFinding, CampaignReport, FindingKind, ShardStats};
use crate::schedule::{ArmId, ArmReward, Bandit, ScheduleConfig, ScheduleOptions};
use soft_dialects::DialectProfile;
use soft_engine::{
    BatchArena, Coverage, Engine, ExecOutcome, FaultSpec, PatternId, Prepared, ShapeKey,
    SqlError, Stage, MIN_BATCH_GROUP,
};
use soft_obs::span::CAMPAIGN_TRACK;
use soft_obs::{
    ArmAlloc, EpochRealloc, LiveMetrics, OutcomeClass, ShardTelemetry, SpanRecord, SpanSink,
    SpanTrace, StageLatency, StatementEvent, TelemetryConfig, TelemetryOptions, WatchdogConfig,
    WatchdogReport,
};
use soft_types::category::FunctionCategory;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Statement budget (the 24-hour analogue).
    pub max_statements: usize,
    /// Cases generated per (pattern, seed) pair.
    pub per_seed_cap: usize,
    /// Restrict generation to these patterns (None = all ten) — the
    /// ablation knob.
    pub patterns: Option<Vec<PatternId>>,
    /// Worker threads for [`run_campaign`] (the parallel entry points take
    /// an explicit count). Defaults to `std::thread::available_parallelism`;
    /// `0` is treated as 1. The worker count never changes campaign results,
    /// only wall-clock time.
    pub workers: usize,
    /// Per-shard statement budget: the planned statement stream is cut into
    /// contiguous shards of this many statements, each executed on a private
    /// engine. The shard size *is* part of the campaign's semantics (shard
    /// boundaries reset session state), so two runs compare equal only under
    /// the same `shard_statements`; the worker count is not.
    pub shard_statements: usize,
    /// Observability knob (default [`TelemetryConfig::Off`], which costs one
    /// branch per statement). When on, the run records the statement-level
    /// event journal, yield metrics, coverage-growth curves (all
    /// deterministic, inside [`CampaignReport::telemetry`]) and wall-clock
    /// stage latencies (outside the report, in
    /// [`CampaignRun::stage_latency`]). The snapshot interval is part of the
    /// campaign semantics; the journal path is not (it only adds a sink).
    pub telemetry: TelemetryConfig,
    /// Wrong-result detection knob (default [`OracleConfig::Off`]). When on,
    /// the multi-form oracle re-executes every planned statement through its
    /// equivalent forms, and the pivot / differential oracles run once after
    /// the planned stream as a synthetic trailing shard. All oracle checks
    /// are pure functions of the prepared template and the statement, so the
    /// worker-count-invariance guarantee holds with oracles on.
    pub oracles: OracleConfig,
    /// Columnar batch execution (default on). When on, each shard groups
    /// same-shape prepared statements and evaluates every group as one
    /// columnar batch ([`soft_engine::Engine::execute_batch_in`]), then
    /// demultiplexes the per-row outcomes through the exact serial
    /// classification loop. Batching is a pure execution strategy: the
    /// report is byte-identical with it on or off, at any worker count —
    /// only statements/sec changes.
    pub batch: bool,
    /// Budget scheduling knob (default [`ScheduleConfig::Off`], the static
    /// round-robin planner). When on, the statement budget is split into
    /// epochs and a UCB bandit reallocates each epoch's share across
    /// (pattern × seed-category) arms from the merged telemetry of prior
    /// epochs — plan-then-execute, so the stream stays a pure function of
    /// the configuration and reports remain byte-identical at any worker
    /// count. The epoch decisions land in
    /// [`soft_obs::CampaignTelemetry::epochs`] when telemetry is on.
    pub schedule: ScheduleConfig,
    /// A persistent seed repository to consume (default `None`). When set,
    /// same-dialect PoCs join the phase-1 seed corpus (regression
    /// tripwires) and every entry's boundary literals — cross-dialect —
    /// extend the P1.1 generation pool. An unreadable repository is
    /// reported on stderr and skipped; the campaign still runs.
    pub repository: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_statements: 200_000,
            per_seed_cap: 64,
            patterns: None,
            workers: default_workers(),
            shard_statements: 256,
            telemetry: TelemetryConfig::Off,
            oracles: OracleConfig::Off,
            batch: true,
            schedule: ScheduleConfig::Off,
            repository: None,
        }
    }
}

impl CampaignConfig {
    /// The effective worker count (`workers`, floored at 1).
    pub fn resolved_workers(&self) -> usize {
        self.workers.max(1)
    }
}

/// The machine's available parallelism (1 when it cannot be queried).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The pattern application order; interleaved round-robin at execution.
/// Must list all ten patterns — the default campaign claims to apply every
/// pattern, and `PatternId::ALL`-based regression tests hold it to that.
const PATTERN_ORDER: [PatternId; 10] = [
    PatternId::P1_1,
    PatternId::P1_2,
    PatternId::P1_3,
    PatternId::P1_4,
    PatternId::P2_1,
    PatternId::P2_2,
    PatternId::P2_3,
    PatternId::P3_1,
    PatternId::P3_2,
    PatternId::P3_3,
];

/// One statement of the planned campaign stream.
#[derive(Debug, Clone)]
struct PlannedCase {
    sql: String,
    /// `None` for phase-1 seed statements.
    pattern: Option<PatternId>,
    /// Index of the seed the statement derives from (telemetry provenance).
    seed: usize,
}

/// The planned campaign: the exact statement stream plus the provenance
/// tables telemetry needs. Building it involves no engine; [`Plan::prepare`]
/// then compiles the stream against the shard template so each statement is
/// parsed exactly once and the shards execute owned ASTs.
struct Plan {
    cases: Vec<PlannedCase>,
    /// One prepared statement — or its pre-execution error, replayed as the
    /// statement's outcome — per planned case, aligned with `cases`. Filled
    /// by [`Plan::prepare`]; this is the campaign's single parse of each
    /// statement.
    prepared: Vec<Result<Prepared, SqlError>>,
    /// The structural shape of each prepared statement, aligned with
    /// `cases`: `Some(key)` when the statement is batchable (see
    /// [`soft_engine::Engine::shape_key`]), `None` when it must take the
    /// scalar path. Filled by [`Plan::prepare`] so the shards only group,
    /// never re-analyse.
    shapes: Vec<Option<ShapeKey>>,
    generated_per_pattern: Vec<(PatternId, usize)>,
    /// Root function of each seed statement (the first collected function
    /// expression), indexed by seed id — the journal's "target function"
    /// for non-crashing statements. Interned once so the per-event journal
    /// clones an `Arc`, not a `String`.
    seed_functions: Vec<Option<Arc<str>>>,
    /// Wall-clock generation time per active pattern (telemetry only).
    generate_latency: Vec<Duration>,
    /// Wall-clock prepare time per case (telemetry only, else empty) — the
    /// parse-stage histogram, now genuinely disjoint from execution.
    prepare_latency: Vec<Duration>,
}

impl Plan {
    /// Parses every not-yet-prepared planned statement once against the
    /// template engine — incremental, so the scheduler's epoch loop can
    /// extend the plan and prepare only the new tail. Serial by design: the
    /// prepared stream (like the plan itself) must be independent of the
    /// worker count, and recording per-case wall-clock here keeps the parse
    /// histogram deterministic in sample count.
    fn prepare(&mut self, template: &Engine, timed: bool) {
        let start = self.prepared.len();
        self.prepared.reserve_exact(self.cases.len() - start);
        self.shapes.reserve_exact(self.cases.len() - start);
        if timed {
            self.prepare_latency.reserve_exact(self.cases.len() - start);
        }
        for case in &self.cases[start..] {
            let t = timed.then(Instant::now);
            let prepared = template.prepare(&case.sql);
            if let Some(t) = t {
                self.prepare_latency.push(t.elapsed());
            }
            // Shape analysis is part of planning, not execution: it is a
            // pure function of (registry, AST), so computing it against the
            // template here keeps the shards' grouping deterministic and
            // out of the hot loop.
            self.shapes.push(prepared.as_ref().ok().and_then(|p| template.shape_key(p)));
            self.prepared.push(prepared);
        }
    }
}

/// Fault-id → (interned id, corpus spec), built once per campaign so the
/// per-crash ground-truth lookup is O(1) instead of a linear scan over the
/// fault corpus, and so crash telemetry reuses one interned id per fault
/// instead of cloning the `String` per event.
type FaultIndex<'p> = HashMap<&'p str, (Arc<str>, &'p FaultSpec)>;

fn build_fault_index(profile: &DialectProfile) -> FaultIndex<'_> {
    profile
        .faults
        .iter()
        .map(|f| (f.spec.id.as_str(), (Arc::from(f.spec.id.as_str()), &f.spec)))
        .collect()
}

/// Per-shard wall-clock observability (not part of the deterministic
/// report — see [`ShardStats`] for the merged, comparable counters).
#[derive(Debug, Clone)]
pub struct ShardTiming {
    /// Shard index (global statement order).
    pub shard: usize,
    /// Statements the shard executed.
    pub statements: usize,
    /// Wall-clock nanoseconds the shard took.
    pub nanos: u128,
}

impl ShardTiming {
    /// The shard's execution rate.
    pub fn statements_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            return 0.0;
        }
        self.statements as f64 / (self.nanos as f64 / 1e9)
    }
}

/// A campaign result with its wall-clock telemetry: the deterministic
/// [`CampaignReport`] plus per-shard timings, which *do* vary run to run and
/// are therefore kept out of the report's `PartialEq` surface.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The deterministic campaign report (identical for any worker count).
    pub report: CampaignReport,
    /// Worker threads actually used.
    pub workers: usize,
    /// End-to-end wall-clock nanoseconds (collection + generation +
    /// execution + merge).
    pub wall_nanos: u128,
    /// Per-shard timings, in shard order.
    pub shard_timings: Vec<ShardTiming>,
    /// Per-stage wall-clock latency histograms (generate, parse, execute,
    /// minimize), recorded only when [`CampaignConfig::telemetry`] is on.
    /// Wall-clock varies run to run, so this lives here — next to
    /// [`ShardTiming`] — and never inside the comparable [`CampaignReport`].
    pub stage_latency: Option<StageLatency>,
    /// What the shard watchdog observed (stalled/slow shards), when
    /// [`LivePlane::watchdog`] was configured. Wall-clock, so it lives on
    /// the run, outside report equality.
    pub watchdog: Option<WatchdogReport>,
    /// The flight-recorder trace (hierarchical wall-clock spans, merged
    /// from the per-shard buffers), when [`LivePlane::spans`] was armed.
    /// Wall-clock, so it lives on the run, outside report equality.
    pub spans: Option<SpanTrace>,
}

/// The campaign's live observability hookup: which wall-clock observers to
/// feed while shards execute. The default plane is fully off and costs one
/// `Option` check per statement.
///
/// Everything here is write-only from the campaign's perspective: live
/// counters and heartbeats never influence planning, scheduling, or the
/// merge, so any plane configuration produces the same [`CampaignReport`].
#[derive(Debug, Clone, Default)]
pub struct LivePlane {
    /// The shared live metrics registry to feed (the same `Arc` the HTTP
    /// exposition server / progress ticker reads). `None` = no live
    /// counters.
    pub metrics: Option<Arc<LiveMetrics>>,
    /// Run a shard watchdog thread with this configuration. When set
    /// without `metrics`, a private registry is created so heartbeats still
    /// flow.
    pub watchdog: Option<WatchdogConfig>,
    /// Arm the flight recorder: every shard records wall-clock spans into
    /// a buffer it owns exclusively (no locks, no cross-thread traffic),
    /// merged at the join into [`CampaignRun::spans`].
    pub spans: bool,
}

impl CampaignRun {
    /// Overall throughput in statements per second.
    pub fn statements_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.report.statements_executed as f64 / (self.wall_nanos as f64 / 1e9)
    }
}

/// Everything a shard produces; merged deterministically afterwards.
struct ShardOutcome {
    stats: ShardStats,
    findings: Vec<BugFinding>,
    coverage: Coverage,
    nanos: u128,
    telemetry: Option<ShardTelemetry>,
    spans: Vec<SpanRecord>,
}

/// Runs a full SOFT campaign against one dialect profile, serially — the
/// reference semantics. Equivalent to [`run_soft_parallel`] with one worker
/// (and byte-identical to it at *any* worker count).
pub fn run_soft(profile: &DialectProfile, config: &CampaignConfig) -> CampaignReport {
    run_soft_parallel(profile, config, 1)
}

/// Runs a campaign with the worker count taken from
/// [`CampaignConfig::workers`].
pub fn run_campaign(profile: &DialectProfile, config: &CampaignConfig) -> CampaignReport {
    run_soft_parallel(profile, config, config.resolved_workers())
}

/// Runs a campaign with `n_workers` threads. The report is byte-identical
/// for every worker count — parallelism must not change results, only
/// wall-clock.
pub fn run_soft_parallel(
    profile: &DialectProfile,
    config: &CampaignConfig,
    n_workers: usize,
) -> CampaignReport {
    run_soft_parallel_timed(profile, config, n_workers).report
}

/// [`run_soft_parallel`] plus wall-clock telemetry (per-shard statements/sec
/// for the bench JSON and observability surfaces). Runs with the live plane
/// fully off.
pub fn run_soft_parallel_timed(
    profile: &DialectProfile,
    config: &CampaignConfig,
    n_workers: usize,
) -> CampaignRun {
    run_soft_parallel_live(profile, config, n_workers, &LivePlane::default())
}

/// [`run_soft_parallel_timed`] with the live observability plane attached:
/// workers feed `live.metrics` wait-free per statement, and `live.watchdog`
/// (when set) runs a heartbeat-polling thread whose report lands on
/// [`CampaignRun::watchdog`]. The live plane never changes the report.
pub fn run_soft_parallel_live(
    profile: &DialectProfile,
    config: &CampaignConfig,
    n_workers: usize,
    live: &LivePlane,
) -> CampaignRun {
    let t0 = Instant::now();
    let workers = n_workers.max(1);
    let telemetry_opts = config.telemetry.options();
    let oracle_opts = config.oracles.options();
    let mut collection = collect::collect(profile);

    // The persistent repository (when configured): same-dialect PoCs join
    // the phase-1 seed corpus as regression tripwires, and every entry's
    // boundary literals — whatever dialect surfaced them — widen the
    // generation pool. Both extensions happen before planning, so the
    // stream stays a pure function of (profile, config, repository).
    let repo = config.repository.as_ref().and_then(|root| {
        match crate::repo::SeedRepository::load(root) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("soft-core: ignoring repository {}: {e}", root.display());
                None
            }
        }
    });
    if let Some(repo) = &repo {
        repo.extend_seeds(profile.id.name(), &mut collection);
    }
    let mut ctx = GenCtx::new(&collection);
    if let Some(repo) = &repo {
        repo.extend_pool(&mut ctx);
    }
    let prep: Vec<String> = collection.preparation.iter().map(|s| s.to_string()).collect();

    let fault_index = build_fault_index(profile);

    // The shard template: a fresh engine with preparation replayed. Cloning
    // it (or restoring from it after a crash) is exactly the state the
    // serial runner used to re-create by replaying preparation.
    let mut template = profile.engine();
    for sql in &prep {
        let _ = template.execute(sql);
    }

    // Resolve the live registry: the caller's, or a private one when only
    // the watchdog is configured (heartbeats still need somewhere to live).
    let metrics: Option<Arc<LiveMetrics>> = live
        .metrics
        .clone()
        .or_else(|| live.watchdog.map(|_| Arc::new(LiveMetrics::new())));
    let live_metrics: Option<&LiveMetrics> = metrics.as_deref();

    // One scope hosts the watchdog and (via `execute_shards`) the shard
    // workers. The shard work finishes first; only then is the stop flag
    // raised and the watchdog joined — so the watchdog observes the whole
    // campaign and the scope cannot deadlock on it.
    // The flight recorder: the campaign thread owns track 0 (planning
    // stages), each shard records onto track `shard + 1` inside its own
    // outcome buffer. All sinks share `t0` as the time origin.
    let mut campaign_sink: Option<SpanSink> =
        live.spans.then(|| SpanSink::new(t0, CAMPAIGN_TRACK));
    let span_origin: Option<Instant> = live.spans.then_some(t0);
    let campaign_sink_ref = &mut campaign_sink;

    let stop = AtomicBool::new(false);
    let stop_ref = &stop;
    let (plan, mut outcomes, epochs, watchdog_report) = std::thread::scope(|scope| {
        let watchdog_handle = live.watchdog.map(|cfg| {
            let registry = Arc::clone(metrics.as_ref().expect("watchdog implies a registry"));
            scope.spawn(move || soft_obs::watchdog::run(&registry, stop_ref, cfg))
        });
        let (plan, outcomes, epochs) = match config.schedule.options() {
            // The static planner: one plan, one prepare pass, one shard
            // decomposition — the reference semantics.
            None => {
                let gen_start = campaign_sink_ref.as_ref().map(|s| s.now_ns());
                let mut plan = build_plan(&collection, &ctx, config, workers);
                if let (Some(sink), Some(start)) = (campaign_sink_ref.as_mut(), gen_start) {
                    sink.record_since(
                        "generate",
                        start,
                        Some(format!("{} cases", plan.cases.len())),
                    );
                }
                // Parse-once: compile the planned stream against the
                // template. From here on the shards only execute ASTs.
                let parse_start = campaign_sink_ref.as_ref().map(|s| s.now_ns());
                plan.prepare(&template, telemetry_opts.is_some());
                if let (Some(sink), Some(start)) = (campaign_sink_ref.as_mut(), parse_start) {
                    sink.record_since("parse", start, None);
                }
                let shard_size = config.shard_statements.max(1);
                let shards: Vec<(usize, usize, usize)> = (0..plan.cases.len())
                    .step_by(shard_size)
                    .enumerate()
                    .map(|(i, start)| (i, start, shard_size.min(plan.cases.len() - start)))
                    .collect();
                if let Some(m) = live_metrics {
                    m.begin_campaign(profile.id.name(), plan.cases.len(), shards.len(), workers);
                }
                let outcomes = execute_shards(
                    profile,
                    &fault_index,
                    &template,
                    &plan,
                    &shards,
                    workers,
                    telemetry_opts,
                    oracle_opts,
                    live_metrics,
                    config.batch,
                    span_origin,
                );
                (plan, outcomes, Vec::new())
            }
            // The feedback scheduler: plan-then-execute per epoch, budget
            // reallocated from the deterministic telemetry of prior epochs.
            Some(sched) => run_scheduled(
                profile,
                &collection,
                &ctx,
                config,
                sched,
                workers,
                &fault_index,
                &template,
                telemetry_opts,
                oracle_opts,
                live_metrics,
                span_origin,
                campaign_sink_ref,
            ),
        };
        stop.store(true, Ordering::Release);
        let wd = watchdog_handle.map(|h| h.join().expect("watchdog thread panicked"));
        (plan, outcomes, epochs, wd)
    });
    // Completion order is scheduler-dependent; merge order is not.
    outcomes.sort_by_key(|o| o.stats.shard);

    // Deterministic merge: findings deduplicated by fault id in global
    // statement order, counters summed, coverage unioned.
    let mut findings: Vec<BugFinding> = Vec::new();
    let mut found: HashSet<String> = HashSet::new();
    let mut coverage = Coverage::new();
    let mut stats: Vec<ShardStats> = Vec::with_capacity(outcomes.len());
    let mut timings: Vec<ShardTiming> = Vec::with_capacity(outcomes.len());
    let mut shard_telemetry: Vec<ShardTelemetry> = Vec::new();
    let mut span_buffers: Vec<Vec<SpanRecord>> = Vec::new();
    let mut statements = 0usize;
    let mut false_positives = 0usize;
    let mut errors = 0usize;
    for outcome in &mut outcomes {
        for f in outcome.findings.drain(..) {
            if found.insert(f.fault_id.clone()) {
                findings.push(f);
            }
        }
        if !outcome.spans.is_empty() {
            span_buffers.push(std::mem::take(&mut outcome.spans));
        }
        coverage.merge(&outcome.coverage);
        statements += outcome.stats.statements;
        false_positives += outcome.stats.false_positives;
        errors += outcome.stats.errors;
        timings.push(ShardTiming {
            shard: outcome.stats.shard,
            statements: outcome.stats.statements,
            nanos: outcome.nanos,
        });
        stats.push(outcome.stats.clone());
        if let Some(t) = outcome.telemetry.take() {
            // The scheduler runs an internal observer even when user
            // telemetry is off (it needs the events to score arms); those
            // recordings are dropped here so scheduling leaves a
            // telemetry-off report untouched.
            if telemetry_opts.is_some() {
                shard_telemetry.push(t);
            }
        }
    }

    // The synthetic trailing shard index for campaign-level oracle events:
    // one past the last executed shard, whatever decomposition (static or
    // epoch-scheduled) produced the stream.
    let total_shards = stats.last().map(|s| s.shard + 1).unwrap_or(0);

    // Campaign-level oracles: the pivot probes and the cross-dialect
    // differential suite run once, after the planned stream, and their
    // events land in the synthetic trailing shard so the journal stays
    // globally ordered. Everything here is a pure function of (profile,
    // template), so the report stays byte-identical across worker counts.
    if let Some(opts) = oracle_opts {
        let oracle_start = campaign_sink.as_ref().map(|s| s.now_ns());
        let mut hits: Vec<(String, oracle::LogicBug, String)> = Vec::new();
        if opts.pivot {
            hits.extend(oracle::pivot_check(&template));
        }
        if opts.differential {
            hits.extend(oracle::differential_check(profile));
        }
        if let (Some(sink), Some(start)) = (campaign_sink.as_mut(), oracle_start) {
            sink.record_since("oracle", start, Some("pivot + differential".into()));
        }
        let mut oracle_events: Vec<StatementEvent> = Vec::new();
        for (k, (fault_id, bug, poc)) in hits.into_iter().enumerate() {
            let index = statements + k + 1;
            if telemetry_opts.is_some() {
                oracle_events.push(StatementEvent {
                    index,
                    shard: total_shards,
                    seed: None,
                    pattern: None,
                    function: None,
                    outcome: OutcomeClass::LogicBug,
                    fault_id: Some(Arc::from(fault_id.as_str())),
                });
            }
            if found.insert(fault_id.clone()) {
                if let Some(m) = live_metrics {
                    m.record_unique_candidate(&fault_id);
                }
                findings.push(BugFinding {
                    fault_id,
                    dialect: profile.id,
                    kind: FindingKind::Logic(bug),
                    stage: Stage::Execution,
                    category: soft_types::category::FunctionCategory::System,
                    credited_pattern: PatternId::P1_2,
                    found_by_pattern: PatternId::P1_2,
                    function: None,
                    seed_function: None,
                    poc,
                    statements_until_found: index,
                    fixed: false,
                });
            }
        }
        if !oracle_events.is_empty() {
            shard_telemetry.push(ShardTelemetry {
                shard: total_shards,
                events: oracle_events,
                snapshots: Vec::new(),
                final_coverage: Coverage::new(),
                latency: StageLatency::new(),
            });
        }
    }

    // Telemetry merge: deterministic (journal, yields, curves) into the
    // report; wall-clock (stage latencies) into the run.
    let (telemetry, stage_latency) = match telemetry_opts {
        None => (None, None),
        Some(opts) => {
            let registry = template.registry();
            let (mut merged, mut latency) = soft_obs::telemetry::merge_shards(
                shard_telemetry,
                &plan.generated_per_pattern,
                opts.snapshot_interval.max(1),
                |name| registry.resolve(name).map(|d| d.category),
            );
            // Stamp the scheduler's epoch decisions into the deterministic
            // surface: they are identical at any worker count, so they sit
            // inside report equality like everything else merged here.
            merged.epochs = epochs;
            for d in &plan.generate_latency {
                latency.generate.record(*d);
            }
            // The parse stage is the campaign's central prepare pass: one
            // sample per planned statement, disjoint from execution.
            for d in &plan.prepare_latency {
                latency.parse.record(*d);
            }
            // Time the minimize stage over the unique findings (the PoCs the
            // paper's harness would report). The reducer only reads cloned
            // engines, so the report is untouched. Crash PoCs reduce under
            // the crash signature, multi-form PoCs under the oracle verdict;
            // pivot/differential PoCs are fixed probe queries — already
            // minimal, but still one sample each so the histogram keeps one
            // entry per finding.
            for f in &findings {
                let t = Instant::now();
                let min_start = campaign_sink.as_ref().map(|s| s.now_ns());
                match &f.kind {
                    FindingKind::Crash(_) => {
                        let _ = crate::minimize::minimize(&f.poc, || template.clone());
                    }
                    FindingKind::Logic(b) if b.oracle == OracleKind::MultiForm => {
                        let _ = crate::minimize::minimize_logic(&f.poc, || template.clone());
                    }
                    FindingKind::Logic(_) => {}
                }
                latency.minimize.record(t.elapsed());
                if let (Some(sink), Some(start)) = (campaign_sink.as_mut(), min_start) {
                    sink.record_since("minimize", start, Some(f.fault_id.clone()));
                }
            }
            if let Some(path) = &opts.journal_path {
                let trace = merged.to_trace(Some(profile.id.name()), statements);
                if let Err(e) = std::fs::write(path, trace.to_jsonl()) {
                    eprintln!("soft-obs: could not write journal {}: {e}", path.display());
                }
            }
            (Some(merged), Some(latency))
        }
    };

    let report = CampaignReport {
        dialect: profile.id,
        statements_executed: statements,
        findings,
        false_positives,
        errors,
        functions_triggered: coverage.functions_triggered(),
        branches_covered: coverage.branches_covered(),
        generated_per_pattern: plan.generated_per_pattern,
        shards: stats,
        telemetry,
    };
    // The slow-shard skew signal comes from the deterministic join's own
    // timing rows, not from heartbeat sampling.
    let watchdog = watchdog_report.map(|mut w| {
        let rows: Vec<(usize, usize, u128)> =
            timings.iter().map(|t| (t.shard, t.statements, t.nanos)).collect();
        w.slow_shards = soft_obs::watchdog::classify_slow_shards(&rows);
        w
    });
    // Close the root span and merge all buffers into the flight trace.
    let spans = campaign_sink.map(|mut sink| {
        let end = sink.now_ns();
        sink.record("campaign", 0, end, Some(format!("{statements} statements")));
        span_buffers.push(sink.into_spans());
        SpanTrace::merge(span_buffers)
    });
    // Terminate the live event stream: `/events` consumers see a final
    // `done` record and the chunked response closes.
    if let Some(m) = live_metrics {
        m.finish_campaign();
    }
    CampaignRun {
        report,
        workers,
        wall_nanos: t0.elapsed().as_nanos(),
        shard_timings: timings,
        stage_latency,
        watchdog,
        spans,
    }
}

/// Executes a set of planned shards — `(shard index, start, len)` triples —
/// with up to `workers` threads, returning the outcomes sorted by shard
/// index. Shard indices are caller-assigned so the scheduler's epoch loop
/// can keep one global shard numbering across epochs; the static path
/// numbers them `0..n` in a single call. Work-stealing completion order
/// never leaks: outcomes are sorted before returning.
fn execute_shards(
    profile: &DialectProfile,
    fault_index: &FaultIndex<'_>,
    template: &Engine,
    plan: &Plan,
    shards: &[(usize, usize, usize)],
    workers: usize,
    telemetry: Option<&TelemetryOptions>,
    oracles: Option<&OracleOptions>,
    live: Option<&LiveMetrics>,
    batch: bool,
    span_origin: Option<Instant>,
) -> Vec<ShardOutcome> {
    if workers == 1 || shards.len() <= 1 {
        return shards
            .iter()
            .map(|&(index, start, len)| {
                run_shard(
                    profile,
                    fault_index,
                    template,
                    plan,
                    start..start + len,
                    index,
                    telemetry,
                    oracles,
                    live,
                    batch,
                    span_origin,
                )
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<ShardOutcome>> = Mutex::new(Vec::with_capacity(shards.len()));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(shards.len()))
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(index, start, len)) = shards.get(i) else { break };
                    let outcome = run_shard(
                        profile,
                        fault_index,
                        template,
                        plan,
                        start..start + len,
                        index,
                        telemetry,
                        oracles,
                        live,
                        batch,
                        span_origin,
                    );
                    done.lock().expect("shard results poisoned").push(outcome);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("shard worker panicked");
        }
    });
    let mut outcomes = done.into_inner().expect("shard results poisoned");
    outcomes.sort_by_key(|o| o.stats.shard);
    outcomes
}

/// Root function of each seed statement (the first collected function
/// expression), interned once — the journal's "target function" for
/// non-crashing statements and the scheduler's arm attribution.
fn seed_functions_of(collection: &Collection) -> Vec<Option<Arc<str>>> {
    collection
        .seeds
        .iter()
        .map(|s| {
            soft_parser::visit::collect_function_exprs(s).first().map(|f| Arc::from(f.name.as_str()))
        })
        .collect()
}

/// The feedback scheduler (plan-then-execute). The statement budget is
/// split into `sched.epochs` epochs; each epoch is *planned* from per-arm
/// quotas the bandit computed out of the merged, deterministic telemetry of
/// the epochs before it, prepared incrementally, and executed on shards
/// that continue the campaign's global numbering. An arm is a
/// (pattern × seed-function-category) pair.
///
/// Every scheduling input is event-derived and therefore a pure function of
/// (profile, config, repository): identical at any worker count, with batch
/// execution on or off, and whether or not user telemetry is enabled (when
/// it is not, an internal observer records events for scoring and the merge
/// discards them). The adaptive stream — and with it the report — stays
/// byte-identical however the campaign is parallelised.
fn run_scheduled(
    profile: &DialectProfile,
    collection: &Collection,
    ctx: &GenCtx,
    config: &CampaignConfig,
    sched: &ScheduleOptions,
    workers: usize,
    fault_index: &FaultIndex<'_>,
    template: &Engine,
    telemetry: Option<&TelemetryOptions>,
    oracles: Option<&OracleOptions>,
    live: Option<&LiveMetrics>,
    span_origin: Option<Instant>,
    campaign_sink: &mut Option<SpanSink>,
) -> (Plan, Vec<ShardOutcome>, Vec<EpochRealloc>) {
    let gen_start = campaign_sink.as_ref().map(|s| s.now_ns());
    let seed_functions = seed_functions_of(collection);
    // Arm attribution: the category of each seed's root function (the
    // registry's view), `System` when the seed has no resolvable function.
    let seed_categories: Vec<FunctionCategory> = seed_functions
        .iter()
        .map(|f| {
            f.as_deref()
                .and_then(|name| profile.registry.resolve(name).map(|d| d.category))
                .unwrap_or(FunctionCategory::System)
        })
        .collect();

    let active: Vec<PatternId> = match &config.patterns {
        None => PATTERN_ORDER.to_vec(),
        Some(ps) => PATTERN_ORDER.iter().copied().filter(|p| ps.contains(p)).collect(),
    };
    let (per_pattern, generate_latency) =
        generate_cases(collection, ctx, config, &active, workers);
    let generated_per_pattern: Vec<(PatternId, usize)> =
        active.iter().zip(&per_pattern).map(|(&p, cases)| (p, cases.len())).collect();
    if let (Some(sink), Some(start)) = (campaign_sink.as_mut(), gen_start) {
        let total: usize = generated_per_pattern.iter().map(|&(_, n)| n).sum();
        sink.record_since("generate", start, Some(format!("{total} cases")));
    }

    // Partition the generated cases into arm queues, keyed (pattern
    // position, category) so the arm order refines the static planner's
    // pattern order. Within a queue, cases keep their generation order.
    let mut by_arm: BTreeMap<(usize, FunctionCategory), Vec<(GeneratedCase, usize)>> =
        BTreeMap::new();
    for (pi, cases) in per_pattern.into_iter().enumerate() {
        for (case, seed) in cases {
            let category =
                seed_categories.get(seed).copied().unwrap_or(FunctionCategory::System);
            by_arm.entry((pi, category)).or_default().push((case, seed));
        }
    }
    let arms: Vec<ArmId> = by_arm
        .keys()
        .map(|&(pi, category)| ArmId { pattern: active[pi], category })
        .collect();
    let queues: Vec<Vec<(GeneratedCase, usize)>> = by_arm.into_values().collect();
    let arm_of: HashMap<(PatternId, FunctionCategory), usize> = arms
        .iter()
        .enumerate()
        .map(|(a, arm)| ((arm.pattern, arm.category), a))
        .collect();

    let budget = config.max_statements;
    let mut plan = Plan {
        cases: Vec::new(),
        prepared: Vec::new(),
        shapes: Vec::new(),
        generated_per_pattern,
        seed_functions,
        generate_latency,
        prepare_latency: Vec::new(),
    };
    let mut executed: HashSet<String> = HashSet::new();

    // Phase 1: the seed corpus opens epoch 0, exactly like the static
    // planner — seeds prime coverage and are not subject to arm quotas.
    for (si, stmt) in collection.seeds.iter().enumerate() {
        if plan.cases.len() >= budget {
            break;
        }
        let sql = stmt.to_string();
        if executed.insert(sql.clone()) {
            plan.cases.push(PlannedCase { sql, pattern: None, seed: si });
        }
    }

    let n_epochs = sched.epochs.max(1);
    let shard_size = config.shard_statements.max(1);
    if let Some(m) = live {
        // Heartbeat slots need an upper bound before execution: each epoch
        // adds at most one partial shard beyond `len / shard_size`.
        m.begin_campaign(
            profile.id.name(),
            budget,
            budget / shard_size + n_epochs + 1,
            workers,
        );
    }

    // When user telemetry is off, the scheduler still needs per-statement
    // events to score arms — an internal observer with an unreachable
    // snapshot interval and no journal records them, and the merge drops
    // them from the report.
    let internal =
        TelemetryOptions { snapshot_interval: usize::MAX / 2, journal_path: None };
    let effective: &TelemetryOptions = telemetry.unwrap_or(&internal);

    let mut bandit = Bandit::new(arms.len(), sched.clone());
    let mut cursors = vec![0usize; queues.len()];
    let mut outcomes: Vec<ShardOutcome> = Vec::new();
    let mut epochs_out: Vec<EpochRealloc> = Vec::new();
    let mut shard_base = 0usize;
    // The executed frontier: everything planned before it has run. Epoch
    // 0's execution range starts at 0 — it carries the seed corpus in
    // front of its own quota.
    let mut exec_from = 0usize;
    let mut seen_faults: HashSet<Arc<str>> = HashSet::new();
    let mut seen_functions: HashSet<Arc<str>> = HashSet::new();

    for epoch in 0..n_epochs {
        let epoch_span_start = campaign_sink.as_ref().map(|s| s.now_ns());
        // Epoch k owns the budget slice up to `budget * (k+1) / n`; planning
        // shortfalls (deduplication, dry queues) roll into the next epoch.
        let target = budget * (epoch + 1) / n_epochs;
        let epoch_start = plan.cases.len();
        let epoch_budget = target.saturating_sub(epoch_start);
        let available: Vec<usize> =
            cursors.iter().zip(&queues).map(|(&c, q)| q.len() - c).collect();
        if available.iter().all(|&n| n == 0) {
            break;
        }
        if epoch_budget == 0 {
            continue;
        }

        let scores = bandit.scores_milli();
        let quotas = bandit.allocate(epoch_budget, &available);
        // Plan the epoch: round-robin across arms up to each arm's quota
        // (duplicates advance the cursor without consuming quota, the static
        // planner's rule), then a spill pass tops the epoch up from any arm
        // with cases left so a starved quota cannot shrink the campaign.
        let mut planned = vec![0usize; arms.len()];
        plan_round_robin(
            &mut plan.cases,
            &mut executed,
            &queues,
            &mut cursors,
            &mut planned,
            &quotas,
            target,
        );
        if plan.cases.len() < target {
            let spill = vec![usize::MAX; arms.len()];
            plan_round_robin(
                &mut plan.cases,
                &mut executed,
                &queues,
                &mut cursors,
                &mut planned,
                &spill,
                target,
            );
        }

        // Prepare only the epoch's tail (the plan's parse-once discipline is
        // incremental), then execute everything planned but not yet run —
        // the epoch's quota, plus the seed corpus in epoch 0 — on shards
        // continuing the global numbering.
        let parse_start = campaign_sink.as_ref().map(|s| s.now_ns());
        plan.prepare(template, telemetry.is_some());
        if let (Some(sink), Some(start)) = (campaign_sink.as_mut(), parse_start) {
            sink.record_since("parse", start, None);
        }
        let epoch_shards: Vec<(usize, usize, usize)> = (exec_from..plan.cases.len())
            .step_by(shard_size)
            .enumerate()
            .map(|(i, start)| {
                (shard_base + i, start, shard_size.min(plan.cases.len() - start))
            })
            .collect();
        shard_base += epoch_shards.len();
        exec_from = plan.cases.len();
        let epoch_outcomes = execute_shards(
            profile,
            fault_index,
            template,
            &plan,
            &epoch_shards,
            workers,
            Some(effective),
            oracles,
            live,
            config.batch,
            span_origin,
        );

        // Score the epoch from its merged events and let the bandit observe
        // before the next epoch is planned.
        let rewards = fold_rewards(
            &epoch_outcomes,
            &arm_of,
            &seed_categories,
            arms.len(),
            &mut seen_faults,
            &mut seen_functions,
        );
        bandit.observe(&rewards);

        let start_statement = outcomes
            .last()
            .map(|o| o.stats.start_offset + o.stats.statements + 1)
            .unwrap_or(1);
        if let Some(m) = live {
            m.record_epoch(epoch, start_statement, epoch_budget);
        }
        if let (Some(sink), Some(start)) = (campaign_sink.as_mut(), epoch_span_start) {
            sink.record_since(
                "epoch",
                start,
                Some(format!("epoch {epoch}: budget {epoch_budget}")),
            );
        }
        epochs_out.push(EpochRealloc {
            epoch,
            start_statement,
            budget: epoch_budget,
            allocations: arms
                .iter()
                .enumerate()
                .map(|(a, arm)| ArmAlloc {
                    pattern: arm.pattern,
                    category: arm.category,
                    planned: quotas[a],
                    executed: planned[a],
                    score_milli: scores[a],
                })
                .collect(),
        });
        outcomes.extend(epoch_outcomes);
        if plan.cases.len() >= budget {
            break;
        }
    }
    // Flush anything planned but never executed — possible when the budget
    // is smaller than the seed corpus or every queue went dry before an
    // epoch got to run.
    if exec_from < plan.cases.len() {
        let parse_start = campaign_sink.as_ref().map(|s| s.now_ns());
        plan.prepare(template, telemetry.is_some());
        if let (Some(sink), Some(start)) = (campaign_sink.as_mut(), parse_start) {
            sink.record_since("parse", start, None);
        }
        let tail: Vec<(usize, usize, usize)> = (exec_from..plan.cases.len())
            .step_by(shard_size)
            .enumerate()
            .map(|(i, start)| {
                (shard_base + i, start, shard_size.min(plan.cases.len() - start))
            })
            .collect();
        outcomes.extend(execute_shards(
            profile,
            fault_index,
            template,
            &plan,
            &tail,
            workers,
            Some(effective),
            oracles,
            live,
            config.batch,
            span_origin,
        ));
    }
    (plan, outcomes, epochs_out)
}

/// One planning pass of the scheduler: round-robin across arm queues,
/// pushing each arm's next not-yet-planned case until the arm reaches its
/// quota, every queue is dry, or the plan reaches `target`. Duplicates
/// advance the cursor without consuming quota — the same rule the static
/// planner applies — so a quota buys `quota` *distinct* statements when the
/// queue has them. Pure: no engine, no clock, no worker count.
fn plan_round_robin(
    cases: &mut Vec<PlannedCase>,
    executed: &mut HashSet<String>,
    queues: &[Vec<(GeneratedCase, usize)>],
    cursors: &mut [usize],
    planned: &mut [usize],
    quotas: &[usize],
    target: usize,
) {
    'outer: loop {
        let mut progressed = false;
        for a in 0..queues.len() {
            if cases.len() >= target {
                break 'outer;
            }
            if planned[a] >= quotas[a] {
                continue;
            }
            while cursors[a] < queues[a].len() {
                let (case, seed) = &queues[a][cursors[a]];
                cursors[a] += 1;
                if executed.insert(case.sql.clone()) {
                    cases.push(PlannedCase {
                        sql: case.sql.clone(),
                        pattern: Some(case.pattern),
                        seed: *seed,
                    });
                    planned[a] += 1;
                    progressed = true;
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }
}

/// Folds one epoch's shard telemetry into per-arm rewards. Events are
/// walked in global statement order (shards sorted, indices monotonic), so
/// "first sighting" credit for faults and target functions is deterministic;
/// seed replays and oracle events carry no pattern and update the seen-sets
/// without crediting an arm.
fn fold_rewards(
    outcomes: &[ShardOutcome],
    arm_of: &HashMap<(PatternId, FunctionCategory), usize>,
    seed_categories: &[FunctionCategory],
    n_arms: usize,
    seen_faults: &mut HashSet<Arc<str>>,
    seen_functions: &mut HashSet<Arc<str>>,
) -> Vec<ArmReward> {
    let mut rewards = vec![ArmReward::default(); n_arms];
    let mut events: Vec<&StatementEvent> = outcomes
        .iter()
        .filter_map(|o| o.telemetry.as_ref())
        .flat_map(|t| t.events.iter())
        .collect();
    events.sort_by_key(|e| e.index);
    for e in events {
        let new_fault =
            e.fault_id.as_ref().is_some_and(|id| seen_faults.insert(Arc::clone(id)));
        let new_function =
            e.function.as_ref().is_some_and(|f| seen_functions.insert(Arc::clone(f)));
        let Some(&a) = e.pattern.and_then(|p| {
            let category = e
                .seed
                .and_then(|s| seed_categories.get(s).copied())
                .unwrap_or(FunctionCategory::System);
            arm_of.get(&(p, category))
        }) else {
            continue;
        };
        let r = &mut rewards[a];
        r.executed += 1;
        match e.outcome {
            OutcomeClass::Crash => r.crashes += 1,
            OutcomeClass::LogicBug => r.logic_bugs += 1,
            OutcomeClass::Error => r.errors += 1,
            OutcomeClass::Ok | OutcomeClass::ResourceLimit => {}
        }
        if new_fault {
            r.unique_bugs += 1;
        }
        if new_function {
            r.new_functions += 1;
        }
    }
    rewards
}

/// Plans the exact statement stream the campaign executes: phase-1 seeds,
/// then the round-robin over per-pattern generated cases, globally
/// deduplicated and truncated at the budget. Pure — no engine involved — so
/// the stream is identical however it is later sharded or scheduled.
fn build_plan(
    collection: &Collection,
    ctx: &GenCtx,
    config: &CampaignConfig,
    workers: usize,
) -> Plan {
    let mut plan: Vec<PlannedCase> = Vec::new();
    let mut executed: HashSet<String> = HashSet::new();

    // Seed provenance for the event journal: the root (first collected)
    // function expression of each seed statement, interned once.
    let seed_functions = seed_functions_of(collection);

    // Phase 1: the seeds themselves (they should be crash-free, but they
    // count toward the budget and they prime coverage).
    for (si, stmt) in collection.seeds.iter().enumerate() {
        if plan.len() >= config.max_statements {
            break;
        }
        let sql = stmt.to_string();
        if executed.insert(sql.clone()) {
            plan.push(PlannedCase { sql, pattern: None, seed: si });
        }
    }

    // Phase 2: pattern-based generation, interleaved round-robin across
    // patterns so every pattern gets budget share.
    let active: Vec<PatternId> = match &config.patterns {
        None => PATTERN_ORDER.to_vec(),
        Some(ps) => PATTERN_ORDER.iter().copied().filter(|p| ps.contains(p)).collect(),
    };
    let (per_pattern, generate_latency) =
        generate_cases(collection, ctx, config, &active, workers);
    let generated_per_pattern: Vec<(PatternId, usize)> =
        active.iter().zip(&per_pattern).map(|(&p, cases)| (p, cases.len())).collect();

    let mut cursors = vec![0usize; per_pattern.len()];
    'outer: loop {
        let mut progressed = false;
        for (pi, cases) in per_pattern.iter().enumerate() {
            if plan.len() >= config.max_statements {
                break 'outer;
            }
            while cursors[pi] < cases.len() {
                let (case, seed) = &cases[cursors[pi]];
                cursors[pi] += 1;
                if executed.insert(case.sql.clone()) {
                    plan.push(PlannedCase {
                        sql: case.sql.clone(),
                        pattern: Some(case.pattern),
                        seed: *seed,
                    });
                    progressed = true;
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    Plan {
        cases: plan,
        prepared: Vec::new(),
        shapes: Vec::new(),
        generated_per_pattern,
        seed_functions,
        generate_latency,
        prepare_latency: Vec::new(),
    }
}

/// Executes one prepared plan entry: the prepared AST when preparation
/// succeeded, else its pre-execution error replayed as the outcome — the
/// exact classification the string path produced for the same statement.
fn execute_planned(engine: &mut Engine, prepared: &Result<Prepared, SqlError>) -> ExecOutcome {
    match prepared {
        Ok(p) => engine.execute_prepared(p),
        Err(e) => ExecOutcome::Error(e.clone()),
    }
}

/// Generates every pattern's case vector, each case tagged with the seed it
/// derives from. Each pattern is independent, so the vectors can be produced
/// on worker threads; the output is positionally identical to the serial
/// loop for any worker count. The per-pattern wall-clock durations feed the
/// telemetry generate-stage histogram and never influence the plan.
fn generate_cases(
    collection: &Collection,
    ctx: &GenCtx,
    config: &CampaignConfig,
    active: &[PatternId],
    workers: usize,
) -> (Vec<Vec<(GeneratedCase, usize)>>, Vec<Duration>) {
    let generate_one = |pattern: PatternId| -> (Vec<(GeneratedCase, usize)>, Duration) {
        let t0 = Instant::now();
        // The cross-function patterns need wider per-seed budgets: their
        // search space is (seed × donor), not (seed × pool).
        let cap = match pattern {
            PatternId::P3_3 => config.per_seed_cap.max(640),
            PatternId::P2_3 => config.per_seed_cap.max(128),
            _ => config.per_seed_cap,
        };
        let mut tagged: Vec<(GeneratedCase, usize)> = Vec::new();
        let mut buf: Vec<GeneratedCase> = Vec::new();
        for (si, seed) in collection.seeds.iter().enumerate() {
            patterns::apply_salted(pattern, seed, ctx, cap, si, &mut buf);
            tagged.extend(buf.drain(..).map(|case| (case, si)));
        }
        (tagged, t0.elapsed())
    };
    if workers <= 1 || active.len() <= 1 {
        let mut cases = Vec::with_capacity(active.len());
        let mut durations = Vec::with_capacity(active.len());
        for &p in active {
            let (c, d) = generate_one(p);
            cases.push(c);
            durations.push(d);
        }
        return (cases, durations);
    }
    let next = AtomicUsize::new(0);
    type Generated = (usize, Vec<(GeneratedCase, usize)>, Duration);
    let done: Mutex<Vec<Generated>> = Mutex::new(Vec::with_capacity(active.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers.min(active.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&pattern) = active.get(i) else { break };
                let (cases, duration) = generate_one(pattern);
                done.lock().expect("generation results poisoned").push((i, cases, duration));
            });
        }
    });
    let mut v = done.into_inner().expect("generation results poisoned");
    v.sort_by_key(|&(i, _, _)| i);
    let mut cases = Vec::with_capacity(v.len());
    let mut durations = Vec::with_capacity(v.len());
    for (_, c, d) in v {
        cases.push(c);
        durations.push(d);
    }
    (cases, durations)
}

/// The per-shard telemetry recorder: event buffer, coverage snapshots, and
/// the execute latency histogram (the parse histogram is recorded centrally
/// by the plan's prepare pass). Only allocated when telemetry is on; the
/// `Off` path pays a single `Option` check per statement.
struct ShardObserver<'a> {
    opts: &'a TelemetryOptions,
    seed_functions: &'a [Option<Arc<str>>],
    fault_index: &'a FaultIndex<'a>,
    events: Vec<StatementEvent>,
    snapshots: Vec<(usize, Coverage)>,
    latency: StageLatency,
}

impl<'a> ShardObserver<'a> {
    fn new(
        opts: &'a TelemetryOptions,
        seed_functions: &'a [Option<Arc<str>>],
        fault_index: &'a FaultIndex<'a>,
        len: usize,
    ) -> Self {
        ShardObserver {
            opts,
            seed_functions,
            fault_index,
            events: Vec::with_capacity(len),
            snapshots: Vec::new(),
            latency: StageLatency::new(),
        }
    }

    /// Times the execution of one prepared statement. With the split entry
    /// points the stage histograms are genuinely disjoint: parse time is
    /// recorded once per statement by [`Plan::prepare`], and this measures
    /// only [`Engine::execute_prepared`] (or, for statements whose
    /// preparation failed, the replay of that error).
    fn execute_timed(
        &mut self,
        engine: &mut Engine,
        prepared: &Result<Prepared, SqlError>,
    ) -> ExecOutcome {
        let t = Instant::now();
        let outcome = execute_planned(engine, prepared);
        self.latency.execute.record(t.elapsed());
        outcome
    }

    /// Records the event for one executed statement, plus the coverage
    /// snapshot when the global index crosses the sampling interval.
    /// `logic` carries the multi-form oracle's fault id when the oracle
    /// flagged the statement; it overrides the surface outcome class, the
    /// same precedence the finding merge applies.
    fn observe(
        &mut self,
        engine: &Engine,
        case: &PlannedCase,
        shard: usize,
        index: usize,
        outcome: &ExecOutcome,
        logic: Option<&Arc<str>>,
    ) {
        let function = match outcome {
            ExecOutcome::Crash(c) if c.function.is_some() => {
                c.function.as_deref().map(Arc::from)
            }
            _ => self.seed_functions.get(case.seed).cloned().flatten(),
        };
        let (class, fault_id) = match (logic, outcome) {
            (Some(fault), _) => (OutcomeClass::LogicBug, Some(Arc::clone(fault))),
            (None, ExecOutcome::Crash(c)) => (
                OutcomeClass::of(outcome),
                Some(
                    self.fault_index
                        .get(c.fault_id.as_str())
                        .map(|(id, _)| Arc::clone(id))
                        .unwrap_or_else(|| Arc::from(c.fault_id.as_str())),
                ),
            ),
            (None, _) => (OutcomeClass::of(outcome), None),
        };
        self.events.push(StatementEvent {
            index,
            shard,
            seed: Some(case.seed),
            pattern: case.pattern,
            function,
            outcome: class,
            fault_id,
        });
        if index % self.opts.snapshot_interval.max(1) == 0 {
            self.snapshots.push((index, engine.coverage().clone()));
        }
    }

    fn finish(self, shard: usize, engine: &Engine) -> ShardTelemetry {
        ShardTelemetry {
            shard,
            events: self.events,
            snapshots: self.snapshots,
            final_coverage: engine.coverage().clone(),
            latency: self.latency,
        }
    }
}

/// Batch-executes the shape groups of one window of a shard, storing each
/// statement's precomputed `(outcome, amortized duration)` into `pre`.
///
/// Grouping is deterministic: shapes are visited in first-appearance order
/// and members stay in statement order, so the demux below replays the
/// exact serial classification. Groups smaller than
/// [`soft_engine::MIN_BATCH_GROUP`] are left to the scalar path — plan
/// compilation is a fixed cost that a couple of rows cannot amortize.
/// Statements the kernel
/// declines (`execute_batch_in` returning `None`) also fall back to the
/// scalar path, with no side effects to undo.
///
/// Correctness of executing a whole window up front: batchable statements
/// (no FROM, no subqueries, no volatile functions) read neither the catalog
/// nor mutable session state, so a mid-window crash-restore cannot change
/// any other member's outcome, and coverage — a monotone set union — is
/// identical at the window boundary whatever the intra-window execution
/// order. Windows end exactly at telemetry snapshot indices, so every
/// coverage snapshot observes the same set a serial walk would.
fn batch_window(
    engine: &mut Engine,
    prepared: &[Result<Prepared, SqlError>],
    shapes: &[Option<ShapeKey>],
    window: std::ops::Range<usize>,
    pre: &mut [Option<(ExecOutcome, Duration)>],
    arena: &mut BatchArena,
    sink: &mut Option<SpanSink>,
) {
    let mut order: Vec<ShapeKey> = Vec::new();
    let mut groups: HashMap<ShapeKey, Vec<usize>> = HashMap::new();
    for i in window {
        let Some(key) = shapes[i] else { continue };
        if prepared[i].is_err() {
            continue;
        }
        let members = groups.entry(key).or_default();
        if members.is_empty() {
            order.push(key);
        }
        members.push(i);
    }
    let mut members: Vec<&Prepared> = Vec::new();
    for key in order {
        let idxs = &groups[&key];
        if idxs.len() < MIN_BATCH_GROUP {
            continue;
        }
        members.clear();
        members.extend(
            idxs.iter().map(|&i| prepared[i].as_ref().expect("grouped statements prepared")),
        );
        let t = Instant::now();
        let span_start = sink.as_ref().map(|s| s.now_ns());
        let Some(outcomes) = engine.execute_batch_in(&members, arena) else { continue };
        if let (Some(sink), Some(start)) = (sink.as_mut(), span_start) {
            sink.record_since(
                "batch-group",
                start,
                Some(format!("{} statements", idxs.len())),
            );
        }
        let per_statement = t.elapsed() / idxs.len() as u32;
        for (&i, outcome) in idxs.iter().zip(outcomes) {
            pre[i] = Some((outcome, per_statement));
        }
    }
}

/// Executes one shard of the planned (and prepared) stream on a private
/// engine cloned from the template. Pure function of (profile, template,
/// shard range): no state is shared with other shards.
///
/// With `batch` on, the shard executes window by window: each window's
/// same-shape groups are evaluated as columnar batches up front
/// ([`batch_window`]), and the serial loop below then *demultiplexes* the
/// precomputed outcomes — every per-statement observation (telemetry event,
/// live counter, oracle check, finding, crash restore) happens at exactly
/// the point, in exactly the order, the scalar path performs it.
fn run_shard(
    profile: &DialectProfile,
    fault_index: &FaultIndex<'_>,
    template: &Engine,
    plan: &Plan,
    range: std::ops::Range<usize>,
    shard: usize,
    telemetry: Option<&TelemetryOptions>,
    oracles: Option<&OracleOptions>,
    live: Option<&LiveMetrics>,
    batch: bool,
    span_origin: Option<Instant>,
) -> ShardOutcome {
    let t0 = Instant::now();
    // The flight recorder: this worker owns the sink exclusively, so every
    // record is a plain Vec push — no locks, no atomics. Track `shard + 1`
    // keeps the campaign thread's track 0 distinct in the exported trace.
    let mut sink = span_origin.map(|origin| SpanSink::new(origin, shard as u64 + 1));
    let shard_span_start = sink.as_ref().map(|s| s.now_ns());
    let start_offset = range.start;
    let cases = &plan.cases[range.clone()];
    let prepared = &plan.prepared[range.clone()];
    let shapes = &plan.shapes[range];
    let mut engine = template.clone();
    // The batch plane: per-statement precomputed outcomes, one reusable
    // column arena for the whole shard, and the window cursor. Windows end
    // at coverage-snapshot indices (one window per shard when telemetry is
    // off) so snapshots observe exactly the serial coverage set.
    let mut arena = BatchArena::new();
    let mut pre: Vec<Option<(ExecOutcome, Duration)>> = Vec::new();
    if batch {
        pre.resize_with(cases.len(), || None);
    }
    let snapshot_interval = telemetry.map(|opts| opts.snapshot_interval.max(1));
    let mut window_end = 0usize;
    let mut found: HashSet<String> = HashSet::new();
    let mut findings: Vec<BugFinding> = Vec::new();
    let mut observer = telemetry
        .map(|opts| ShardObserver::new(opts, &plan.seed_functions, fault_index, cases.len()));
    // The live plane: this worker owns heartbeat slot `shard` exclusively
    // while the shard runs, so every update below is wait-free.
    let live = live.map(|m| (m, m.beats()));
    if let Some((m, beats)) = &live {
        m.shard_started(&beats[shard], shard);
    }
    let mut crashes = 0usize;
    let mut false_positives = 0usize;
    let mut errors = 0usize;
    let mut logic_bugs = 0usize;
    for (i, case) in cases.iter().enumerate() {
        if batch && i >= window_end {
            // Entering the next window: its end is the next global snapshot
            // index (or the shard end), and its shape groups batch-execute
            // now, against exactly the engine state a serial walk has at
            // this point.
            window_end = match snapshot_interval {
                Some(iv) => (((start_offset + i) / iv + 1) * iv - start_offset).min(cases.len()),
                None => cases.len(),
            };
            batch_window(
                &mut engine,
                prepared,
                shapes,
                i..window_end,
                &mut pre,
                &mut arena,
                &mut sink,
            );
        }
        let batched = pre.get_mut(i).and_then(Option::take);
        let from_batch = batched.is_some();
        let outcome = match batched {
            Some((outcome, spent)) => {
                // The execute histogram keeps one sample per statement:
                // batched statements record their amortized share of the
                // group's wall-clock.
                if let Some(obs) = &mut observer {
                    obs.latency.execute.record(spent);
                }
                outcome
            }
            None => {
                // Scalar execution gets its own span; batched statements
                // are already covered by the window's batch-group spans.
                let span_start = sink.as_ref().map(|s| s.now_ns());
                let outcome = match &mut observer {
                    Some(obs) => obs.execute_timed(&mut engine, &prepared[i]),
                    None => execute_planned(&mut engine, &prepared[i]),
                };
                if let (Some(sink), Some(start)) = (sink.as_mut(), span_start) {
                    sink.record_since("execute", start, None);
                }
                outcome
            }
        };
        // The multi-form oracle inspects every statement the crash plane
        // passed on. It re-executes the statement's forms on private clones
        // of the *template* (never this shard's engine), so the verdict is
        // a pure function of (template, statement) — shard state and worker
        // count cannot change it. A batched outcome *is* the prepared-path
        // outcome of a state-independent statement, so it doubles as the
        // oracle's reference form and saves the form-A re-execution.
        let logic = match (&outcome, oracles) {
            (ExecOutcome::Crash(_), _) | (_, None) => None,
            (_, Some(opts)) if !opts.multi_form => None,
            (_, Some(_)) => prepared[i].as_ref().ok().and_then(|p| {
                let span_start = sink.as_ref().map(|s| s.now_ns());
                let bug = if from_batch {
                    oracle::multi_form_check_with(template, &case.sql, p.statement(), &outcome)
                } else {
                    oracle::multi_form_check(template, &case.sql, p.statement())
                };
                if let (Some(sink), Some(start)) = (sink.as_mut(), span_start) {
                    sink.record_since("oracle", start, None);
                }
                bug.map(|bug| (oracle::multi_form_fault_id(p.statement()), bug))
            }),
        };
        let logic_fault: Option<Arc<str>> =
            logic.as_ref().map(|((id, _), _)| Arc::from(id.as_str()));
        if let Some(obs) = &mut observer {
            obs.observe(
                &engine,
                case,
                shard,
                start_offset + i + 1,
                &outcome,
                logic_fault.as_ref(),
            );
        }
        if let Some((m, beats)) = &live {
            let class = if logic.is_some() {
                OutcomeClass::LogicBug
            } else {
                OutcomeClass::of(&outcome)
            };
            m.record_statement(&beats[shard], start_offset + i + 1, case.pattern, class);
        }
        if let Some(((fault_id, function), bug)) = logic {
            logic_bugs += 1;
            if found.insert(fault_id.clone()) {
                if let Some((m, _)) = &live {
                    m.record_unique_candidate(&fault_id);
                }
                let category = function
                    .as_deref()
                    .and_then(|f| profile.registry.resolve(f).map(|d| d.category))
                    .unwrap_or(soft_types::category::FunctionCategory::System);
                findings.push(BugFinding {
                    fault_id,
                    dialect: profile.id,
                    kind: FindingKind::Logic(bug),
                    stage: Stage::Execution,
                    category,
                    credited_pattern: case.pattern.unwrap_or(PatternId::P1_2),
                    found_by_pattern: case.pattern.unwrap_or(PatternId::P1_2),
                    function,
                    seed_function: plan.seed_functions.get(case.seed).cloned().flatten(),
                    poc: case.sql.clone(),
                    statements_until_found: start_offset + i + 1,
                    fixed: false,
                });
            }
            // The statement is accounted as a wrong result; its surface
            // outcome class (rows, ok, error) does not also count below.
            continue;
        }
        match outcome {
            ExecOutcome::Crash(c) => {
                crashes += 1;
                if found.insert(c.fault_id.clone()) {
                    if let Some((m, _)) = &live {
                        m.record_unique_candidate(&c.fault_id);
                    }
                    // Look up the corpus entry for ground-truth metadata.
                    let spec = fault_index.get(c.fault_id.as_str()).map(|&(_, s)| s);
                    findings.push(BugFinding {
                        fault_id: c.fault_id.clone(),
                        dialect: profile.id,
                        kind: FindingKind::Crash(c.kind),
                        stage: c.stage,
                        category: spec
                            .map(|s| s.category)
                            .unwrap_or(soft_types::category::FunctionCategory::System),
                        credited_pattern: spec.map(|s| s.pattern).unwrap_or(PatternId::P1_2),
                        found_by_pattern: case.pattern.unwrap_or(PatternId::P1_2),
                        function: c.function.clone(),
                        seed_function: plan.seed_functions.get(case.seed).cloned().flatten(),
                        poc: case.sql.clone(),
                        statements_until_found: start_offset + i + 1,
                        fixed: spec.map(|s| s.fixed).unwrap_or(false),
                    });
                }
                // "Restart" the DBMS: snapshot-restore from the prepared
                // template — state-identical to reset + preparation replay,
                // without re-executing the preparation statements.
                engine.restore_database(template);
            }
            ExecOutcome::Error(SqlError::ResourceLimit(_)) => false_positives += 1,
            ExecOutcome::Error(_) => errors += 1,
            ExecOutcome::Rows(_) | ExecOutcome::Ok(_) => {}
        }
    }
    if let Some((m, beats)) = &live {
        m.shard_finished(&beats[shard], shard, engine.coverage());
    }
    if let (Some(sink), Some(start)) = (sink.as_mut(), shard_span_start) {
        sink.record_since("shard", start, Some(format!("{} statements", cases.len())));
    }
    ShardOutcome {
        stats: ShardStats {
            shard,
            start_offset,
            statements: cases.len(),
            crashes,
            errors,
            false_positives,
            logic_bugs,
        },
        findings,
        telemetry: observer.map(|obs| obs.finish(shard, &engine)),
        coverage: engine.coverage().clone(),
        nanos: t0.elapsed().as_nanos(),
        spans: sink.map(SpanSink::into_spans).unwrap_or_default(),
    }
}

/// Anything that can stream test statements at a target — the interface the
/// baseline tools implement for the Tables 5/6 comparison.
pub trait StatementGenerator {
    /// Tool name (for report labels).
    fn name(&self) -> &'static str;
    /// Produces the next statement, or `None` when the tool is exhausted.
    fn next_statement(&mut self) -> Option<String>;
}

/// Runs any statement generator against a profile under a budget,
/// measuring the same campaign metrics as [`run_soft`].
pub fn run_generator(
    profile: &DialectProfile,
    generator: &mut dyn StatementGenerator,
    max_statements: usize,
) -> CampaignReport {
    let fault_index = build_fault_index(profile);
    let mut engine = profile.engine();
    let mut statements = 0usize;
    let mut false_positives = 0usize;
    let mut errors = 0usize;
    let mut found: HashSet<String> = HashSet::new();
    let mut findings: Vec<BugFinding> = Vec::new();
    while statements < max_statements {
        let Some(sql) = generator.next_statement() else { break };
        statements += 1;
        // Same prepared discipline as the campaign shards: parse once, then
        // execute the AST (external generators stream, so prepare and
        // execute are back to back here).
        let prepared = engine.prepare(&sql);
        match execute_planned(&mut engine, &prepared) {
            ExecOutcome::Crash(c) => {
                if found.insert(c.fault_id.clone()) {
                    let spec = fault_index.get(c.fault_id.as_str()).map(|&(_, s)| s);
                    findings.push(BugFinding {
                        fault_id: c.fault_id.clone(),
                        dialect: profile.id,
                        kind: FindingKind::Crash(c.kind),
                        stage: c.stage,
                        category: spec
                            .map(|s| s.category)
                            .unwrap_or(soft_types::category::FunctionCategory::System),
                        credited_pattern: spec.map(|s| s.pattern).unwrap_or(PatternId::P1_2),
                        found_by_pattern: spec.map(|s| s.pattern).unwrap_or(PatternId::P1_2),
                        function: c.function.clone(),
                        // External generators carry no seed provenance.
                        seed_function: None,
                        poc: sql.clone(),
                        statements_until_found: statements,
                        fixed: spec.map(|s| s.fixed).unwrap_or(false),
                    });
                }
                engine.reset_database();
            }
            ExecOutcome::Error(SqlError::ResourceLimit(_)) => false_positives += 1,
            ExecOutcome::Error(_) => errors += 1,
            _ => {}
        }
    }
    CampaignReport {
        dialect: profile.id,
        statements_executed: statements,
        findings,
        false_positives,
        errors,
        functions_triggered: engine.coverage().functions_triggered(),
        branches_covered: engine.coverage().branches_covered(),
        // External generators are not pattern-based.
        generated_per_pattern: Vec::new(),
        // ... and they stream into a single engine, unsharded.
        shards: Vec::new(),
        // ... and they carry no plan provenance, so no journal either.
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_dialects::DialectId;

    #[test]
    fn small_budget_campaign_is_deterministic() {
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let cfg = CampaignConfig {
            max_statements: 3_000,
            per_seed_cap: 8,
            ..CampaignConfig::default()
        };
        let a = run_soft(&profile, &cfg);
        let b = run_soft(&profile, &cfg);
        assert_eq!(a.statements_executed, b.statements_executed);
        assert_eq!(
            a.findings.iter().map(|f| &f.fault_id).collect::<Vec<_>>(),
            b.findings.iter().map(|f| &f.fault_id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn campaign_finds_bugs_in_clickhouse() {
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let cfg = CampaignConfig {
            max_statements: 60_000,
            per_seed_cap: 48,
            ..CampaignConfig::default()
        };
        let report = run_soft(&profile, &cfg);
        assert!(
            !report.findings.is_empty(),
            "SOFT should find at least one of the 6 ClickHouse bugs"
        );
        // Findings carry unique fault ids.
        let ids: HashSet<&String> = report.findings.iter().map(|f| &f.fault_id).collect();
        assert_eq!(ids.len(), report.findings.len());
        // Coverage was recorded.
        assert!(report.functions_triggered > 100);
        assert!(report.branches_covered > 500);
    }

    #[test]
    fn budget_is_respected() {
        let profile = DialectProfile::build(DialectId::Monetdb);
        let cfg = CampaignConfig {
            max_statements: 500,
            per_seed_cap: 4,
            ..CampaignConfig::default()
        };
        let report = run_soft(&profile, &cfg);
        assert!(report.statements_executed <= 500);
    }

    #[test]
    fn shard_stats_partition_the_stream() {
        let profile = DialectProfile::build(DialectId::Monetdb);
        let cfg = CampaignConfig {
            max_statements: 1_000,
            per_seed_cap: 4,
            shard_statements: 128,
            ..CampaignConfig::default()
        };
        let report = run_soft(&profile, &cfg);
        assert!(!report.shards.is_empty());
        // Shards tile the stream: contiguous offsets, summed statements.
        let mut expect_offset = 0usize;
        for (i, s) in report.shards.iter().enumerate() {
            assert_eq!(s.shard, i);
            assert_eq!(s.start_offset, expect_offset);
            assert!(s.statements <= 128);
            expect_offset += s.statements;
        }
        assert_eq!(expect_offset, report.statements_executed);
        // Per-shard counters sum to the report totals.
        assert_eq!(
            report.shards.iter().map(|s| s.errors).sum::<usize>(),
            report.errors
        );
        assert_eq!(
            report.shards.iter().map(|s| s.false_positives).sum::<usize>(),
            report.false_positives
        );
    }

    #[test]
    fn telemetry_matches_the_off_run_and_journals_every_statement() {
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let cfg = CampaignConfig {
            max_statements: 2_000,
            per_seed_cap: 8,
            ..CampaignConfig::default()
        };
        let tcfg =
            CampaignConfig { telemetry: TelemetryConfig::with_interval(500), ..cfg.clone() };
        let off = run_soft(&profile, &cfg);
        let run = run_soft_parallel_timed(&profile, &tcfg, 2);
        let on = run.report;
        let tel = on.telemetry.as_ref().expect("telemetry recorded");

        // One event per executed statement, indices 1..=n in order.
        assert_eq!(tel.journal.events.len(), on.statements_executed);
        assert!(tel.journal.events.iter().enumerate().all(|(i, e)| e.index == i + 1));

        // Observation never changes results: stripping the telemetry field
        // yields exactly the telemetry-off report.
        let mut stripped = on.clone();
        stripped.telemetry = None;
        assert_eq!(stripped, off, "telemetry changed campaign results");

        // The bug curve replays the findings merge: same faults, same
        // discovery indices, same order.
        assert_eq!(tel.curves.bugs.len(), on.findings.len());
        for (b, f) in tel.curves.bugs.iter().zip(&on.findings) {
            assert_eq!(b.fault_id, f.fault_id);
            assert_eq!(b.statements, f.statements_until_found);
        }

        // Coverage snapshots land on interval multiples and grow.
        assert!(!tel.curves.coverage.is_empty());
        for p in &tel.curves.coverage {
            assert_eq!(p.statements % 500, 0);
        }
        assert!(tel
            .curves
            .coverage
            .windows(2)
            .all(|w| w[0].branches <= w[1].branches && w[0].statements < w[1].statements));

        // Wall-clock stage histograms: one execute (and parse) sample per
        // statement, one minimize sample per unique finding, at least one
        // generate sample per active pattern.
        let latency = run.stage_latency.expect("stage latency recorded");
        assert_eq!(latency.execute.samples() as usize, on.statements_executed);
        assert_eq!(latency.parse.samples(), latency.execute.samples());
        assert_eq!(latency.minimize.samples() as usize, on.findings.len());
        assert_eq!(latency.generate.samples() as usize, on.generated_per_pattern.len());

        // Yields reconcile with the report's counters.
        let executed: usize =
            tel.yields.per_pattern.values().map(|y| y.executed).sum();
        let seed_replays = tel.journal.events.iter().filter(|e| e.pattern.is_none()).count();
        assert_eq!(executed + seed_replays, on.statements_executed);
        let unique: usize = tel.yields.per_pattern.values().map(|y| y.unique_bugs).sum();
        assert_eq!(unique, on.findings.len());
    }

    #[test]
    fn prepared_path_matches_the_string_path_reference() {
        // The pre-split execution semantics, replayed verbatim: render each
        // planned case to SQL, execute the string, and on a crash reset the
        // database and re-execute the preparation statements. The prepared
        // pipeline (parse-once plan, AST execution, snapshot restore) must
        // be byte-identical to it.
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let cfg = CampaignConfig {
            max_statements: 2_000,
            per_seed_cap: 8,
            ..CampaignConfig::default()
        };
        let report = run_soft(&profile, &cfg);

        let collection = collect::collect(&profile);
        let ctx = GenCtx::new(&collection);
        let prep: Vec<String> =
            collection.preparation.iter().map(|s| s.to_string()).collect();
        let plan = build_plan(&collection, &ctx, &cfg, 1);
        let mut template = profile.engine();
        for sql in &prep {
            let _ = template.execute(sql);
        }

        let shard_size = cfg.shard_statements.max(1);
        let mut merged: Vec<(String, usize)> = Vec::new();
        let mut global_found: HashSet<String> = HashSet::new();
        let mut coverage = Coverage::new();
        let (mut statements, mut fp, mut errs) = (0usize, 0usize, 0usize);
        for (si, chunk) in plan.cases.chunks(shard_size).enumerate() {
            let start_offset = si * shard_size;
            let mut engine = template.clone();
            let mut found: HashSet<String> = HashSet::new();
            let mut shard_findings: Vec<(String, usize)> = Vec::new();
            for (i, case) in chunk.iter().enumerate() {
                statements += 1;
                match engine.execute(&case.sql) {
                    ExecOutcome::Crash(c) => {
                        if found.insert(c.fault_id.clone()) {
                            shard_findings.push((c.fault_id, start_offset + i + 1));
                        }
                        engine.reset_database();
                        for sql in &prep {
                            let _ = engine.execute(sql);
                        }
                    }
                    ExecOutcome::Error(SqlError::ResourceLimit(_)) => fp += 1,
                    ExecOutcome::Error(_) => errs += 1,
                    ExecOutcome::Rows(_) | ExecOutcome::Ok(_) => {}
                }
            }
            coverage.merge(engine.coverage());
            for f in shard_findings {
                if global_found.insert(f.0.clone()) {
                    merged.push(f);
                }
            }
        }

        assert_eq!(statements, report.statements_executed);
        assert_eq!(fp, report.false_positives);
        assert_eq!(errs, report.errors);
        assert_eq!(coverage.functions_triggered(), report.functions_triggered);
        assert_eq!(coverage.branches_covered(), report.branches_covered);
        assert_eq!(merged.len(), report.findings.len());
        for ((id, at), f) in merged.iter().zip(&report.findings) {
            assert_eq!(id, &f.fault_id);
            assert_eq!(*at, f.statements_until_found);
        }
    }

    #[test]
    fn parallel_equals_serial_and_reports_timings() {
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let cfg = CampaignConfig {
            max_statements: 2_000,
            per_seed_cap: 8,
            ..CampaignConfig::default()
        };
        let serial = run_soft(&profile, &cfg);
        let run = run_soft_parallel_timed(&profile, &cfg, 3);
        assert_eq!(serial, run.report, "worker count leaked into the report");
        assert_eq!(run.workers, 3);
        assert_eq!(run.shard_timings.len(), run.report.shards.len());
        assert!(run.statements_per_sec() > 0.0);
        for (t, s) in run.shard_timings.iter().zip(&run.report.shards) {
            assert_eq!(t.shard, s.shard);
            assert_eq!(t.statements, s.statements);
        }
    }

    #[test]
    fn oracles_flag_wrong_results_and_keep_worker_invariance() {
        // The ClickHouse seed corpus replays `SELECT toString(42)` in phase
        // 1 at any budget, and the shipped provenance quirk makes it return
        // "42.0" — the multi-form oracle must flag it, end to end.
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let cfg = CampaignConfig {
            max_statements: 3_000,
            per_seed_cap: 4,
            telemetry: TelemetryConfig::with_interval(500),
            oracles: OracleConfig::on(),
            ..CampaignConfig::default()
        };
        let serial = run_soft_parallel(&profile, &cfg, 1);
        let logic: Vec<&BugFinding> =
            serial.findings.iter().filter(|f| f.kind.logic().is_some()).collect();
        assert!(
            logic.iter().any(|f| f.fault_id == "logic-multiform-tostring"),
            "seeded toString(42) must trip the multi-form oracle; findings: {:?}",
            serial.findings.iter().map(|f| &f.fault_id).collect::<Vec<_>>()
        );
        for f in &logic {
            let bug = f.kind.logic().expect("logic finding");
            assert!(!bug.expected.is_empty() && !bug.actual.is_empty());
            assert_ne!(bug.expected, bug.actual);
        }
        // Shard counters and the journal both carry the wrong-result class.
        assert!(serial.shards.iter().map(|s| s.logic_bugs).sum::<usize>() > 0);
        let tel = serial.telemetry.as_ref().expect("telemetry on");
        assert!(tel
            .journal
            .events
            .iter()
            .any(|e| e.outcome == OutcomeClass::LogicBug
                && e.fault_id.as_deref() == Some("logic-multiform-tostring")));
        // The unique-bug curve steps on logic findings like crash findings.
        assert!(tel.curves.bugs.iter().any(|b| b.fault_id == "logic-multiform-tostring"));

        // Oracles are pure functions of (template, statement): the report —
        // telemetry included — stays byte-identical across worker counts.
        for workers in [2, 4, 7] {
            assert_eq!(
                run_soft_parallel(&profile, &cfg, workers),
                serial,
                "worker count leaked into the oracle-armed report"
            );
        }
    }

    #[test]
    fn oracles_off_is_the_default_and_changes_nothing() {
        let profile = DialectProfile::build(DialectId::Clickhouse);
        let cfg = CampaignConfig {
            max_statements: 1_000,
            per_seed_cap: 8,
            ..CampaignConfig::default()
        };
        assert!(!cfg.oracles.is_on());
        let report = run_soft(&profile, &cfg);
        assert!(report.findings.iter().all(|f| f.kind.crash().is_some()));
        assert!(report.shards.iter().all(|s| s.logic_bugs == 0));
    }
}
