//! The persistent bug/corpus repository: forensics bundles distilled into a
//! seed corpus for later campaigns.
//!
//! BugForge's central observation (PAPERS.md) is that a bug found once is a
//! *generator* of future bugs: its PoC re-fires as a regression tripwire,
//! and the boundary literals inside it are exactly the arguments that broke
//! one function and will plausibly break others — in the same dialect or a
//! different one. This module is that loop's persistence layer:
//!
//! ```text
//! <root>/
//!   repo.json                       # format marker + version
//!   entries/<sanitized-fault-id>/
//!     entry.json                    # provenance (flat JSON, one line)
//!     poc.sql                       # the minimized PoC
//!     literals.sql                  # its boundary literals, one per line
//! ```
//!
//! Campaigns consume a repository through
//! [`CampaignConfig::repository`](crate::campaign::CampaignConfig::repository):
//! same-dialect PoCs are appended to
//! the seed corpus (phase 1 re-executes them, so known faults re-fire
//! within the first statements — a regression tripwire), and *every*
//! entry's boundary literals — cross-dialect included — extend the P1.1
//! generation pool, so a ClickHouse PoC's literals become MonetDB seeds.
//!
//! Both extensions happen at *planning* time from data sorted by fault id,
//! so a repository-armed campaign keeps the byte-identical-at-any-worker-
//! count guarantee: the repository only changes what the plan contains,
//! never how it executes.

use crate::collect::Collection;
use crate::patterns::GenCtx;
use soft_obs::forensics::{sanitize_dir_name, Bundle};
use soft_obs::json::{self, JsonValue};
use soft_parser::ast::{Expr, SelectBody, SelectItem, Statement};
use soft_parser::visit;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// The repository format marker written to `repo.json`.
const FORMAT: &str = "soft-repo";
/// The repository format version.
const VERSION: i64 = 1;

/// One repository entry: a minimized PoC with provenance and its extracted
/// boundary literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepoEntry {
    /// The fault's stable id (also the entry directory name, sanitized).
    pub fault_id: String,
    /// Dialect display name the PoC fires on (e.g. `ClickHouse`).
    pub dialect: String,
    /// Crash kind abbreviation, or `LOGIC` for wrong-result findings.
    pub kind: String,
    /// Function category label.
    pub category: String,
    /// The pattern whose statement first triggered the fault.
    pub found_by_pattern: String,
    /// Function the fault fired in, when known.
    pub function: Option<String>,
    /// The oracle that raised it (logic findings only).
    pub oracle: Option<String>,
    /// Global statement index of first discovery in the source campaign.
    pub statements_until_found: usize,
    /// The minimized PoC.
    pub poc: String,
    /// Boundary literals extracted from the PoC's function arguments,
    /// deduplicated and sorted (deterministic cross-dialect seed material).
    pub literals: Vec<String>,
}

impl RepoEntry {
    /// Distills a forensics bundle into a repository entry.
    pub fn from_bundle(bundle: &Bundle) -> RepoEntry {
        RepoEntry {
            fault_id: bundle.fault_id.clone(),
            dialect: bundle.dialect.clone(),
            kind: bundle.kind.clone(),
            category: bundle.category.clone(),
            found_by_pattern: bundle.found_by_pattern.clone(),
            function: bundle.function.clone(),
            oracle: bundle.oracle.clone(),
            statements_until_found: bundle.statements_until_found,
            poc: bundle.poc.clone(),
            literals: boundary_literals_of(&bundle.poc),
        }
    }

    fn render_meta(&self) -> String {
        let opt = |key: &str, v: &Option<String>| match v {
            Some(s) => json::str_field(key, s),
            None => json::null_field(key),
        };
        let fields = [
            json::str_field("fault_id", &self.fault_id),
            json::str_field("dialect", &self.dialect),
            json::str_field("kind", &self.kind),
            json::str_field("category", &self.category),
            json::str_field("found_by_pattern", &self.found_by_pattern),
            opt("function", &self.function),
            opt("oracle", &self.oracle),
            json::num_field("statements_until_found", self.statements_until_found as i64),
        ];
        format!("{{{}}}\n", fields.join(", "))
    }
}

/// Running totals for one `ingest` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Entries created.
    pub added: usize,
    /// Existing entries overwritten (same fault id seen again).
    pub updated: usize,
}

/// Aggregate repository statistics (for `repro repo stats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepoStats {
    /// Total entries.
    pub entries: usize,
    /// Distinct boundary literals across all entries.
    pub literals: usize,
    /// `(dialect, entry count)` in dialect name order.
    pub per_dialect: Vec<(String, usize)>,
}

impl RepoStats {
    /// Renders the stats as the `repro repo stats` report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "entries: {}", self.entries);
        let _ = writeln!(out, "distinct boundary literals: {}", self.literals);
        for (dialect, n) in &self.per_dialect {
            let _ = writeln!(out, "  {dialect}: {n}");
        }
        out
    }
}

/// A persistent seed repository rooted at a directory.
#[derive(Debug, Clone)]
pub struct SeedRepository {
    root: PathBuf,
    /// Entries sorted by fault id — load order is part of the campaign's
    /// determinism contract.
    entries: Vec<RepoEntry>,
}

impl SeedRepository {
    /// Creates an empty repository at `root` (idempotent: re-initialising
    /// an existing repository keeps its entries).
    pub fn init(root: &Path) -> Result<SeedRepository, String> {
        fs::create_dir_all(root.join("entries"))
            .map_err(|e| format!("{}: {e}", root.display()))?;
        let marker = root.join("repo.json");
        if !marker.is_file() {
            let line = format!(
                "{{{}, {}}}\n",
                json::str_field("format", FORMAT),
                json::num_field("version", VERSION),
            );
            fs::write(&marker, line).map_err(|e| format!("{}: {e}", marker.display()))?;
        }
        SeedRepository::load(root)
    }

    /// Loads a repository, verifying the format marker and reading every
    /// entry (sorted by fault id).
    pub fn load(root: &Path) -> Result<SeedRepository, String> {
        let marker = root.join("repo.json");
        let text = fs::read_to_string(&marker)
            .map_err(|e| format!("{}: {e} (run `repro repo init` first?)", marker.display()))?;
        let obj = json::parse_object(text.trim())
            .map_err(|e| format!("{}: {e}", marker.display()))?;
        match obj.get("format").and_then(JsonValue::as_str) {
            Some(FORMAT) => {}
            other => {
                return Err(format!(
                    "{}: not a seed repository (format {other:?})",
                    marker.display()
                ))
            }
        }
        let mut entries = Vec::new();
        let entries_dir = root.join("entries");
        if entries_dir.is_dir() {
            let dir = fs::read_dir(&entries_dir)
                .map_err(|e| format!("{}: {e}", entries_dir.display()))?;
            for item in dir {
                let item = item.map_err(|e| format!("{}: {e}", entries_dir.display()))?;
                let dir = item.path();
                if dir.is_dir() && dir.join("entry.json").is_file() {
                    entries.push(read_entry(&dir)?);
                }
            }
        }
        entries.sort_by(|a, b| a.fault_id.cmp(&b.fault_id));
        Ok(SeedRepository { root: root.to_path_buf(), entries })
    }

    /// The repository's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entries, sorted by fault id.
    pub fn entries(&self) -> &[RepoEntry] {
        &self.entries
    }

    /// Ingests forensics bundles (a `findings/` root from `repro bundle` or
    /// `repro campaign --findings`), writing one entry per unique fault id.
    /// Re-ingesting a fault overwrites its entry — idempotent by
    /// construction.
    pub fn ingest(&mut self, bundles: &[Bundle]) -> Result<IngestStats, String> {
        let mut stats = IngestStats::default();
        for bundle in bundles {
            let entry = RepoEntry::from_bundle(bundle);
            let dir = self.root.join("entries").join(sanitize_dir_name(&entry.fault_id));
            let existed = dir.join("entry.json").is_file();
            fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            fs::write(dir.join("entry.json"), entry.render_meta())
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            fs::write(dir.join("poc.sql"), format!("{}\n", entry.poc.trim_end()))
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            let mut literals = entry.literals.join("\n");
            if !literals.is_empty() {
                literals.push('\n');
            }
            fs::write(dir.join("literals.sql"), literals)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            if existed {
                stats.updated += 1;
            } else {
                stats.added += 1;
            }
            self.entries.retain(|e| e.fault_id != entry.fault_id);
            self.entries.push(entry);
        }
        self.entries.sort_by(|a, b| a.fault_id.cmp(&b.fault_id));
        Ok(stats)
    }

    /// Aggregate statistics over the loaded entries.
    pub fn stats(&self) -> RepoStats {
        let mut per_dialect: Vec<(String, usize)> = Vec::new();
        let mut literals: HashSet<&str> = HashSet::new();
        for e in &self.entries {
            match per_dialect.iter_mut().find(|(d, _)| d == &e.dialect) {
                Some((_, n)) => *n += 1,
                None => per_dialect.push((e.dialect.clone(), 1)),
            }
            literals.extend(e.literals.iter().map(String::as_str));
        }
        per_dialect.sort();
        RepoStats { entries: self.entries.len(), literals: literals.len(), per_dialect }
    }

    /// Exports the repository as executable SQL: every PoC (optionally
    /// filtered to one dialect display name), with provenance comments.
    /// Stable across loads — entries render in fault-id order.
    pub fn export(&self, dialect: Option<&str>) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if dialect.is_some_and(|d| d != e.dialect) {
                continue;
            }
            let _ = writeln!(
                out,
                "-- {} [{} {}] on {} via {}",
                e.fault_id, e.kind, e.category, e.dialect, e.found_by_pattern
            );
            let _ = writeln!(out, "{};", e.poc.trim_end().trim_end_matches(';'));
        }
        out
    }

    /// The distinct boundary literals of every entry (all dialects), sorted
    /// — the cross-dialect seed material.
    pub fn boundary_literals(&self) -> Vec<String> {
        let mut out: Vec<String> =
            self.entries.iter().flat_map(|e| e.literals.iter().cloned()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Appends this repository's same-dialect PoCs to a campaign's seed
    /// corpus. The PoCs execute in phase 1, so a regression re-fires within
    /// the campaign's first statements.
    pub fn extend_seeds(&self, dialect_name: &str, collection: &mut Collection) {
        let mut seen: HashSet<String> =
            collection.seeds.iter().map(|s| s.to_string()).collect();
        for e in &self.entries {
            if e.dialect != dialect_name {
                continue;
            }
            let Ok(stmt) = soft_parser::parse_statement(&e.poc) else { continue };
            if !matches!(stmt, Statement::Select(_)) {
                continue;
            }
            if seen.insert(stmt.to_string()) {
                collection.seeds.push(stmt);
            }
        }
    }

    /// Extends the P1.1 boundary-literal pool with every entry's literals —
    /// cross-dialect by design: a literal that broke one engine is a prime
    /// candidate against the others.
    pub fn extend_pool(&self, ctx: &mut GenCtx) {
        let mut seen: HashSet<String> = ctx.pool.iter().map(|e| e.to_string()).collect();
        for lit in self.boundary_literals() {
            let Some(expr) = parse_literal(&lit) else { continue };
            if seen.insert(expr.to_string()) {
                ctx.pool.push(expr);
            }
        }
    }
}

fn read_entry(dir: &Path) -> Result<RepoEntry, String> {
    let meta_path = dir.join("entry.json");
    let meta = fs::read_to_string(&meta_path)
        .map_err(|e| format!("{}: {e}", meta_path.display()))?;
    let obj =
        json::parse_object(meta.trim()).map_err(|e| format!("{}: {e}", meta_path.display()))?;
    let str_key = |key: &str| -> Result<String, String> {
        obj.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{}: missing {key:?}", meta_path.display()))
    };
    let opt_key =
        |key: &str| -> Option<String> { obj.get(key).and_then(JsonValue::as_str).map(str::to_string) };
    let poc_path = dir.join("poc.sql");
    let poc = fs::read_to_string(&poc_path)
        .map(|s| s.trim_end().to_string())
        .map_err(|e| format!("{}: {e}", poc_path.display()))?;
    let literals = match fs::read_to_string(dir.join("literals.sql")) {
        Ok(text) => text.lines().map(str::to_string).collect(),
        Err(_) => Vec::new(),
    };
    Ok(RepoEntry {
        fault_id: str_key("fault_id")?,
        dialect: str_key("dialect")?,
        kind: str_key("kind")?,
        category: str_key("category")?,
        found_by_pattern: str_key("found_by_pattern")?,
        function: opt_key("function"),
        oracle: opt_key("oracle"),
        statements_until_found: obj
            .get("statements_until_found")
            .and_then(JsonValue::as_num)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| format!("{}: missing statement index", meta_path.display()))?,
        poc,
        literals,
    })
}

/// Extracts the boundary literals of a PoC: every non-call, non-column
/// argument of its function expressions, rendered, deduplicated, sorted.
fn boundary_literals_of(poc: &str) -> Vec<String> {
    let Ok(stmt) = soft_parser::parse_statement(poc) else { return Vec::new() };
    let mut out: Vec<String> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    for fx in visit::collect_function_exprs(&stmt) {
        for arg in &fx.args {
            if matches!(arg, Expr::Function(_) | Expr::Column(_) | Expr::Star) {
                continue;
            }
            let rendered = arg.to_string();
            if seen.insert(rendered.clone()) {
                out.push(rendered);
            }
        }
    }
    out.sort();
    out
}

/// Parses a rendered literal back into an expression via `SELECT <lit>`.
fn parse_literal(lit: &str) -> Option<Expr> {
    let stmt = soft_parser::parse_statement(&format!("SELECT {lit}")).ok()?;
    let Statement::Select(select) = stmt else { return None };
    let SelectBody::Query(query) = select.body else { return None };
    match query.items.into_iter().next()? {
        SelectItem::Expr { expr, .. } => Some(expr),
        SelectItem::Wildcard => Some(Expr::Star),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("soft-repo-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_bundle() -> Bundle {
        Bundle {
            fault_id: "clickhouse-string-npd-listing1-3".into(),
            dialect: "ClickHouse".into(),
            kind: "NPD".into(),
            stage: "execution".into(),
            category: "String".into(),
            credited_pattern: "P1.2".into(),
            found_by_pattern: "P1.2".into(),
            function: Some("substr".into()),
            seed_function: Some("substr".into()),
            bucket: "clickhouse/execution/NPD/substr".into(),
            statements_until_found: 1234,
            fixed: true,
            oracle: None,
            expected: None,
            actual: None,
            replay: "repro replay findings/clickhouse-string-npd-listing1-3".into(),
            poc: "SELECT substr('', 1, 99999999999999999999)".into(),
            original: "SELECT substr('', 1, 99999999999999999999)".into(),
        }
    }

    #[test]
    fn init_ingest_load_round_trips() {
        let root = temp_root("roundtrip");
        let mut repo = SeedRepository::init(&root).expect("init");
        assert!(repo.entries().is_empty());
        let stats = repo.ingest(&[sample_bundle()]).expect("ingest");
        assert_eq!(stats, IngestStats { added: 1, updated: 0 });

        let back = SeedRepository::load(&root).expect("load");
        assert_eq!(back.entries(), repo.entries());
        let entry = &back.entries()[0];
        assert_eq!(entry.fault_id, "clickhouse-string-npd-listing1-3");
        assert!(
            entry.literals.contains(&"''".to_string())
                && entry.literals.contains(&"99999999999999999999".to_string()),
            "literal extraction missed boundary arguments: {:?}",
            entry.literals
        );

        // Re-ingesting the same fault updates in place.
        let again = repo.ingest(&[sample_bundle()]).expect("re-ingest");
        assert_eq!(again, IngestStats { added: 0, updated: 1 });
        assert_eq!(SeedRepository::load(&root).expect("reload").entries().len(), 1);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn export_is_stable_and_filterable() {
        let root = temp_root("export");
        let mut repo = SeedRepository::init(&root).expect("init");
        let mut other = sample_bundle();
        other.fault_id = "monetdb-math-so-1".into();
        other.dialect = "MonetDB".into();
        other.poc = "SELECT repeat('x', 1000000)".into();
        repo.ingest(&[sample_bundle(), other]).expect("ingest");

        let all = repo.export(None);
        assert!(all.contains("clickhouse-string-npd-listing1-3"), "{all}");
        assert!(all.contains("SELECT repeat('x', 1000000);"), "{all}");
        let ch = repo.export(Some("ClickHouse"));
        assert!(!ch.contains("MonetDB"), "{ch}");
        // Stable across loads.
        assert_eq!(SeedRepository::load(&root).expect("reload").export(None), all);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn pool_extension_is_cross_dialect_and_deduplicated() {
        let root = temp_root("pool");
        let mut repo = SeedRepository::init(&root).expect("init");
        repo.ingest(&[sample_bundle()]).expect("ingest");

        let mut ctx = GenCtx {
            pool: crate::pool::boundary_literals(),
            donor_exprs: Vec::new(),
            donor_args: Vec::new(),
            wrappers: Vec::new(),
            cast_types: Vec::new(),
        };
        let before = ctx.pool.len();
        repo.extend_pool(&mut ctx);
        let after = ctx.pool.len();
        // `''` is already in the default pool; the 20-nines literal is too
        // (DIGIT_LENGTHS includes 20) — so extension must dedup, and any
        // genuinely new literal must land exactly once.
        let mut rendered: Vec<String> = ctx.pool.iter().map(|e| e.to_string()).collect();
        rendered.sort();
        let n = rendered.len();
        rendered.dedup();
        assert_eq!(n, rendered.len(), "pool extension introduced duplicates");
        assert!(after >= before);
        // Idempotent.
        repo.extend_pool(&mut ctx);
        assert_eq!(ctx.pool.len(), after);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn seed_extension_is_same_dialect_only() {
        let root = temp_root("seeds");
        let mut repo = SeedRepository::init(&root).expect("init");
        let mut other = sample_bundle();
        other.fault_id = "monetdb-math-so-1".into();
        other.dialect = "MonetDB".into();
        other.poc = "SELECT repeat('x', 1000000)".into();
        repo.ingest(&[sample_bundle(), other]).expect("ingest");

        let mut collection = Collection::default();
        repo.extend_seeds("ClickHouse", &mut collection);
        assert_eq!(collection.seeds.len(), 1);
        assert!(collection.seeds[0].to_string().contains("substr"));
        // Re-extending dedups.
        repo.extend_seeds("ClickHouse", &mut collection);
        assert_eq!(collection.seeds.len(), 1);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn load_rejects_non_repositories() {
        let root = temp_root("reject");
        fs::create_dir_all(&root).expect("mkdir");
        assert!(SeedRepository::load(&root).is_err(), "missing repo.json must fail");
        fs::write(root.join("repo.json"), "{\"format\": \"other\"}\n").expect("write");
        let err = SeedRepository::load(&root).expect_err("wrong format");
        assert!(err.contains("not a seed repository"), "{err}");
        fs::remove_dir_all(&root).expect("cleanup");
    }
}
