//! The `repro` command-line reference.
//!
//! One static table of subcommands, flags, and exit codes, rendered by
//! `repro help` and walked by the documentation-sync test in
//! `tests/doc_sync.rs`, so the CLI surface and the operator guide
//! (`docs/CAMPAIGNS.md`) cannot drift apart: every subcommand and flag
//! listed here must appear verbatim in the guide.

/// One `repro` subcommand (or subcommand family).
pub struct CommandSpec {
    /// The subcommand token as typed (`campaign`, `repo init`, ...).
    pub name: &'static str,
    /// Usage line, without the leading `repro`.
    pub usage: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Flags the subcommand accepts.
    pub flags: &'static [FlagSpec],
}

/// One command-line flag.
pub struct FlagSpec {
    /// The flag token (`--budget`).
    pub flag: &'static str,
    /// Placeholder for the flag's value; `None` for boolean switches.
    pub value: Option<&'static str>,
    /// One-line summary.
    pub summary: &'static str,
}

/// One exit code of the campaign contract.
pub struct ExitSpec {
    /// The process exit code.
    pub code: i32,
    /// What the code means.
    pub meaning: &'static str,
}

const BUDGET: FlagSpec = FlagSpec {
    flag: "--budget",
    value: Some("N"),
    summary: "statement budget (the wall-clock analogue; default 60000)",
};

/// Every `repro` subcommand, in help order.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "<artifact>",
        usage: "<artifact> [--budget N]",
        summary: "regenerate a paper artifact: table1 table2 table3 figure1 findings \
                  rootcauses table4 figure2 table5 table6 bugs24h cases ablation all",
        flags: &[BUDGET],
    },
    CommandSpec {
        name: "campaign",
        usage: "campaign <dialect> [flags]",
        summary: "run one telemetry-on campaign against a dialect",
        flags: &[
            BUDGET,
            FlagSpec {
                flag: "--workers",
                value: Some("N"),
                summary: "worker threads (default: available parallelism; never changes results)",
            },
            FlagSpec {
                flag: "--journal",
                value: Some("PATH"),
                summary: "write the JSONL event journal for `repro trace`",
            },
            FlagSpec {
                flag: "--metrics-addr",
                value: Some("ADDR"),
                summary: "serve live Prometheus metrics over HTTP while the campaign runs",
            },
            FlagSpec {
                flag: "--progress",
                value: None,
                summary: "tick a TTY progress line from the live metrics",
            },
            FlagSpec {
                flag: "--findings",
                value: Some("DIR"),
                summary: "write one forensics bundle per unique finding",
            },
            FlagSpec {
                flag: "--oracles",
                value: None,
                summary: "arm the wrong-result oracles (multi-form, pivot, differential)",
            },
            FlagSpec {
                flag: "--no-batch",
                value: None,
                summary: "disable columnar batch execution (identical report, slower)",
            },
            FlagSpec {
                flag: "--schedule",
                value: None,
                summary: "enable the epoch-based feedback scheduler (identical at any worker count)",
            },
            FlagSpec {
                flag: "--epochs",
                value: Some("N"),
                summary: "number of scheduler epochs (default 8; implies --schedule)",
            },
            FlagSpec {
                flag: "--repo",
                value: Some("DIR"),
                summary: "consume a seed repository: same-dialect PoCs as seeds, literals into the pool",
            },
            FlagSpec {
                flag: "--spans",
                value: Some("DIR"),
                summary: "arm the flight recorder and write the Chrome trace-event JSON under DIR",
            },
            FlagSpec {
                flag: "--stall-ms",
                value: Some("N"),
                summary: "watchdog stall threshold in milliseconds (default 5000)",
            },
        ],
    },
    CommandSpec {
        name: "trace",
        usage: "trace <journal.jsonl> [--csv DIR] [--chrome OUT.json]",
        summary: "offline journal analysis: outcomes, yields, curves, epoch reallocations",
        flags: &[
            FlagSpec {
                flag: "--csv",
                value: Some("DIR"),
                summary: "also export the tables and curves as CSV files",
            },
            FlagSpec {
                flag: "--chrome",
                value: Some("OUT.json"),
                summary: "export the journal as a logical Chrome trace-event file for Perfetto",
            },
        ],
    },
    CommandSpec {
        name: "compare",
        usage: "compare <a.jsonl> <b.jsonl> [--csv DIR]",
        summary: "diff two campaign journals: new/lost bugs, yield and coverage deltas, \
                  discovery-latency shift",
        flags: &[FlagSpec {
            flag: "--csv",
            value: Some("DIR"),
            summary: "also export the diff as CSV files",
        }],
    },
    CommandSpec {
        name: "bundle",
        usage: "bundle <dialect> [--budget N] [--out DIR]",
        summary: "run a campaign and write one forensics bundle per unique finding",
        flags: &[
            BUDGET,
            FlagSpec {
                flag: "--out",
                value: Some("DIR"),
                summary: "bundle output root (default: findings)",
            },
        ],
    },
    CommandSpec {
        name: "replay",
        usage: "replay <bundle-dir | findings-root>",
        summary: "replay forensics bundles and check each PoC still fires its fault",
        flags: &[],
    },
    CommandSpec {
        name: "repo init",
        usage: "repo init <dir>",
        summary: "create an empty seed repository (idempotent)",
        flags: &[],
    },
    CommandSpec {
        name: "repo ingest",
        usage: "repo ingest <dir> <findings-root>",
        summary: "distill forensics bundles into repository entries (PoC + boundary literals)",
        flags: &[],
    },
    CommandSpec {
        name: "repo stats",
        usage: "repo stats <dir>",
        summary: "print entry and literal counts, per dialect",
        flags: &[],
    },
    CommandSpec {
        name: "repo export",
        usage: "repo export <dir> [--dialect NAME]",
        summary: "print the stored PoCs as a SQL regression script",
        flags: &[FlagSpec {
            flag: "--dialect",
            value: Some("NAME"),
            summary: "restrict the export to one dialect's entries",
        }],
    },
    CommandSpec {
        name: "help",
        usage: "help",
        summary: "print this reference",
        flags: &[],
    },
];

/// The campaign exit-code contract (see also EXPERIMENTS.md).
pub const EXIT_CODES: &[ExitSpec] = &[
    ExitSpec { code: 0, meaning: "success; the campaign confirmed no findings" },
    ExitSpec { code: 1, meaning: "`repro replay` only: a bundle failed to reproduce its fault" },
    ExitSpec { code: 2, meaning: "usage error (unknown command, dialect, path, or malformed input)" },
    ExitSpec { code: 3, meaning: "the campaign confirmed at least one crash finding" },
    ExitSpec { code: 4, meaning: "the campaign confirmed wrong-result (logic) findings only" },
    ExitSpec {
        code: 5,
        meaning: "`repro compare` only: campaign B lost unique bugs that campaign A found",
    },
];

/// Renders the `repro help` reference from the command table.
pub fn render_help() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("repro — regenerates the paper's artifacts and runs campaigns\n\n");
    out.push_str("usage: repro <command> [flags]\n\ncommands:\n");
    for cmd in COMMANDS {
        let _ = writeln!(out, "  repro {}", cmd.usage);
        let _ = writeln!(out, "      {}", cmd.summary);
        for f in cmd.flags {
            let token = match f.value {
                Some(v) => format!("{} {v}", f.flag),
                None => f.flag.to_string(),
            };
            let _ = writeln!(out, "      {token:<22} {}", f.summary);
        }
    }
    out.push_str("\nexit codes:\n");
    for e in EXIT_CODES {
        let _ = writeln!(out, "  {}  {}", e.code, e.meaning);
    }
    out.push_str("\nsee docs/CAMPAIGNS.md for the operator guide.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_lists_every_command_and_flag() {
        let help = render_help();
        for cmd in COMMANDS {
            assert!(help.contains(cmd.usage), "usage missing from help: {}", cmd.usage);
            for f in cmd.flags {
                assert!(help.contains(f.flag), "flag missing from help: {}", f.flag);
            }
        }
        for e in EXIT_CODES {
            assert!(help.contains(e.meaning), "exit code {} missing", e.code);
        }
    }

    #[test]
    fn flags_are_unique_per_command() {
        for cmd in COMMANDS {
            let mut seen = std::collections::HashSet::new();
            for f in cmd.flags {
                assert!(seen.insert(f.flag), "duplicate flag {} on {}", f.flag, cmd.name);
            }
        }
    }
}
