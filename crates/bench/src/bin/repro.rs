//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage: `repro <artifact> [--budget N]` where artifact is one of
//! `table1 table2 table3 figure1 findings rootcauses table4 figure2
//! table5 table6 bugs24h cases all`, plus the campaign/triage commands:
//!
//! * `repro campaign <dialect> [--budget N] [--workers N] [--journal PATH]
//!   [--metrics-addr ADDR] [--progress] [--findings DIR] [--oracles]
//!   [--no-batch] [--spans DIR] [--stall-ms N]` runs one telemetry-on
//!   campaign, optionally exposing live Prometheus metrics plus the
//!   operator dashboard and `/events` stream over HTTP, ticking a TTY
//!   progress line, writing the JSONL event journal, emitting
//!   crash-forensics bundles, (with `--oracles`) arming the wrong-result
//!   oracles — multi-form, pivot, differential — (with `--no-batch`)
//!   falling back from columnar batch execution to the scalar prepared
//!   path, (with `--spans`) arming the flight recorder and exporting its
//!   Chrome trace-event JSON, and (with `--stall-ms`) tuning the shard
//!   watchdog's stall threshold;
//! * `repro trace <journal.jsonl> [--csv DIR] [--chrome OUT.json]`
//!   analyzes a journal offline: outcome classes, top-yield
//!   pattern/category tables, the §7.5-style growth curves — with `--csv`,
//!   the same data as CSV files, and with `--chrome`, the journal as a
//!   logical Chrome trace-event file for Perfetto. Damaged lines are
//!   skipped and counted on stderr; only an entirely unparseable journal
//!   is an error;
//! * `repro compare <a.jsonl> <b.jsonl> [--csv DIR]` diffs two campaign
//!   journals — new/lost unique bugs, per-pattern and per-category yield
//!   deltas, coverage deltas, and the discovery-latency histogram shift —
//!   exiting `5` when campaign B lost bugs campaign A found (the CI
//!   regression gate);
//! * `repro bundle <dialect> [--budget N] [--out DIR]` runs a campaign and
//!   writes one forensics bundle per unique finding;
//! * `repro replay <path>` replays a bundle directory (or every bundle
//!   under a findings root) and checks each PoC still fires its fault;
//! * `repro repo <init|ingest|stats|export>` manages a persistent seed
//!   repository: distilled findings (PoCs + boundary literals) that later
//!   campaigns consume via `repro campaign --repo DIR`;
//! * `repro help` prints the full command reference
//!   ([`soft_bench::cli::render_help`] — the same table the documentation
//!   sync test walks).
//!
//! The campaign scheduler: `--schedule` (or `--epochs N`) replaces the
//! static round-robin planner with the epoch-based bandit of
//! `soft_core::schedule` — plan-then-execute, so reports stay
//! byte-identical at any worker count.
//!
//! Exit codes (the campaign contract, see EXPERIMENTS.md): `0` success /
//! no findings, `2` usage error, `3` the campaign confirmed at least one
//! crash finding, `4` it confirmed wrong-result (logic) findings only —
//! crashes take precedence; `repro replay` exits `1` when a bundle fails
//! to replay, and `repro compare` exits `5` when campaign B lost unique
//! bugs campaign A found.

use soft_bench::compare::{compare_traces, render_compare, write_compare_csv};
use soft_bench::comparison::{render_metric, run_comparison, Tool, COMPARED_DIALECTS};
use soft_bench::trace::{dialect_by_name, render_trace, write_trace_csv};
use soft_core::campaign::{
    run_campaign, run_soft_parallel_live, run_soft_parallel_timed, CampaignConfig, LivePlane,
};
use soft_core::report::render_table4;
use soft_core::{
    OracleConfig, ScheduleConfig, ScheduleOptions, SeedRepository, TelemetryConfig,
    TelemetryOptions,
};
use soft_dialects::{all_cases, CaseKind, DialectId, DialectProfile};
use soft_obs::{Bundle, LiveMetrics, MetricsServer, TraceFile, WatchdogConfig};
use soft_study::{analysis, studied_bugs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let artifact = args.first().map(String::as_str).unwrap_or("all");
    let budget = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(60_000);
    match artifact {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "figure1" => figure1(),
        "findings" => findings(),
        "rootcauses" => rootcauses(),
        "table4" => table4(budget.max(150_000)),
        "figure2" => figure2(budget.max(150_000)),
        "table5" | "table6" => tables56(budget),
        "bugs24h" => bugs24h(budget / 3),
        "cases" => cases(),
        "ablation" => ablation(budget / 2),
        "campaign" => campaign(&args, budget),
        "trace" => trace(&args),
        "compare" => compare(&args),
        "bundle" => bundle(&args, budget),
        "replay" => replay(&args),
        "repo" => repo_cmd(&args),
        "help" | "--help" | "-h" => print!("{}", soft_bench::render_help()),
        "all" => {
            table1();
            table2();
            table3();
            figure1();
            findings();
            rootcauses();
            cases();
            tables56(budget);
            bugs24h(budget / 3);
            ablation(budget / 2);
            table4(budget.max(150_000));
            figure2(budget.max(150_000));
        }
        other => {
            eprintln!("unknown artifact {other:?}");
            eprintln!(
                "artifacts: table1 table2 table3 figure1 findings rootcauses table4 \
                 figure2 table5 table6 bugs24h cases ablation campaign trace compare \
                 bundle replay repo help all"
            );
            eprintln!("see `repro help` for the full reference");
            std::process::exit(2);
        }
    }
}

/// Parses `--flag VALUE` from the argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))
}

/// `repro campaign <dialect>` — one telemetry-on campaign with the journal
/// and yield surfaces printed, optionally persisted as JSONL, optionally
/// observed live over HTTP (`--metrics-addr`) and on the TTY
/// (`--progress`), optionally bundled for triage (`--findings`), optionally
/// armed with the wrong-result oracles (`--oracles`).
///
/// Exits `3` when the campaign confirms at least one crash finding and `4`
/// when it confirms wrong-result findings only — crashes take precedence —
/// so scripted sweeps can distinguish "ran clean" from "found bugs" and
/// tell the two planes apart.
fn campaign(args: &[String], budget: usize) {
    let Some(id) = args.get(1).and_then(|n| dialect_by_name(n)) else {
        eprintln!(
            "usage: repro campaign <dialect> [--budget N] [--workers N] [--journal PATH] \
             [--metrics-addr ADDR] [--progress] [--findings DIR] [--oracles] [--no-batch] \
             [--schedule] [--epochs N] [--repo DIR] [--spans DIR] [--stall-ms N]"
        );
        eprintln!(
            "dialects: {}",
            DialectId::ALL.map(|d| d.name()).join(" ")
        );
        std::process::exit(2);
    };
    let workers = flag_value(args, "--workers")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(soft_core::default_workers);
    let journal_path = flag_value(args, "--journal").map(std::path::PathBuf::from);
    let metrics_addr = flag_value(args, "--metrics-addr").cloned();
    let progress = args.iter().any(|a| a == "--progress");
    let findings_dir = flag_value(args, "--findings").map(std::path::PathBuf::from);
    let oracles = args.iter().any(|a| a == "--oracles");
    let no_batch = args.iter().any(|a| a == "--no-batch");
    let epochs = flag_value(args, "--epochs").and_then(|v| v.parse::<usize>().ok());
    let schedule = if args.iter().any(|a| a == "--schedule") || epochs.is_some() {
        let mut opts = ScheduleOptions::default();
        if let Some(n) = epochs {
            opts.epochs = n.max(1);
        }
        ScheduleConfig::On(opts)
    } else {
        ScheduleConfig::Off
    };
    let repository = flag_value(args, "--repo").map(std::path::PathBuf::from);
    let spans_dir = flag_value(args, "--spans").map(std::path::PathBuf::from);
    let stall_ms = flag_value(args, "--stall-ms").and_then(|v| v.parse::<u64>().ok());
    hr(&format!("Telemetry campaign — {}", id.name()));
    let snapshot_interval = (budget / 20).clamp(100, 10_000);
    let cfg = CampaignConfig {
        max_statements: budget,
        per_seed_cap: 64,
        telemetry: TelemetryConfig::On(TelemetryOptions {
            snapshot_interval,
            journal_path: journal_path.clone(),
        }),
        oracles: if oracles { OracleConfig::on() } else { OracleConfig::Off },
        batch: !no_batch,
        schedule,
        repository,
        ..CampaignConfig::default()
    };
    let profile = DialectProfile::build(id);

    // The live plane: one shared registry feeds the HTTP exposition server,
    // the progress ticker, and the shard watchdog.
    let metrics = Arc::new(LiveMetrics::new());
    let server = metrics_addr.as_deref().map(|addr| {
        match MetricsServer::bind(addr, Arc::clone(&metrics)) {
            Ok(s) => {
                println!(
                    "metrics: http://{}/metrics (also /, /status, /curve, /events)",
                    s.local_addr()
                );
                s
            }
            Err(e) => {
                eprintln!("cannot bind metrics server on {addr}: {e}");
                std::process::exit(2);
            }
        }
    });
    let watchdog = WatchdogConfig {
        stall_after: std::time::Duration::from_millis(
            stall_ms.unwrap_or(WatchdogConfig::default().stall_after.as_millis() as u64),
        ),
        ..WatchdogConfig::default()
    };
    let plane = LivePlane {
        metrics: Some(Arc::clone(&metrics)),
        watchdog: Some(watchdog),
        spans: spans_dir.is_some(),
    };
    let run = {
        let ticker_stop = Arc::new(AtomicBool::new(false));
        let ticker = progress.then(|| {
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&ticker_stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    eprint!("\r{}", metrics.snapshot().render_progress_line());
                    std::thread::sleep(std::time::Duration::from_millis(250));
                }
                eprintln!("\r{}", metrics.snapshot().render_progress_line());
            })
        });
        let run = run_soft_parallel_live(&profile, &cfg, workers, &plane);
        ticker_stop.store(true, Ordering::Release);
        if let Some(t) = ticker {
            let _ = t.join();
        }
        run
    };
    drop(server);
    let report = &run.report;
    println!(
        "{}: {} statements, {} workers, {:.0} statements/sec, {} bugs, {} errors, {} fps\n",
        id.name(),
        report.statements_executed,
        run.workers,
        run.statements_per_sec(),
        report.findings.len(),
        report.errors,
        report.false_positives
    );
    if let Some(w) = &run.watchdog {
        println!("{}", w.render_summary());
    }
    // The flight recorder: write the merged span trace as Chrome
    // trace-event JSON (open in Perfetto / chrome://tracing).
    if let (Some(dir), Some(spans)) = (&spans_dir, &run.spans) {
        let json = spans.to_chrome_json(&format!("soft-repro {}", id.name()));
        soft_obs::span::validate_json(&json).expect("span export is valid trace-event JSON");
        let path = dir.join(format!("{}_trace.json", id.name().to_lowercase()));
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, json)) {
            eprintln!("cannot write span trace {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("{}", spans.render_summary());
        println!("spans: {} ({} spans)", path.display(), spans.spans.len());
    }
    let telemetry = report.telemetry.as_ref().expect("telemetry was on");
    println!("{}", telemetry.yields.render_pattern_table());
    println!("{}", telemetry.yields.render_category_table());
    println!("{}", telemetry.curves.render());
    if !telemetry.epochs.is_empty() {
        println!("{}", soft_bench::trace::render_epochs(&telemetry.epochs));
    }
    if let Some(latency) = &run.stage_latency {
        println!("{}", latency.render());
    }
    if let Some(path) = &journal_path {
        println!("journal: {} ({} events)", path.display(), telemetry.journal.events.len());
    }
    if let Some(dir) = &findings_dir {
        match soft_core::write_campaign_bundles(&profile, report, dir) {
            Ok(dirs) => println!("findings: {} bundle(s) under {}", dirs.len(), dir.display()),
            Err(e) => {
                eprintln!("cannot write findings under {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }
    // Crash findings take precedence over wrong-result findings: a run that
    // confirmed both exits 3, a logic-only run exits 4, a clean run exits 0.
    if report.crash_count() > 0 {
        std::process::exit(3);
    }
    if report.logic_count() > 0 {
        std::process::exit(4);
    }
}

/// Reads and leniently parses one journal: damaged lines are skipped and
/// counted on stderr; only an unreadable file or an entirely unparseable
/// journal exits `2`.
fn read_journal(path: &str) -> TraceFile {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match TraceFile::parse_lenient(&text) {
        Ok((trace, skipped)) => {
            if skipped > 0 {
                eprintln!("{path}: skipped {skipped} malformed line(s)");
            }
            trace
        }
        Err(e) => {
            eprintln!("malformed journal {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// `repro trace <journal.jsonl>` — offline journal analysis, optionally
/// exporting the tables and curves as CSV (`--csv DIR`) and the journal's
/// logical timeline as a Chrome trace-event file (`--chrome OUT.json`).
fn trace(args: &[String]) {
    let Some(path) = args.get(1).filter(|p| !p.starts_with("--")) else {
        eprintln!("usage: repro trace <journal.jsonl> [--csv DIR] [--chrome OUT.json]");
        std::process::exit(2);
    };
    let trace = read_journal(path);
    print!("{}", render_trace(&trace));
    if let Some(dir) = flag_value(args, "--csv").map(std::path::PathBuf::from) {
        match write_trace_csv(&trace, &dir) {
            Ok(written) => {
                for p in written {
                    println!("csv: {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("cannot write CSV under {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }
    if let Some(out) = flag_value(args, "--chrome") {
        let spans = soft_obs::span::journal_trace(&trace);
        let dialect = trace.dialect.as_deref().unwrap_or("journal");
        let json = spans.to_chrome_json(&format!("soft-repro {dialect}"));
        soft_obs::span::validate_json(&json).expect("span export is valid trace-event JSON");
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(2);
        }
        println!("chrome trace: {out} ({} spans)", spans.spans.len());
    }
}

/// `repro compare <a.jsonl> <b.jsonl>` — diffs two campaign journals:
/// new/lost unique bugs, yield and coverage deltas, and the
/// discovery-latency shift. Exits `5` when campaign B lost bugs campaign A
/// found — the CI regression gate.
fn compare(args: &[String]) {
    let mut paths = args.iter().skip(1).filter(|p| !p.starts_with("--"));
    let (Some(path_a), Some(path_b)) = (paths.next(), paths.next()) else {
        eprintln!("usage: repro compare <a.jsonl> <b.jsonl> [--csv DIR]");
        std::process::exit(2);
    };
    let a = read_journal(path_a);
    let b = read_journal(path_b);
    let report = compare_traces(&a, &b);
    print!("{}", render_compare(&report));
    if let Some(dir) = flag_value(args, "--csv").map(std::path::PathBuf::from) {
        match write_compare_csv(&report, &dir) {
            Ok(written) => {
                for p in written {
                    println!("csv: {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("cannot write CSV under {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }
    if !report.lost_bugs.is_empty() {
        eprintln!("REGRESSION: campaign B lost {} unique bug(s)", report.lost_bugs.len());
        std::process::exit(5);
    }
}

/// `repro bundle <dialect> [--budget N] [--out DIR]` — runs a campaign and
/// writes one crash-forensics bundle per unique finding. Exits `0` even
/// when findings exist: producing bundles is this command's purpose.
fn bundle(args: &[String], budget: usize) {
    let Some(id) = args.get(1).and_then(|n| dialect_by_name(n)) else {
        eprintln!("usage: repro bundle <dialect> [--budget N] [--out DIR]");
        eprintln!("dialects: {}", DialectId::ALL.map(|d| d.name()).join(" "));
        std::process::exit(2);
    };
    let out = flag_value(args, "--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("findings"));
    hr(&format!("Forensics bundles — {}", id.name()));
    let profile = DialectProfile::build(id);
    let cfg =
        CampaignConfig { max_statements: budget, per_seed_cap: 64, ..CampaignConfig::default() };
    let report = run_campaign(&profile, &cfg);
    println!(
        "{}: {} statements, {} unique finding(s)",
        id.name(),
        report.statements_executed,
        report.findings.len()
    );
    match soft_core::write_campaign_bundles(&profile, &report, &out) {
        Ok(dirs) => {
            for dir in &dirs {
                let bundle = Bundle::read(dir).expect("just-written bundle reads back");
                println!("  {}", bundle.render_summary());
                println!("    -> {}", dir.display());
            }
            println!("{} bundle(s) under {}", dirs.len(), out.display());
        }
        Err(e) => {
            eprintln!("cannot write bundles under {}: {e}", out.display());
            std::process::exit(2);
        }
    }
}

/// `repro replay <path>` — replays one bundle directory, or every bundle
/// under a findings root. Exits `1` when any PoC fails to reproduce its
/// recorded fault.
fn replay(args: &[String]) {
    let Some(path) = args.get(1) else {
        eprintln!("usage: repro replay <bundle-dir | findings-root>");
        std::process::exit(2);
    };
    let path = std::path::Path::new(path);
    if path.join("meta.json").is_file() {
        let bundle = match Bundle::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read bundle {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        match soft_core::replay_bundle(&bundle) {
            Ok(()) => println!("replayed: {}", bundle.render_summary()),
            Err(e) => {
                eprintln!("replay FAILED: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match soft_core::replay_all(path) {
            Ok(n) => println!("replayed {n} bundle(s) under {}", path.display()),
            Err(failures) => {
                for f in &failures {
                    eprintln!("replay FAILED: {f}");
                }
                std::process::exit(1);
            }
        }
    }
}

/// `repro repo <init|ingest|stats|export>` — the persistent seed
/// repository: one campaign's distilled findings (minimized PoCs plus the
/// boundary literals inside them) stored as plain files, consumed by later
/// campaigns via `repro campaign --repo DIR`. Exits `2` on any usage or
/// I/O error; every subcommand is idempotent.
fn repo_cmd(args: &[String]) {
    fn repo_usage() -> ! {
        eprintln!("usage: repro repo <subcommand>");
        eprintln!("  repro repo init <dir>");
        eprintln!("  repro repo ingest <dir> <findings-root>");
        eprintln!("  repro repo stats <dir>");
        eprintln!("  repro repo export <dir> [--dialect NAME]");
        std::process::exit(2);
    }
    fn load_or_exit(dir: &std::path::Path) -> SeedRepository {
        match SeedRepository::load(dir) {
            Ok(repo) => repo,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    let Some(sub) = args.get(1).map(String::as_str) else { repo_usage() };
    let Some(dir) = args.get(2).map(std::path::Path::new) else { repo_usage() };
    match sub {
        "init" => match SeedRepository::init(dir) {
            Ok(repo) => println!(
                "repository at {} ({} entries)",
                repo.root().display(),
                repo.entries().len()
            ),
            Err(e) => {
                eprintln!("cannot init repository: {e}");
                std::process::exit(2);
            }
        },
        "ingest" => {
            let Some(root) = args.get(3) else { repo_usage() };
            let bundles = match Bundle::read_all(std::path::Path::new(root)) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot read findings under {root}: {e}");
                    std::process::exit(2);
                }
            };
            let mut repo = load_or_exit(dir);
            match repo.ingest(&bundles) {
                Ok(stats) => println!(
                    "ingested {} bundle(s): {} added, {} updated ({} entries total)",
                    bundles.len(),
                    stats.added,
                    stats.updated,
                    repo.entries().len()
                ),
                Err(e) => {
                    eprintln!("ingest failed: {e}");
                    std::process::exit(2);
                }
            }
        }
        "stats" => print!("{}", load_or_exit(dir).stats().render()),
        "export" => {
            let dialect = flag_value(args, "--dialect").map(String::as_str);
            print!("{}", load_or_exit(dir).export(dialect));
        }
        _ => repo_usage(),
    }
}

fn hr(title: &str) {
    println!("\n================ {title} ================");
}

fn table1() {
    hr("Table 1 — studied bugs per DBMS");
    let bugs = studied_bugs();
    println!("{:<12} {:>8} {:>8}", "DBMS", "measured", "paper");
    for ((dbms, n), (pname, pn)) in
        analysis::table1(&bugs).iter().zip(analysis::paper::TABLE1)
    {
        println!("{:<12} {:>8} {:>8}", dbms.name(), n, pn);
        assert_eq!(dbms.name(), pname);
    }
    println!("{:<12} {:>8} {:>8}", "Total", bugs.len(), analysis::paper::TOTAL_BUGS);
}

fn table2() {
    hr("Table 2 — function expressions per bug-inducing statement");
    let hist = analysis::table2(&studied_bugs());
    println!("{:<24} {:>5} {:>5} {:>5} {:>5} {:>5}", "occurrences", 1, 2, 3, 4, ">=5");
    print!("{:<24}", "measured statements");
    for v in hist {
        print!(" {v:>5}");
    }
    println!();
    print!("{:<24}", "paper");
    for v in analysis::paper::TABLE2 {
        print!(" {v:>5}");
    }
    println!();
}

fn table3() {
    hr("Table 3 — literal examples generated by Patterns 1.3 / 1.4");
    // Demonstrate the two patterns on the paper's example literals.
    use soft_core::patterns::{apply, GenCtx};
    use soft_engine::PatternId;
    let profile = DialectProfile::build(DialectId::Mariadb);
    let ctx = GenCtx::new(&soft_core::collect::collect(&profile));
    for (seed, pattern) in [
        ("SELECT FLOOR(0)", PatternId::P1_3),
        ("SELECT JSON_VALID('{\"key\": 0}')", PatternId::P1_3),
        ("SELECT JSON_VALID('{\"key\": 0}')", PatternId::P1_4),
        ("SELECT FORMAT('0', 50, 'de_DE')", PatternId::P1_3),
    ] {
        let stmt = soft_parser::parse_statement(seed).expect("valid seed");
        let mut cases = Vec::new();
        apply(pattern, &stmt, &ctx, 3, &mut cases);
        println!("{seed}  --{}-->", pattern.label());
        for c in cases.iter().take(2) {
            let display = if c.sql.len() > 100 {
                format!("{}...", &c.sql[..100])
            } else {
                c.sql.clone()
            };
            println!("    {display}");
        }
    }
}

fn figure1() {
    hr("Figure 1 — occurrences and unique functions per category");
    let fig = analysis::figure1(&studied_bugs());
    println!("{:<12} {:>12} {:>10}", "category", "occurrences", "unique");
    for (cat, occ, uniq) in &fig {
        println!("{:<12} {:>12} {:>10}", cat.label(), occ, uniq);
    }
    println!(
        "paper anchors: string {}/{} (measured {}/{}), aggregate {} (measured {})",
        analysis::paper::STRING_OCCURRENCES,
        analysis::paper::STRING_UNIQUE,
        fig[0].1,
        fig[0].2,
        analysis::paper::AGGREGATE_OCCURRENCES,
        fig[1].1
    );
}

fn findings() {
    hr("Findings 1-4");
    let bugs = studied_bugs();
    let f1 = analysis::finding1(&bugs);
    println!(
        "Finding 1: {}/{} execution, {} optimization, {} parsing (paper: 161/230, 45, 24)",
        f1.execution, f1.with_backtrace, f1.optimization, f1.parsing
    );
    println!(
        "Finding 2: {} total occurrences (paper: {})",
        analysis::total_occurrences(&bugs),
        analysis::paper::TOTAL_OCCURRENCES
    );
    println!(
        "Finding 3: {}/318 bugs with <=2 function expressions (paper: 278, 87.5%)",
        analysis::finding3(&bugs)
    );
    let f4 = analysis::finding4(&bugs);
    println!(
        "Finding 4: {} table+data, {} no table, {} empty table (paper: 151/132/35)",
        f4[0].1, f4[1].1, f4[2].1
    );
}

fn rootcauses() {
    hr("Section 5 — root causes");
    let rc = analysis::root_causes(&studied_bugs());
    println!(
        "boundary literals {} (extreme {}, empty/NULL {}, crafted {})",
        rc.literal, rc.literal_extreme, rc.literal_empty_null, rc.literal_crafted
    );
    println!("boundary castings  {}", rc.casting);
    println!("nested functions   {}", rc.nested);
    println!(
        "other: config {}, table defs {}, syntax {}",
        rc.configuration, rc.table_definition, rc.syntax
    );
    println!(
        "boundary share: {}/318 = {:.1}% (paper: 278/318 = 87.4%)",
        rc.boundary_total(),
        100.0 * rc.boundary_total() as f64 / 318.0
    );
}

fn table4(budget: usize) {
    hr("Table 4 — SOFT campaign against all seven targets");
    println!("(statement budget {budget} per target — the two-week analogue)\n");
    let mut reports = Vec::new();
    let mut groups = [0usize; 3];
    let cfg =
        CampaignConfig { max_statements: budget, per_seed_cap: 64, ..CampaignConfig::default() };
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        let run = run_soft_parallel_timed(&profile, &cfg, cfg.resolved_workers());
        println!(
            "{:<12} {} workers, {:.0} statements/sec over {} shards",
            id.name(),
            run.workers,
            run.statements_per_sec(),
            run.report.shards.len()
        );
        let report = run.report;
        let g = report.by_found_group();
        for i in 0..3 {
            groups[i] += g[i];
        }
        println!(
            "{:<12} {:>3}/{} bugs found, {} false positives, {} statements",
            id.name(),
            report.findings.len(),
            profile.faults.len(),
            report.false_positives,
            report.statements_executed
        );
        reports.push(report);
    }
    println!();
    println!("{}", render_table4(&reports));
    let total: usize = reports.iter().map(|r| r.findings.len()).sum();
    println!(
        "found-by pattern groups: P1.x {} / P2.x {} / P3.x {} (paper: 56/28/48)",
        groups[0], groups[1], groups[2]
    );
    println!("total: {total}/132 (paper: 132, of which 97 fixed)");
    let mut kind_counts = std::collections::BTreeMap::new();
    for r in &reports {
        for (k, n) in r.by_kind() {
            *kind_counts.entry(k.abbrev()).or_insert(0usize) += n;
        }
    }
    println!("by kind: {kind_counts:?}");
    println!("(paper 7.3: 61 NPD, 29 SEGV, 12-13 HBOF, 4 GBOF, 3 UAF, 6-7 SO, 2 DBZ, 14 AF)");
}

fn figure2(budget: usize) {
    hr("Figure 2 — developer feedback (status ledger substitute)");
    println!(
        "Figure 2 is a screenshot of human communication and is not\n\
         reproducible; the corresponding machine-checkable artifact is the\n\
         per-bug confirmed/fixed ledger:\n"
    );
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        let report = run_campaign(
            &profile,
            &CampaignConfig { max_statements: budget, per_seed_cap: 64, ..CampaignConfig::default() },
        );
        println!(
            "{:<12} {} confirmed, {} fixed",
            id.name(),
            report.findings.len(),
            report.fixed_count()
        );
    }
}

fn tables56(budget: usize) {
    hr("Tables 5 & 6 — tool comparison");
    println!("(statement budget {budget} per tool per target — the 24 h analogue)\n");
    let results = run_comparison(budget);
    println!(
        "{}",
        render_metric(&results, |r| r.functions, "Table 5 — triggered built-in functions")
    );
    println!(
        "{}",
        render_metric(
            &results,
            |r| r.branches,
            "Table 6 — covered branches of the SQL function components"
        )
    );
    let violations = soft_bench::check_shape(&results);
    if violations.is_empty() {
        println!("shape check: all of the paper's qualitative claims hold");
    } else {
        println!("shape check violations: {violations:?}");
    }
}

fn bugs24h(budget: usize) {
    hr("Section 7.5 — unique bugs in the time-boxed run");
    println!("(statement budget {budget} per tool per target)\n");
    let results = run_comparison(budget);
    println!("{}", render_metric(&results, |r| r.bugs, "Unique SQL function bugs"));
    let soft_total: usize = results
        .iter()
        .filter(|r| r.tool == Tool::Soft && COMPARED_DIALECTS.contains(&r.dialect))
        .map(|r| r.bugs)
        .sum();
    let baseline_total: usize =
        results.iter().filter(|r| r.tool != Tool::Soft).map(|r| r.bugs).sum();
    println!(
        "SOFT: {soft_total} unique bugs (paper: 22 in 24 h); baselines: {baseline_total} (paper: 0)"
    );
}

fn cases() {
    hr("Case studies — Listings 1, 3-11");
    for case in all_cases() {
        println!("\n{} — {}", case.listing, case.reference);
        println!("  paper PoC: {}", case.paper_poc);
        match case.kind {
            CaseKind::Studied => {
                let mut e = soft_engine::Engine::with_default_functions(Default::default());
                let out = e.execute(case.paper_poc);
                println!("  guarded engine outcome: {}", summarize(&out));
            }
            CaseKind::Found { dialect, .. } => {
                let (fault_id, witness) = soft_dialects::cases::resolve_found_case(&case)
                    .expect("corpus fault exists");
                let profile = DialectProfile::build(dialect);
                let mut engine = profile.engine();
                let out = engine.execute(&witness);
                println!("  corpus fault: {fault_id}");
                println!("  witness: {witness}");
                println!("  faulty engine outcome: {}", summarize(&out));
            }
        }
    }
}

fn ablation(budget: usize) {
    hr("Ablation — bugs reachable per pattern group");
    println!("(statement budget {budget} per target per arm)\n");
    let results = soft_bench::run_ablation(budget);
    println!("{}", soft_bench::render_ablation(&results));
    println!(
        "The groups partition the corpus: literal patterns cannot construct\n\
         cast or nested-function provenance, and vice versa — the taxonomy\n\
         of section 5 made operational."
    );
}

fn summarize(out: &soft_engine::ExecOutcome) -> String {
    match out {
        soft_engine::ExecOutcome::Rows(rs) => match rs.scalar() {
            Some(v) => format!("rows (scalar = {})", v.render()),
            None => format!("rows ({}x{})", rs.rows.len(), rs.columns.len()),
        },
        soft_engine::ExecOutcome::Ok(m) => format!("ok ({m})"),
        soft_engine::ExecOutcome::Error(e) => format!("error ({e})"),
        soft_engine::ExecOutcome::Crash(c) => format!("CRASH ({c})"),
    }
}
