fn main() {
    use soft_core::campaign::{run_soft, CampaignConfig};
    use soft_dialects::{DialectId, DialectProfile};
    let cfg = CampaignConfig::default();
    let mut total = 0;
    let mut expected = 0;
    for id in DialectId::ALL {
        let p = DialectProfile::build(id);
        let t0 = std::time::Instant::now();
        let r = run_soft(&p, &cfg);
        println!(
            "{:<12} found {:>2}/{:<2}  stmts {:>6}  fns {:>4}  branches {:>6}  fps {:>3} errs {:>6}  [{:?}]",
            id.name(), r.findings.len(), p.faults.len(), r.statements_executed,
            r.functions_triggered, r.branches_covered, r.false_positives, r.errors, t0.elapsed()
        );
        let missing: Vec<&str> = p.faults.iter()
            .filter(|f| !r.findings.iter().any(|x| x.fault_id == f.spec.id))
            .map(|f| f.spec.id.as_str()).collect();
        if !missing.is_empty() { println!("   missing: {missing:?}"); }
        // found-by vs credited groups
        let mut agree=0; for f in &r.findings { if f.found_by_pattern.group()==f.credited_pattern.group() {agree+=1;} else { println!("   DISAGREE {}: credited {} found-by {} via {}", f.fault_id, f.credited_pattern, f.found_by_pattern, f.poc); } }
        println!("   group attribution agreement: {agree}/{}", r.findings.len());
        total += r.findings.len(); expected += p.faults.len();
    }
    println!("TOTAL {total}/{expected}");
}
