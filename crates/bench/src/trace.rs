//! Offline analysis of campaign event journals (`repro trace`).
//!
//! A journal is the JSONL [`TraceFile`] that a telemetry-on campaign
//! writes (see `CampaignConfig::telemetry` and `soft-obs`). This module
//! turns one back into the human-readable surfaces: outcome counts, the
//! per-pattern / per-category yield tables, and the §7.5-style growth
//! curves — and, via [`trace_csv_exports`], the same data as CSV for
//! spreadsheet / plotting pipelines (`repro trace --csv <dir>`). Rendering
//! lives in the library (not the `repro` binary) so the golden tests in
//! `tests/telemetry.rs` can pin the output byte for byte.

use soft_dialects::{DialectId, DialectProfile};
use soft_obs::{EpochRealloc, GrowthCurves, TraceFile, YieldMetrics};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Resolves a dialect by (case-insensitive) name or key, as it appears in a
/// journal header or on the `repro campaign` command line.
pub fn dialect_by_name(name: &str) -> Option<DialectId> {
    DialectId::from_name(name)
}

/// Renders the `repro trace` report for one parsed journal.
///
/// When the journal header names a known dialect, function names are
/// resolved against that dialect's registry so the per-category yield
/// table can be rebuilt; otherwise only the per-pattern table is shown.
pub fn render_trace(trace: &TraceFile) -> String {
    let mut out = String::new();
    let dialect = trace.dialect.as_deref().unwrap_or("unknown dialect");
    let _ = writeln!(
        out,
        "journal: {} — {} events, {} unique faults",
        dialect,
        trace.journal.events.len(),
        trace.journal.unique_faults()
    );
    let _ = write!(out, "outcomes:");
    for (class, n) in trace.journal.outcome_counts() {
        let _ = write!(out, " {}={n}", class.label());
    }
    let _ = writeln!(out, "\n");

    // Rebuild the yield ledger from the journal; category resolution uses
    // the dialect's registry when the header names a known dialect.
    let (yields, resolved) = rebuild_yields(trace);
    let _ = writeln!(out, "{}", yields.render_pattern_table());
    if resolved {
        let _ = writeln!(out, "{}", yields.render_category_table());
    }
    out.push_str(&rebuild_curves(trace).render());
    // Scheduler epochs are journaled only by `--schedule` campaigns; static
    // journals render exactly as before.
    if !trace.epochs.is_empty() {
        out.push('\n');
        out.push_str(&render_epochs(&trace.epochs));
    }
    out
}

/// Renders the feedback scheduler's epoch reallocations: one line per
/// epoch, listing the top arms by planned quota (`planned/executed` with
/// the UCB score in milli-units). Deterministic: ties break by the arm's
/// (pattern, category) order.
pub fn render_epochs(epochs: &[EpochRealloc]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scheduler epochs: {}", epochs.len());
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>8}  top arms (planned/executed, score milli)",
        "epoch", "start", "budget"
    );
    for e in epochs {
        let mut arms: Vec<_> = e.allocations.iter().filter(|a| a.planned > 0).collect();
        arms.sort_by(|a, b| {
            b.planned.cmp(&a.planned).then_with(|| {
                (a.pattern.label(), a.category.label())
                    .cmp(&(b.pattern.label(), b.category.label()))
            })
        });
        let shown = arms
            .iter()
            .take(4)
            .map(|a| {
                format!(
                    "{}:{} {}/{} s={}",
                    a.pattern.label(),
                    a.category.label(),
                    a.planned,
                    a.executed,
                    a.score_milli
                )
            })
            .collect::<Vec<_>>()
            .join("  ");
        let elided = arms.len().saturating_sub(4);
        let _ = write!(out, "{:<6} {:>9} {:>8}  {shown}", e.epoch, e.start_statement, e.budget);
        if elided > 0 {
            let _ = write!(out, "  (+{elided} arms)");
        }
        out.push('\n');
    }
    out
}

/// Rebuilds the yield ledger from a journal. The bool reports whether the
/// header named a known dialect (and categories could therefore resolve).
pub fn rebuild_yields(trace: &TraceFile) -> (YieldMetrics, bool) {
    let engine = trace
        .dialect
        .as_deref()
        .and_then(dialect_by_name)
        .map(|id| DialectProfile::build(id).engine());
    let yields = YieldMetrics::from_events(&trace.journal.events, &trace.generated, |name| {
        engine.as_ref().and_then(|e| e.registry().resolve(name).map(|d| d.category))
    });
    (yields, engine.is_some())
}

/// Rebuilds the §7.5 growth curves from a journal.
fn rebuild_curves(trace: &TraceFile) -> GrowthCurves {
    GrowthCurves {
        coverage: trace.coverage.clone(),
        bugs: GrowthCurves::bugs_from_events(&trace.journal.events),
    }
}

/// Quotes one CSV field: doubled quotes inside a quoted field (RFC 4180),
/// applied only when the value needs it. A bare carriage return requires
/// quoting just like a line feed — RFC 4180 treats CR, LF, and CRLF alike,
/// and an unquoted CR splits the record in most readers.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders a journal's yield tables and growth curves as CSV files:
/// `(file name, contents)` pairs, stable names, header row first. The
/// category table is emitted only when the journal header names a known
/// dialect (categories cannot resolve otherwise).
pub fn trace_csv_exports(trace: &TraceFile) -> Vec<(&'static str, String)> {
    let (yields, resolved) = rebuild_yields(trace);
    let curves = rebuild_curves(trace);
    let mut files: Vec<(&'static str, String)> = Vec::new();

    let mut patterns = String::from(
        "pattern,generated,executed,crashes,errors,resource_limits,logic_bugs,unique_bugs\n",
    );
    for (p, y) in &yields.per_pattern {
        let _ = writeln!(
            patterns,
            "{},{},{},{},{},{},{},{}",
            p.label(),
            y.generated,
            y.executed,
            y.crashes,
            y.errors,
            y.resource_limits,
            y.logic_bugs,
            y.unique_bugs
        );
    }
    files.push(("pattern_yields.csv", patterns));

    if resolved {
        let mut categories =
            String::from("category,executed,crashes,errors,logic_bugs,unique_bugs\n");
        for (c, y) in &yields.per_category {
            let _ = writeln!(
                categories,
                "{},{},{},{},{},{}",
                csv_field(c.label()),
                y.executed,
                y.crashes,
                y.errors,
                y.logic_bugs,
                y.unique_bugs
            );
        }
        files.push(("category_yields.csv", categories));
    }

    let mut coverage = String::from("statements,functions,branches\n");
    for p in &curves.coverage {
        let _ = writeln!(coverage, "{},{},{}", p.statements, p.functions, p.branches);
    }
    files.push(("coverage_curve.csv", coverage));

    let mut bugs = String::from("statements,unique_bugs,fault_id\n");
    for b in &curves.bugs {
        let _ = writeln!(bugs, "{},{},{}", b.statements, b.unique_bugs, csv_field(&b.fault_id));
    }
    files.push(("bug_curve.csv", bugs));

    // One row per (epoch, arm) — emitted only for scheduled campaigns, so
    // static journals export the same file set as before.
    if !trace.epochs.is_empty() {
        let mut allocs = String::from(
            "epoch,start_statement,budget,pattern,category,planned,executed,score_milli\n",
        );
        for e in &trace.epochs {
            for a in &e.allocations {
                let _ = writeln!(
                    allocs,
                    "{},{},{},{},{},{},{},{}",
                    e.epoch,
                    e.start_statement,
                    e.budget,
                    a.pattern.label(),
                    csv_field(a.category.label()),
                    a.planned,
                    a.executed,
                    a.score_milli
                );
            }
        }
        files.push(("epoch_allocations.csv", allocs));
    }
    files
}

/// Writes [`trace_csv_exports`] into `out_dir` (created if missing),
/// returning the written paths.
pub fn write_trace_csv(trace: &TraceFile, out_dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(out_dir)?;
    let mut written = Vec::new();
    for (name, contents) in trace_csv_exports(trace) {
        let path = out_dir.join(name);
        std::fs::write(&path, contents)?;
        written.push(path);
    }
    Ok(written)
}
