//! Offline analysis of campaign event journals (`repro trace`).
//!
//! A journal is the JSONL [`TraceFile`] that a telemetry-on campaign
//! writes (see `CampaignConfig::telemetry` and `soft-obs`). This module
//! turns one back into the human-readable surfaces: outcome counts, the
//! per-pattern / per-category yield tables, and the §7.5-style growth
//! curves. Rendering lives in the library (not the `repro` binary) so the
//! golden test in `tests/telemetry.rs` can pin the output byte for byte.

use soft_dialects::{DialectId, DialectProfile};
use soft_obs::{GrowthCurves, TraceFile, YieldMetrics};
use std::fmt::Write as _;

/// Resolves a dialect by (case-insensitive) name, as it appears in a
/// journal header or on the `repro campaign` command line.
pub fn dialect_by_name(name: &str) -> Option<DialectId> {
    DialectId::ALL.into_iter().find(|d| d.name().eq_ignore_ascii_case(name))
}

/// Renders the `repro trace` report for one parsed journal.
///
/// When the journal header names a known dialect, function names are
/// resolved against that dialect's registry so the per-category yield
/// table can be rebuilt; otherwise only the per-pattern table is shown.
pub fn render_trace(trace: &TraceFile) -> String {
    let mut out = String::new();
    let dialect = trace.dialect.as_deref().unwrap_or("unknown dialect");
    let _ = writeln!(
        out,
        "journal: {} — {} events, {} unique faults",
        dialect,
        trace.journal.events.len(),
        trace.journal.unique_faults()
    );
    let _ = write!(out, "outcomes:");
    for (class, n) in trace.journal.outcome_counts() {
        let _ = write!(out, " {}={n}", class.label());
    }
    let _ = writeln!(out, "\n");

    // Rebuild the yield ledger from the journal; category resolution uses
    // the dialect's registry when the header names a known dialect.
    let engine = trace.dialect.as_deref().and_then(dialect_by_name).map(|id| {
        DialectProfile::build(id).engine()
    });
    let yields = YieldMetrics::from_events(&trace.journal.events, &trace.generated, |name| {
        engine.as_ref().and_then(|e| e.registry().resolve(name).map(|d| d.category))
    });
    let _ = writeln!(out, "{}", yields.render_pattern_table());
    if engine.is_some() {
        let _ = writeln!(out, "{}", yields.render_category_table());
    }
    let curves = GrowthCurves {
        coverage: trace.coverage.clone(),
        bugs: GrowthCurves::bugs_from_events(&trace.journal.events),
    };
    out.push_str(&curves.render());
    out
}
