//! Cross-campaign diffing (`repro compare`).
//!
//! Two campaigns' event journals, one structured diff: which unique bugs
//! appeared or disappeared, how each pattern's and category's yield moved,
//! how coverage shifted, and how the discovery-latency distribution (the
//! statements-until-found histogram, log2 buckets) changed between the
//! runs. The primary consumer is CI regression gating — "did this change
//! lose any bugs the old configuration found?" — which is why
//! [`CompareReport::lost_bugs`] drives a dedicated nonzero exit code in
//! `repro compare` (see `cli::EXIT_CODES`).
//!
//! Everything here is a pure fold over the two parsed [`TraceFile`]s:
//! deterministic campaigns diff to an empty report, and the repo's
//! plan-prefix property (a smaller budget plans an exact prefix of a
//! larger one) guarantees `compare small-budget large-budget` reports
//! gained bugs only — the verify.sh smoke checks both directions.

use crate::trace::{csv_field, rebuild_yields};
use soft_obs::{OutcomeClass, TraceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Discovery-latency histogram bucket count: bucket `k` counts unique
/// bugs first found at statement index `[2^k, 2^(k+1))`, so 32 buckets
/// cover any practical statement budget.
pub const LATENCY_BUCKETS: usize = 32;

/// One metric measured in both campaigns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Delta {
    /// The metric in campaign A.
    pub a: usize,
    /// The metric in campaign B.
    pub b: usize,
}

impl Delta {
    /// Signed B−A difference.
    pub fn diff(&self) -> i64 {
        self.b as i64 - self.a as i64
    }
}

/// Per-pattern (or per-category) yield movement between the campaigns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct YieldDelta {
    /// Statements executed.
    pub executed: Delta,
    /// Unique bugs first credited here.
    pub unique_bugs: Delta,
    /// Statements that crashed (repeat faults included).
    pub crashes: Delta,
}

/// The structured diff of two campaign journals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompareReport {
    /// Dialect named by campaign A's header.
    pub dialect_a: Option<String>,
    /// Dialect named by campaign B's header.
    pub dialect_b: Option<String>,
    /// Statements executed by each campaign.
    pub statements: Delta,
    /// Unique fault ids found by B but not A, sorted.
    pub new_bugs: Vec<String>,
    /// Unique fault ids found by A but not B, sorted. Non-empty means a
    /// regression for CI purposes: `repro compare` exits nonzero.
    pub lost_bugs: Vec<String>,
    /// Unique fault ids found by both campaigns.
    pub common_bugs: usize,
    /// Yield movement per pattern label, in pattern order.
    pub pattern_deltas: BTreeMap<String, YieldDelta>,
    /// Yield movement per function-category label, in category order.
    pub category_deltas: BTreeMap<String, YieldDelta>,
    /// Final functions-triggered coverage of each campaign (from the last
    /// coverage snapshot; 0 when the journal carries none).
    pub functions: Delta,
    /// Final branches-covered coverage of each campaign.
    pub branches: Delta,
    /// Discovery-latency histogram of campaign A: bucket `k` counts unique
    /// bugs first found at statement `[2^k, 2^(k+1))`.
    pub latency_a: [usize; LATENCY_BUCKETS],
    /// Discovery-latency histogram of campaign B.
    pub latency_b: [usize; LATENCY_BUCKETS],
}

impl CompareReport {
    /// True when the campaigns produced identical bug sets (coverage and
    /// yields may still differ).
    pub fn same_bugs(&self) -> bool {
        self.new_bugs.is_empty() && self.lost_bugs.is_empty()
    }
}

/// Unique fault ids of a journal, each with the statement index at which
/// it was first observed — the diff's bug universe. Crash and logic-bug
/// events alike; first observation wins (events are globally ordered).
fn unique_bugs(trace: &TraceFile) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for e in &trace.journal.events {
        if !matches!(e.outcome, OutcomeClass::Crash | OutcomeClass::LogicBug) {
            continue;
        }
        if let Some(fault) = e.fault_id.as_deref() {
            out.entry(fault.to_string()).or_insert(e.index);
        }
    }
    out
}

/// Folds first-discovery statement indices into the log2 histogram.
fn latency_histogram(bugs: &BTreeMap<String, usize>) -> [usize; LATENCY_BUCKETS] {
    let mut hist = [0usize; LATENCY_BUCKETS];
    for &index in bugs.values() {
        let bucket = (usize::BITS - index.max(1).leading_zeros() - 1) as usize;
        hist[bucket.min(LATENCY_BUCKETS - 1)] += 1;
    }
    hist
}

/// Diffs two parsed journals: A is the baseline, B the candidate.
pub fn compare_traces(a: &TraceFile, b: &TraceFile) -> CompareReport {
    let bugs_a = unique_bugs(a);
    let bugs_b = unique_bugs(b);
    let ids_a: BTreeSet<&str> = bugs_a.keys().map(String::as_str).collect();
    let ids_b: BTreeSet<&str> = bugs_b.keys().map(String::as_str).collect();

    let (yields_a, _) = rebuild_yields(a);
    let (yields_b, _) = rebuild_yields(b);
    let mut pattern_deltas: BTreeMap<String, YieldDelta> = BTreeMap::new();
    for (p, y) in &yields_a.per_pattern {
        let d = pattern_deltas.entry(p.label().to_string()).or_default();
        d.executed.a = y.executed;
        d.unique_bugs.a = y.unique_bugs;
        d.crashes.a = y.crashes;
    }
    for (p, y) in &yields_b.per_pattern {
        let d = pattern_deltas.entry(p.label().to_string()).or_default();
        d.executed.b = y.executed;
        d.unique_bugs.b = y.unique_bugs;
        d.crashes.b = y.crashes;
    }
    let mut category_deltas: BTreeMap<String, YieldDelta> = BTreeMap::new();
    for (c, y) in &yields_a.per_category {
        let d = category_deltas.entry(c.label().to_string()).or_default();
        d.executed.a = y.executed;
        d.unique_bugs.a = y.unique_bugs;
        d.crashes.a = y.crashes;
    }
    for (c, y) in &yields_b.per_category {
        let d = category_deltas.entry(c.label().to_string()).or_default();
        d.executed.b = y.executed;
        d.unique_bugs.b = y.unique_bugs;
        d.crashes.b = y.crashes;
    }

    let final_coverage =
        |t: &TraceFile| t.coverage.last().map(|p| (p.functions, p.branches)).unwrap_or((0, 0));
    let (fa, ba) = final_coverage(a);
    let (fb, bb) = final_coverage(b);

    CompareReport {
        dialect_a: a.dialect.clone(),
        dialect_b: b.dialect.clone(),
        statements: Delta {
            a: a.statements.unwrap_or(a.journal.events.len()),
            b: b.statements.unwrap_or(b.journal.events.len()),
        },
        new_bugs: ids_b.difference(&ids_a).map(|s| s.to_string()).collect(),
        lost_bugs: ids_a.difference(&ids_b).map(|s| s.to_string()).collect(),
        common_bugs: ids_a.intersection(&ids_b).count(),
        pattern_deltas,
        category_deltas,
        functions: Delta { a: fa, b: fb },
        branches: Delta { a: ba, b: bb },
        latency_a: latency_histogram(&bugs_a),
        latency_b: latency_histogram(&bugs_b),
    }
}

/// Formats a `B (A, signed diff)` cell.
fn delta_cell(d: &Delta) -> String {
    if d.diff() == 0 {
        format!("{}", d.b)
    } else {
        format!("{} ({:+})", d.b, d.diff())
    }
}

/// Renders the human-readable diff. Sections that did not move are
/// summarised in one line so an identical-campaign diff reads as such at
/// a glance.
pub fn render_compare(r: &CompareReport) -> String {
    let mut out = String::new();
    let dialect = |d: &Option<String>| d.clone().unwrap_or_else(|| "unknown".into());
    let _ = writeln!(
        out,
        "compare: A={} ({} statements)  B={} ({} statements)",
        dialect(&r.dialect_a),
        r.statements.a,
        dialect(&r.dialect_b),
        r.statements.b
    );
    let _ = writeln!(
        out,
        "unique bugs: {} common, {} new, {} lost",
        r.common_bugs,
        r.new_bugs.len(),
        r.lost_bugs.len()
    );
    for id in &r.new_bugs {
        let _ = writeln!(out, "  new:  {id}");
    }
    for id in &r.lost_bugs {
        let _ = writeln!(out, "  LOST: {id}");
    }

    let moved: Vec<(&String, &YieldDelta)> = r
        .pattern_deltas
        .iter()
        .filter(|(_, d)| {
            d.executed.diff() != 0 || d.unique_bugs.diff() != 0 || d.crashes.diff() != 0
        })
        .collect();
    if moved.is_empty() {
        let _ = writeln!(out, "pattern yields: identical");
    } else {
        let _ = writeln!(
            out,
            "pattern yields ({} of {} patterns moved):",
            moved.len(),
            r.pattern_deltas.len()
        );
        let _ = writeln!(
            out,
            "  {:<8} {:>16} {:>16} {:>16}",
            "pattern", "executed", "crashes", "unique"
        );
        for (p, d) in moved {
            let _ = writeln!(
                out,
                "  {:<8} {:>16} {:>16} {:>16}",
                p,
                delta_cell(&d.executed),
                delta_cell(&d.crashes),
                delta_cell(&d.unique_bugs)
            );
        }
    }
    let moved: Vec<(&String, &YieldDelta)> = r
        .category_deltas
        .iter()
        .filter(|(_, d)| {
            d.executed.diff() != 0 || d.unique_bugs.diff() != 0 || d.crashes.diff() != 0
        })
        .collect();
    if moved.is_empty() {
        let _ = writeln!(out, "category yields: identical");
    } else {
        let _ = writeln!(
            out,
            "category yields ({} of {} categories moved):",
            moved.len(),
            r.category_deltas.len()
        );
        for (c, d) in moved {
            let _ = writeln!(
                out,
                "  {:<12} executed {} crashes {} unique {}",
                c,
                delta_cell(&d.executed),
                delta_cell(&d.crashes),
                delta_cell(&d.unique_bugs)
            );
        }
    }

    let _ = writeln!(
        out,
        "coverage: functions {}  branches {}",
        delta_cell(&r.functions),
        delta_cell(&r.branches)
    );

    if r.latency_a == r.latency_b {
        let _ = writeln!(out, "discovery latency: identical");
    } else {
        let _ = writeln!(out, "discovery latency (unique bugs by statements-until-found):");
        for k in 0..LATENCY_BUCKETS {
            if r.latency_a[k] == 0 && r.latency_b[k] == 0 {
                continue;
            }
            let lo = 1usize << k;
            let hi = (1usize << k).saturating_mul(2).saturating_sub(1);
            let _ = writeln!(
                out,
                "  {:>12}-{:<12} A={:<4} B={:<4}",
                lo, hi, r.latency_a[k], r.latency_b[k]
            );
        }
    }
    out
}

/// The diff as CSV files: `(file name, contents)` pairs with stable names
/// and a header row first, mirroring `trace_csv_exports`.
pub fn compare_csv_exports(r: &CompareReport) -> Vec<(&'static str, String)> {
    let mut files: Vec<(&'static str, String)> = Vec::new();

    let mut bugs = String::from("fault_id,status\n");
    for id in &r.new_bugs {
        let _ = writeln!(bugs, "{},new", csv_field(id));
    }
    for id in &r.lost_bugs {
        let _ = writeln!(bugs, "{},lost", csv_field(id));
    }
    files.push(("compare_bugs.csv", bugs));

    let mut yields = String::from(
        "kind,label,executed_a,executed_b,crashes_a,crashes_b,unique_a,unique_b\n",
    );
    for (kind, deltas) in
        [("pattern", &r.pattern_deltas), ("category", &r.category_deltas)]
    {
        for (label, d) in deltas {
            let _ = writeln!(
                yields,
                "{kind},{},{},{},{},{},{},{}",
                csv_field(label),
                d.executed.a,
                d.executed.b,
                d.crashes.a,
                d.crashes.b,
                d.unique_bugs.a,
                d.unique_bugs.b
            );
        }
    }
    files.push(("compare_yields.csv", yields));

    let mut cov = String::from("metric,a,b,diff\n");
    for (name, d) in [
        ("statements", &r.statements),
        ("functions", &r.functions),
        ("branches", &r.branches),
    ] {
        let _ = writeln!(cov, "{name},{},{},{}", d.a, d.b, d.diff());
    }
    files.push(("compare_coverage.csv", cov));

    let mut lat = String::from("bucket_lo,bucket_hi,bugs_a,bugs_b\n");
    for k in 0..LATENCY_BUCKETS {
        if r.latency_a[k] == 0 && r.latency_b[k] == 0 {
            continue;
        }
        let _ = writeln!(
            lat,
            "{},{},{},{}",
            1usize << k,
            (1usize << k).saturating_mul(2).saturating_sub(1),
            r.latency_a[k],
            r.latency_b[k]
        );
    }
    files.push(("compare_latency.csv", lat));
    files
}

/// Writes [`compare_csv_exports`] into `out_dir` (created if missing),
/// returning the written paths.
pub fn write_compare_csv(
    r: &CompareReport,
    out_dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(out_dir)?;
    let mut written = Vec::new();
    for (name, contents) in compare_csv_exports(r) {
        let path = out_dir.join(name);
        std::fs::write(&path, contents)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(bugs: &[(&str, usize)], statements: usize) -> TraceFile {
        let mut text = format!(
            "{{\"type\": \"campaign\", \"dialect\": \"MonetDB\", \"statements\": {statements}, \
             \"events\": {}}}\n",
            bugs.len()
        );
        for (fault, index) in bugs {
            text.push_str(&format!(
                "{{\"type\": \"stmt\", \"index\": {index}, \"shard\": 0, \"seed\": 0, \
                 \"pattern\": \"P1.1\", \"function\": null, \"outcome\": \"crash\", \
                 \"fault\": \"{fault}\"}}\n"
            ));
        }
        text.push_str(&format!(
            "{{\"type\": \"coverage\", \"statements\": {statements}, \"functions\": {}, \
             \"branches\": {}}}\n",
            10 + bugs.len(),
            100 + bugs.len()
        ));
        TraceFile::parse(&text).expect("synthetic journal parses")
    }

    #[test]
    fn identical_campaigns_diff_clean() {
        let a = journal(&[("bug-1", 5), ("bug-2", 700)], 1000);
        let r = compare_traces(&a, &a);
        assert!(r.same_bugs());
        assert_eq!(r.common_bugs, 2);
        assert_eq!(r.statements, Delta { a: 1000, b: 1000 });
        assert_eq!(r.latency_a, r.latency_b);
        let text = render_compare(&r);
        assert!(text.contains("2 common, 0 new, 0 lost"), "{text}");
        assert!(text.contains("pattern yields: identical"), "{text}");
        assert!(text.contains("discovery latency: identical"), "{text}");
    }

    #[test]
    fn new_and_lost_bugs_are_partitioned_and_sorted() {
        let a = journal(&[("bug-a", 3), ("bug-c", 9)], 100);
        let b = journal(&[("bug-b", 4), ("bug-c", 9), ("bug-d", 50)], 200);
        let r = compare_traces(&a, &b);
        assert_eq!(r.new_bugs, vec!["bug-b", "bug-d"]);
        assert_eq!(r.lost_bugs, vec!["bug-a"]);
        assert_eq!(r.common_bugs, 1);
        assert!(!r.same_bugs());
        let text = render_compare(&r);
        assert!(text.contains("LOST: bug-a"), "{text}");
        assert!(text.contains("new:  bug-b"), "{text}");
        // Coverage deltas come from the final snapshots.
        assert_eq!(r.branches.diff(), 1);
    }

    #[test]
    fn latency_histogram_buckets_by_log2() {
        // Indices 1, 2-3, and 700 land in buckets 0, 1, and 9.
        let bugs: BTreeMap<String, usize> =
            [("a".into(), 1), ("b".into(), 3), ("c".into(), 700)].into();
        let hist = latency_histogram(&bugs);
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 1);
        assert_eq!(hist[9], 1);
        assert_eq!(hist.iter().sum::<usize>(), 3);
    }

    #[test]
    fn csv_exports_have_stable_names_and_headers() {
        let a = journal(&[("bug-1", 5)], 100);
        let b = journal(&[("bug-2", 6)], 100);
        let files = compare_csv_exports(&compare_traces(&a, &b));
        let names: Vec<&str> = files.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "compare_bugs.csv",
                "compare_yields.csv",
                "compare_coverage.csv",
                "compare_latency.csv"
            ]
        );
        for (name, contents) in &files {
            let header = contents.lines().next().unwrap_or("");
            assert!(header.contains(','), "{name} header: {header}");
        }
        let bugs = &files[0].1;
        assert!(bugs.contains("bug-2,new"), "{bugs}");
        assert!(bugs.contains("bug-1,lost"), "{bugs}");
    }
}
