//! A minimal in-tree timing harness — the workspace's `criterion`
//! replacement, so `cargo bench` needs no external crates (README.md,
//! "Hermetic build").
//!
//! Each measurement warms the closure up for a fixed wall-clock budget,
//! then times batches of iterations (batched so that sub-microsecond
//! closures are not dominated by timer overhead) and reports min / mean /
//! median / p95 nanoseconds per iteration. `finish()` prints a table and
//! writes `BENCH_<group>.json` next to the current directory (or into
//! `$SOFT_BENCH_JSON_DIR`) so runs can be diffed across PRs.
//!
//! Environment knobs: `SOFT_BENCH_WARMUP_MS`, `SOFT_BENCH_MEASURE_MS`,
//! `SOFT_BENCH_JSON_DIR`, and `SOFT_BENCH_JSON=0` to skip the JSON file.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Benchmark label, e.g. `decimal/parse_45_digits`.
    pub label: String,
    /// Total iterations measured (across all batches).
    pub iters: u64,
    /// Fastest batch, per iteration.
    pub min_ns: f64,
    /// Arithmetic mean over batches, per iteration.
    pub mean_ns: f64,
    /// Median batch, per iteration.
    pub median_ns: f64,
    /// 95th-percentile batch, per iteration.
    pub p95_ns: f64,
    /// Work items processed per iteration (e.g. statements per campaign),
    /// when the benchmark declared a throughput via [`Bench::bench_items`].
    pub items_per_iter: Option<f64>,
}

impl Sample {
    /// Throughput in items per second, from the median time per iteration.
    /// `None` unless the benchmark declared its items per iteration.
    pub fn items_per_sec(&self) -> Option<f64> {
        self.items_per_iter.filter(|_| self.median_ns > 0.0).map(|n| n / (self.median_ns / 1e9))
    }
}

/// One benchmark group: collects [`Sample`]s, then renders/serialises them.
pub struct Bench {
    group: String,
    warmup: Duration,
    measure: Duration,
    samples: Vec<Sample>,
}

impl Bench {
    /// Starts a group named like the bench binary (`substrates`, ...).
    pub fn new(group: &str) -> Bench {
        Bench {
            group: group.to_string(),
            warmup: Duration::from_millis(env_ms("SOFT_BENCH_WARMUP_MS", 50)),
            measure: Duration::from_millis(env_ms("SOFT_BENCH_MEASURE_MS", 300)),
            samples: Vec::new(),
        }
    }

    /// Overrides the warmup budget (tests use tiny budgets).
    pub fn warmup_ms(mut self, ms: u64) -> Bench {
        self.warmup = Duration::from_millis(ms);
        self
    }

    /// Overrides the measurement budget.
    pub fn measure_ms(mut self, ms: u64) -> Bench {
        self.measure = Duration::from_millis(ms);
        self
    }

    /// Measures one closure and records its sample together with its
    /// declared throughput: `items` work items are processed per iteration
    /// (statements executed per campaign, rows per pipeline run, ...), so
    /// the JSON artifact carries `items_per_sec` alongside the timings.
    pub fn bench_items<R>(&mut self, label: &str, items: u64, f: impl FnMut() -> R) -> &Sample {
        self.bench(label, f);
        let sample = self.samples.last_mut().expect("just benched");
        sample.items_per_iter = Some(items as f64);
        sample
    }

    /// Measures one closure and records its sample.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) -> &Sample {
        // Warmup: also yields a cost estimate for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        // Size batches to ~200µs so per-batch timer error is < 0.1%, while
        // keeping enough batches (aim ≥ 20) inside the measurement budget.
        let batch = ((200_000.0 / est_ns).ceil() as u64).clamp(1, 1_000_000);
        let mut per_iter_ns: Vec<f64> = Vec::new();
        let mut iters = 0u64;
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || per_iter_ns.len() < 20 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
            iters += batch;
            if per_iter_ns.len() >= 5_000 {
                break;
            }
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = per_iter_ns.len();
        let sample = Sample {
            label: label.to_string(),
            iters,
            min_ns: per_iter_ns[0],
            mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
            median_ns: per_iter_ns[n / 2],
            p95_ns: per_iter_ns[(n * 95 / 100).min(n - 1)],
            items_per_iter: None,
        };
        self.samples.push(sample);
        self.samples.last().expect("just pushed")
    }

    /// Measures two closures as one drift-robust pair.
    ///
    /// Timed batches of the two sides *alternate* inside a single
    /// measurement window, so slow environment drift — thermal throttling,
    /// a noisy neighbour, frequency scaling settling under sustained load —
    /// hits both sides equally and their throughput *ratio* stays
    /// meaningful. Two sequential [`Bench::bench_items`] calls do not have
    /// that property: a few percent of monotone drift between the windows
    /// reads as a few percent of fake speedup (or slowdown), which is
    /// exactly the magnitude a regression gate cares about.
    ///
    /// Each side declares its label and items per iteration, like
    /// [`Bench::bench_items`]. Records one [`Sample`] per side (in argument
    /// order) and returns them as a pair.
    pub fn bench_pair<RA, RB>(
        &mut self,
        a: (&str, u64, &mut dyn FnMut() -> RA),
        b: (&str, u64, &mut dyn FnMut() -> RB),
    ) -> (&Sample, &Sample) {
        let (label_a, items_a, fa) = a;
        let (label_b, items_b, fb) = b;
        // Warm both sides alternately; the estimates size each side's batch
        // to ~200µs, as in `bench`.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut spent_a = Duration::ZERO;
        let mut spent_b = Duration::ZERO;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            let t = Instant::now();
            black_box(fa());
            spent_a += t.elapsed();
            let t = Instant::now();
            black_box(fb());
            spent_b += t.elapsed();
            warm_iters += 1;
            if warm_iters >= 500_000 {
                break;
            }
        }
        let est_a = (spent_a.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let est_b = (spent_b.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let batch_a = ((200_000.0 / est_a).ceil() as u64).clamp(1, 1_000_000);
        let batch_b = ((200_000.0 / est_b).ceil() as u64).clamp(1, 1_000_000);
        let mut per_iter_a: Vec<f64> = Vec::new();
        let mut per_iter_b: Vec<f64> = Vec::new();
        let mut iters_a = 0u64;
        let mut iters_b = 0u64;
        // The pair shares one window of twice the single-arm budget.
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure * 2 || per_iter_a.len() < 20 {
            let t = Instant::now();
            for _ in 0..batch_a {
                black_box(fa());
            }
            per_iter_a.push(t.elapsed().as_nanos() as f64 / batch_a as f64);
            iters_a += batch_a;
            let t = Instant::now();
            for _ in 0..batch_b {
                black_box(fb());
            }
            per_iter_b.push(t.elapsed().as_nanos() as f64 / batch_b as f64);
            iters_b += batch_b;
            if per_iter_a.len() >= 5_000 {
                break;
            }
        }
        let mut finish = |label: &str, per_iter: Vec<f64>, iters: u64, items: u64| {
            let mut v = per_iter;
            v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
            let n = v.len();
            self.samples.push(Sample {
                label: label.to_string(),
                iters,
                min_ns: v[0],
                mean_ns: v.iter().sum::<f64>() / n as f64,
                median_ns: v[n / 2],
                p95_ns: v[(n * 95 / 100).min(n - 1)],
                items_per_iter: Some(items as f64),
            });
        };
        finish(label_a, per_iter_a, iters_a, items_a);
        finish(label_b, per_iter_b, iters_b, items_b);
        let n = self.samples.len();
        (&self.samples[n - 2], &self.samples[n - 1])
    }

    /// The samples recorded so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Renders the results table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<44} {:>12} {:>12} {:>12} {:>12}\n",
            format!("bench [{}]", self.group),
            "median",
            "p95",
            "mean",
            "min"
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{:<44} {:>12} {:>12} {:>12} {:>12}\n",
                s.label,
                fmt_ns(s.median_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.mean_ns),
                fmt_ns(s.min_ns),
            ));
        }
        out
    }

    /// Serialises the samples as a `BENCH_<group>.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"group\": \"{}\",\n", soft_obs::json::escape(&self.group)));
        out.push_str("  \"results\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let throughput = match s.items_per_sec() {
                Some(rate) => format!(
                    ", \"items_per_iter\": {:.0}, \"items_per_sec\": {rate:.1}",
                    s.items_per_iter.unwrap_or(0.0)
                ),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"iters\": {}, \"median_ns\": {:.1}, \
                 \"p95_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}{}}}{}\n",
                soft_obs::json::escape(&s.label),
                s.iters,
                s.median_ns,
                s.p95_ns,
                s.mean_ns,
                s.min_ns,
                throughput,
                if i + 1 < self.samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Prints the table and writes the JSON artifact.
    pub fn finish(self) {
        print!("{}", self.render());
        if std::env::var("SOFT_BENCH_JSON").as_deref() == Ok("0") {
            return;
        }
        let dir = std::env::var("SOFT_BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.group));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

fn env_ms(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Bench {
        Bench::new("selftest").warmup_ms(1).measure_ms(5)
    }

    #[test]
    fn measures_and_orders_statistics() {
        let mut b = tiny();
        let s = b.bench("busy_loop", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.iters > 0);
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p95_ns);
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_labels() {
        let mut b = tiny();
        b.bench("a/first", || 1);
        b.bench("b/second", || 2);
        let json = b.to_json();
        assert!(json.contains("\"group\": \"selftest\""));
        assert!(json.contains("\"label\": \"a/first\""));
        assert!(json.contains("\"median_ns\""));
        // Of the two entries, only the first is comma-terminated.
        assert_eq!(json.matches("},\n").count(), 1);
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn items_throughput_is_recorded_and_serialised() {
        let mut b = tiny();
        let s = b.bench_items("campaign", 1_000, || {
            let mut acc = 0u64;
            for i in 0..500u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(s.items_per_iter, Some(1000.0));
        let rate = s.items_per_sec().expect("throughput declared");
        assert!(rate > 0.0);
        b.bench("untimed", || 1);
        let json = b.to_json();
        assert!(json.contains("\"items_per_iter\": 1000"));
        assert!(json.contains("\"items_per_sec\""));
        // Only the throughput-declaring entry carries the fields.
        assert_eq!(json.matches("items_per_sec").count(), 1);
        // Still one comma-terminated entry of the two.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn render_lists_every_sample() {
        let mut b = tiny();
        b.bench("one", || 1);
        b.bench("two", || 2);
        let table = b.render();
        assert!(table.contains("one") && table.contains("two"));
    }
}
