//! The benchmark harness: the tool comparison (Tables 5-6, §7.5) and the
//! helpers behind the `repro` binary that regenerates every table and
//! figure of the paper.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablation;
pub mod cli;
pub mod compare;
pub mod comparison;
pub mod harness;
pub mod trace;

pub use ablation::{render_ablation, run_ablation, AblationResult};
pub use cli::{render_help, CommandSpec, ExitSpec, FlagSpec, COMMANDS, EXIT_CODES};
pub use compare::{compare_traces, render_compare, write_compare_csv, CompareReport};
pub use comparison::{check_shape, render_metric, run_comparison, Tool, ToolResult};
pub use harness::{Bench, Sample};
pub use trace::{dialect_by_name, render_trace, trace_csv_exports, write_trace_csv};
