//! The tool comparison of §7.5: Tables 5 and 6 and the 24-hour bug counts.
//!
//! Wall-clock budgets are replaced by deterministic statement budgets
//! (DESIGN.md §2); each tool gets the same budget per target, mirroring the
//! paper's equal-time design. The support matrix follows the paper: SQUIRREL
//! supports PostgreSQL/MySQL/MariaDB, SQLsmith PostgreSQL/MonetDB, SQLancer
//! PostgreSQL/MySQL/MariaDB/ClickHouse, and SOFT everything.

use soft_baselines::{SqlancerLite, SqlsmithLite, SquirrelLite};
use soft_core::campaign::{run_campaign, run_generator, CampaignConfig};
use soft_dialects::{DialectId, DialectProfile};

/// The tools compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// SQUIRREL-lite.
    Squirrel,
    /// SQLancer-lite (PQS).
    Sqlancer,
    /// SQLsmith-lite.
    Sqlsmith,
    /// SOFT (this paper's tool).
    Soft,
}

impl Tool {
    /// All four, Table 5 column order.
    pub const ALL: [Tool; 4] = [Tool::Squirrel, Tool::Sqlancer, Tool::Sqlsmith, Tool::Soft];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Tool::Squirrel => "SQUIRREL",
            Tool::Sqlancer => "SQLancer",
            Tool::Sqlsmith => "SQLsmith",
            Tool::Soft => "SOFT",
        }
    }

    /// The paper's support matrix (which DBMSs each tool can test).
    pub fn supports(&self, id: DialectId) -> bool {
        match self {
            Tool::Squirrel => matches!(
                id,
                DialectId::Postgres | DialectId::Mysql | DialectId::Mariadb
            ),
            Tool::Sqlsmith => matches!(id, DialectId::Postgres | DialectId::Monetdb),
            Tool::Sqlancer => matches!(
                id,
                DialectId::Postgres | DialectId::Mysql | DialectId::Mariadb | DialectId::Clickhouse
            ),
            Tool::Soft => true,
        }
    }
}

/// The five targets Tables 5/6 report on.
pub const COMPARED_DIALECTS: [DialectId; 5] = [
    DialectId::Postgres,
    DialectId::Mysql,
    DialectId::Mariadb,
    DialectId::Clickhouse,
    DialectId::Monetdb,
];

/// One (tool, target) measurement.
#[derive(Debug, Clone)]
pub struct ToolResult {
    /// The tool.
    pub tool: Tool,
    /// The target.
    pub dialect: DialectId,
    /// Distinct built-in functions triggered (Table 5).
    pub functions: usize,
    /// Branches covered in the function component (Table 6).
    pub branches: usize,
    /// Unique SQL function bugs found (§7.5).
    pub bugs: usize,
}

/// Runs the full comparison at the given per-(tool, target) budget.
pub fn run_comparison(budget: usize) -> Vec<ToolResult> {
    let mut out = Vec::new();
    for id in COMPARED_DIALECTS {
        let profile = DialectProfile::build(id);
        for tool in Tool::ALL {
            if !tool.supports(id) {
                continue;
            }
            let report = match tool {
                // run_campaign shards across CampaignConfig::workers; the
                // report is identical to the serial run by construction.
                Tool::Soft => run_campaign(
                    &profile,
                    &CampaignConfig {
                        max_statements: budget,
                        per_seed_cap: 64,
                        ..CampaignConfig::default()
                    },
                ),
                Tool::Sqlsmith => {
                    let mut g = SqlsmithLite::new(&profile, 0xBEEF);
                    run_generator(&profile, &mut g, budget)
                }
                Tool::Sqlancer => {
                    let mut g = SqlancerLite::new(0xFACE);
                    run_generator(&profile, &mut g, budget)
                }
                Tool::Squirrel => {
                    let mut g = SquirrelLite::new(&profile, 0xD00D);
                    run_generator(&profile, &mut g, budget)
                }
            };
            out.push(ToolResult {
                tool,
                dialect: id,
                functions: report.functions_triggered,
                branches: report.branches_covered,
                bugs: report.findings.len(),
            });
        }
    }
    out
}

/// Renders results as a Table 5 / Table 6-shaped text table for one metric.
pub fn render_metric(
    results: &[ToolResult],
    metric: impl Fn(&ToolResult) -> usize,
    title: &str,
) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}\n",
        "DBMS", "SQUIRREL", "SQLancer", "SQLsmith", "SOFT"
    ));
    let mut totals = [0usize; 4];
    for id in COMPARED_DIALECTS {
        let mut row = format!("{:<12}", id.name());
        for (ti, tool) in Tool::ALL.iter().enumerate() {
            let cell = results
                .iter()
                .find(|r| r.tool == *tool && r.dialect == id)
                .map(&metric);
            match cell {
                Some(v) => {
                    totals[ti] += v;
                    row.push_str(&format!(" {v:>10}"));
                }
                None => row.push_str(&format!(" {:>10}", "-")),
            }
        }
        out.push_str(&row);
        out.push('\n');
    }
    out.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}\n",
        "Total", totals[0], totals[1], totals[2], totals[3]
    ));
    out
}

/// Checks the paper's qualitative claims against a result set; returns the
/// list of violated claims (empty = full shape agreement).
pub fn check_shape(results: &[ToolResult]) -> Vec<String> {
    let get = |tool: Tool, id: DialectId, f: &dyn Fn(&ToolResult) -> usize| {
        results
            .iter()
            .find(|r| r.tool == tool && r.dialect == id)
            .map(f)
            .unwrap_or(0)
    };
    let mut violations = Vec::new();
    for id in COMPARED_DIALECTS {
        for tool in [Tool::Squirrel, Tool::Sqlancer, Tool::Sqlsmith] {
            if !tool.supports(id) {
                continue;
            }
            let f = |r: &ToolResult| r.functions;
            if get(Tool::Soft, id, &f) <= get(tool, id, &f) {
                violations.push(format!(
                    "{}: SOFT should trigger more functions than {}",
                    id.name(),
                    tool.name()
                ));
            }
            let b = |r: &ToolResult| r.branches;
            if get(Tool::Soft, id, &b) <= get(tool, id, &b) {
                violations.push(format!(
                    "{}: SOFT should cover more branches than {}",
                    id.name(),
                    tool.name()
                ));
            }
            let bugs = |r: &ToolResult| r.bugs;
            if get(tool, id, &bugs) != 0 {
                violations.push(format!(
                    "{}: {} should find no SQL function bugs",
                    id.name(),
                    tool.name()
                ));
            }
        }
        if get(Tool::Soft, id, &|r: &ToolResult| r.bugs) == 0 {
            violations.push(format!("{}: SOFT should find bugs", id.name()));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_matrix_matches_paper() {
        assert!(Tool::Squirrel.supports(DialectId::Mariadb));
        assert!(!Tool::Squirrel.supports(DialectId::Clickhouse));
        assert!(Tool::Sqlsmith.supports(DialectId::Monetdb));
        assert!(!Tool::Sqlsmith.supports(DialectId::Mysql));
        assert!(Tool::Sqlancer.supports(DialectId::Clickhouse));
        assert!(!Tool::Sqlancer.supports(DialectId::Monetdb));
        for id in DialectId::ALL {
            assert!(Tool::Soft.supports(id));
        }
    }

    #[test]
    fn small_budget_comparison_reproduces_the_shape() {
        // A fast smoke version of Tables 5/6; the bench binary runs the
        // full-budget version.
        let results = run_comparison(6_000);
        let violations = check_shape(&results);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
