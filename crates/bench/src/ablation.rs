//! Pattern-group ablation: how many of the 132 bugs each pattern family can
//! reach on its own.
//!
//! The paper's root-cause taxonomy predicts a sharp partition: literal-
//! pattern bugs (56) should be unreachable by casting/nesting patterns and
//! vice versa, because the fault triggers are predicates over argument
//! *provenance*. This experiment runs SOFT restricted to one pattern group
//! at a time and measures the split — the ablation justifying why all ten
//! patterns are needed.

use soft_core::campaign::{run_campaign, CampaignConfig};
use soft_dialects::{DialectId, DialectProfile};
use soft_engine::PatternId;

/// One ablation configuration.
#[derive(Debug, Clone)]
pub struct AblationArm {
    /// Label shown in the report.
    pub label: &'static str,
    /// Patterns enabled.
    pub patterns: Vec<PatternId>,
}

/// The standard arms: each group alone, cumulative prefixes, and all.
pub fn standard_arms() -> Vec<AblationArm> {
    use PatternId::*;
    let p1 = vec![P1_1, P1_2, P1_3, P1_4];
    let p2 = vec![P2_1, P2_2, P2_3];
    let p3 = vec![P3_1, P3_2, P3_3];
    vec![
        AblationArm { label: "P1.x only", patterns: p1.clone() },
        AblationArm { label: "P2.x only", patterns: p2.clone() },
        AblationArm { label: "P3.x only", patterns: p3.clone() },
        AblationArm {
            label: "P1.x + P2.x",
            patterns: p1.iter().chain(&p2).copied().collect(),
        },
        AblationArm {
            label: "all patterns",
            patterns: p1.iter().chain(&p2).chain(&p3).copied().collect(),
        },
    ]
}

/// The result of one (arm, aggregate-over-dialects) run.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Arm label.
    pub label: &'static str,
    /// Total bugs found across all seven targets.
    pub bugs_total: usize,
    /// Bugs found whose *credited* pattern group is 1 / 2 / 3.
    pub by_credited_group: [usize; 3],
}

/// Runs the ablation at the given per-target budget.
pub fn run_ablation(budget: usize) -> Vec<AblationResult> {
    standard_arms()
        .into_iter()
        .map(|arm| {
            let mut bugs_total = 0usize;
            let mut by_group = [0usize; 3];
            for id in DialectId::ALL {
                let profile = DialectProfile::build(id);
                let report = run_campaign(
                    &profile,
                    &CampaignConfig {
                        max_statements: budget,
                        per_seed_cap: 64,
                        patterns: Some(arm.patterns.clone()),
                        ..CampaignConfig::default()
                    },
                );
                bugs_total += report.findings.len();
                for f in &report.findings {
                    by_group[f.credited_pattern.group() as usize - 1] += 1;
                }
            }
            AblationResult { label: arm.label, bugs_total, by_credited_group: by_group }
        })
        .collect()
}

/// Renders the ablation as a text table.
pub fn render_ablation(results: &[AblationResult]) -> String {
    let mut out = String::from(
        "arm            bugs   of-P1.x-bugs  of-P2.x-bugs  of-P3.x-bugs   (corpus: 56/28/48)\n",
    );
    for r in results {
        out.push_str(&format!(
            "{:<14} {:>4}   {:>12}  {:>12}  {:>12}\n",
            r.label, r.bugs_total, r.by_credited_group[0], r.by_credited_group[1], r.by_credited_group[2]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_core::campaign::run_soft;

    #[test]
    fn pattern_groups_partition_the_corpus() {
        // A fast single-dialect version of the ablation: on Virtuoso (the
        // biggest corpus), P1-only finds no P3-credited bugs and P3-only
        // finds no P1-credited bugs.
        use PatternId::*;
        let profile = DialectProfile::build(DialectId::Virtuoso);
        let budget = 25_000;
        let run = |patterns: Vec<PatternId>| {
            run_soft(
                &profile,
                &CampaignConfig {
                    max_statements: budget,
                    per_seed_cap: 48,
                    patterns: Some(patterns),
                    ..CampaignConfig::default()
                },
            )
        };
        let p1 = run(vec![P1_1, P1_2, P1_3, P1_4]);
        assert!(!p1.findings.is_empty(), "P1 arm should find literal bugs");
        for f in &p1.findings {
            assert_eq!(
                f.credited_pattern.group(),
                1,
                "P1-only arm found a non-literal bug: {} via {}",
                f.fault_id,
                f.poc
            );
        }
        let p3 = run(vec![P3_1, P3_2, P3_3]);
        assert!(!p3.findings.is_empty(), "P3 arm should find nesting bugs");
        for f in &p3.findings {
            assert_eq!(
                f.credited_pattern.group(),
                3,
                "P3-only arm found a non-nesting bug: {} via {}",
                f.fault_id,
                f.poc
            );
        }
    }
}
