//! Microbenchmarks of the data-type substrates: the layers the studied bugs
//! live in (decimal arithmetic, JSON parsing, regex matching, WKT parsing).

use soft_bench::Bench;
use soft_engine::regex::Regex;
use soft_types::decimal::Decimal;
use soft_types::geometry::Geometry;
use soft_types::json;
use std::hint::black_box;

fn main() {
    let mut b = Bench::new("substrates");

    let a: Decimal = format!("1.{}", "9".repeat(40)).parse().unwrap();
    let d: Decimal = "123456789.123456789".parse().unwrap();
    let s45 = "9".repeat(45);
    b.bench("decimal/parse_45_digits", || black_box(s45.parse::<Decimal>().unwrap()));
    b.bench("decimal/add", || black_box(a.checked_add(&d).unwrap()));
    b.bench("decimal/mul", || black_box(a.checked_mul(&d).unwrap()));
    b.bench("decimal/div_scale4", || black_box(a.checked_div(&d).unwrap()));
    b.bench("decimal/to_string", || black_box(a.to_string()));

    let flat = format!("[{}]", (0..100).map(|i| i.to_string()).collect::<Vec<_>>().join(","));
    let nested = format!("{}1{}", "[".repeat(48), "]".repeat(48));
    let deep = "[".repeat(1000);
    b.bench("json/parse_flat_100", || black_box(json::parse(&flat).unwrap()));
    b.bench("json/parse_nested_48", || black_box(json::parse(&nested).unwrap()));
    b.bench("json/reject_too_deep", || black_box(json::parse(&deep).unwrap_err()));

    let re = Regex::compile("[a-z]+[0-9]{2,4}").unwrap();
    let text = "xyzzy az appendix12 code9999 trailing";
    b.bench("regex/compile", || black_box(Regex::compile("[a-z]+[0-9]{2,4}").unwrap()));
    b.bench("regex/find", || black_box(re.find(text).unwrap()));

    let wkt = "POLYGON((0 0,10 0,10 10,0 10,0 0),(2 2,4 2,4 4,2 2))";
    let geom = Geometry::parse_wkt(wkt).unwrap();
    let bin = geom.to_binary();
    b.bench("geometry/parse_wkt", || black_box(Geometry::parse_wkt(wkt).unwrap()));
    b.bench("geometry/binary_roundtrip", || black_box(Geometry::from_binary(&bin).unwrap()));

    b.finish();
}
