//! Microbenchmarks of the data-type substrates: the layers the studied bugs
//! live in (decimal arithmetic, JSON parsing, regex matching, WKT parsing).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use soft_engine::regex::Regex;
use soft_types::decimal::Decimal;
use soft_types::geometry::Geometry;
use soft_types::json;

fn bench_decimal(c: &mut Criterion) {
    let a: Decimal = format!("1.{}", "9".repeat(40)).parse().unwrap();
    let b: Decimal = "123456789.123456789".parse().unwrap();
    let mut g = c.benchmark_group("decimal");
    g.bench_function("parse_45_digits", |bench| {
        let s = "9".repeat(45);
        bench.iter(|| black_box(s.parse::<Decimal>().unwrap()))
    });
    g.bench_function("add", |bench| {
        bench.iter(|| black_box(a.checked_add(&b).unwrap()))
    });
    g.bench_function("mul", |bench| {
        bench.iter(|| black_box(a.checked_mul(&b).unwrap()))
    });
    g.bench_function("div_scale4", |bench| {
        bench.iter(|| black_box(a.checked_div(&b).unwrap()))
    });
    g.bench_function("to_string", |bench| bench.iter(|| black_box(a.to_string())));
    g.finish();
}

fn bench_json(c: &mut Criterion) {
    let flat = format!("[{}]", (0..100).map(|i| i.to_string()).collect::<Vec<_>>().join(","));
    let nested = format!("{}1{}", "[".repeat(48), "]".repeat(48));
    let mut g = c.benchmark_group("json");
    g.bench_function("parse_flat_100", |bench| {
        bench.iter(|| black_box(json::parse(&flat).unwrap()))
    });
    g.bench_function("parse_nested_48", |bench| {
        bench.iter(|| black_box(json::parse(&nested).unwrap()))
    });
    g.bench_function("reject_too_deep", |bench| {
        let deep = "[".repeat(1000);
        bench.iter(|| black_box(json::parse(&deep).unwrap_err()))
    });
    g.finish();
}

fn bench_regex(c: &mut Criterion) {
    let re = Regex::compile("[a-z]+[0-9]{2,4}").unwrap();
    let text = "xyzzy az appendix12 code9999 trailing";
    let mut g = c.benchmark_group("regex");
    g.bench_function("compile", |bench| {
        bench.iter(|| black_box(Regex::compile("[a-z]+[0-9]{2,4}").unwrap()))
    });
    g.bench_function("find", |bench| bench.iter(|| black_box(re.find(text).unwrap())));
    g.finish();
}

fn bench_geometry(c: &mut Criterion) {
    let wkt = "POLYGON((0 0,10 0,10 10,0 10,0 0),(2 2,4 2,4 4,2 2))";
    let geom = Geometry::parse_wkt(wkt).unwrap();
    let bin = geom.to_binary();
    let mut g = c.benchmark_group("geometry");
    g.bench_function("parse_wkt", |bench| {
        bench.iter(|| black_box(Geometry::parse_wkt(wkt).unwrap()))
    });
    g.bench_function("binary_roundtrip", |bench| {
        bench.iter(|| black_box(Geometry::from_binary(&bin).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_decimal, bench_json, bench_regex, bench_geometry);
criterion_main!(benches);
