//! The Tables 5/6 experiment as a benchmark: per-tool statement-stream cost
//! against the same target, so the comparison's equal-budget design can be
//! related back to equal-time. The full comparison is `repro table5`.

use soft_baselines::{SqlancerLite, SqlsmithLite, SquirrelLite};
use soft_bench::Bench;
use soft_core::campaign::{run_generator, run_soft_parallel, CampaignConfig, StatementGenerator};
use soft_dialects::{DialectId, DialectProfile};
use std::hint::black_box;

const BUDGET: usize = 1_500;

fn main() {
    let mut b = Bench::new("tables56_comparison");

    let profile = DialectProfile::build(DialectId::Postgres);
    let cfg = CampaignConfig { max_statements: BUDGET, per_seed_cap: 8, ..CampaignConfig::default() };
    b.bench("tables56/soft", || {
        let r = run_soft_parallel(&profile, &cfg, 1);
        black_box((r.functions_triggered, r.branches_covered))
    });
    b.bench("tables56/sqlsmith", || {
        let mut gen = SqlsmithLite::new(&profile, 7);
        let r = run_generator(&profile, &mut gen, BUDGET);
        black_box((r.functions_triggered, r.branches_covered))
    });
    b.bench("tables56/sqlancer", || {
        let mut gen = SqlancerLite::new(7);
        let r = run_generator(&profile, &mut gen, BUDGET);
        black_box((r.functions_triggered, r.branches_covered))
    });
    b.bench("tables56/squirrel", || {
        let mut gen = SquirrelLite::new(&profile, 7);
        let r = run_generator(&profile, &mut gen, BUDGET);
        black_box((r.functions_triggered, r.branches_covered))
    });

    // Pure generation cost (no engine), per tool.
    let mysql = DialectProfile::build(DialectId::Mysql);
    b.bench("generator_stream/sqlsmith_1k", || {
        let mut gen = SqlsmithLite::new(&mysql, 3);
        let mut n = 0usize;
        for _ in 0..1000 {
            n += gen.next_statement().map(|s| s.len()).unwrap_or(0);
        }
        black_box(n)
    });
    b.bench("generator_stream/sqlancer_1k", || {
        let mut gen = SqlancerLite::new(3);
        let mut n = 0usize;
        for _ in 0..1000 {
            n += gen.next_statement().map(|s| s.len()).unwrap_or(0);
        }
        black_box(n)
    });
    b.bench("generator_stream/squirrel_1k", || {
        let mut gen = SquirrelLite::new(&mysql, 3);
        let mut n = 0usize;
        for _ in 0..1000 {
            n += gen.next_statement().map(|s| s.len()).unwrap_or(0);
        }
        black_box(n)
    });

    b.finish();
}
