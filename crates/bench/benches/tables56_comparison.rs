//! The Tables 5/6 experiment as a benchmark: per-tool statement-stream cost
//! against the same target, so the comparison's equal-budget design can be
//! related back to equal-time. The full comparison is `repro table5`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use soft_baselines::{SqlancerLite, SqlsmithLite, SquirrelLite};
use soft_core::campaign::{run_generator, run_soft, CampaignConfig, StatementGenerator};
use soft_dialects::{DialectId, DialectProfile};

const BUDGET: usize = 1_500;

fn bench_tools(c: &mut Criterion) {
    let profile = DialectProfile::build(DialectId::Postgres);
    let mut g = c.benchmark_group("tables56");
    g.sample_size(10);
    g.bench_function("soft", |bench| {
        bench.iter(|| {
            let r = run_soft(
                &profile,
                &CampaignConfig { max_statements: BUDGET, per_seed_cap: 8, patterns: None },
            );
            black_box((r.functions_triggered, r.branches_covered))
        })
    });
    g.bench_function("sqlsmith", |bench| {
        bench.iter(|| {
            let mut gen = SqlsmithLite::new(&profile, 7);
            let r = run_generator(&profile, &mut gen, BUDGET);
            black_box((r.functions_triggered, r.branches_covered))
        })
    });
    g.bench_function("sqlancer", |bench| {
        bench.iter(|| {
            let mut gen = SqlancerLite::new(7);
            let r = run_generator(&profile, &mut gen, BUDGET);
            black_box((r.functions_triggered, r.branches_covered))
        })
    });
    g.bench_function("squirrel", |bench| {
        bench.iter(|| {
            let mut gen = SquirrelLite::new(&profile, 7);
            let r = run_generator(&profile, &mut gen, BUDGET);
            black_box((r.functions_triggered, r.branches_covered))
        })
    });
    g.finish();
}

fn bench_generator_streams(c: &mut Criterion) {
    // Pure generation cost (no engine), per tool.
    let profile = DialectProfile::build(DialectId::Mysql);
    let mut g = c.benchmark_group("generator_stream");
    g.bench_function("sqlsmith_1k", |bench| {
        bench.iter(|| {
            let mut gen = SqlsmithLite::new(&profile, 3);
            let mut n = 0usize;
            for _ in 0..1000 {
                n += gen.next_statement().map(|s| s.len()).unwrap_or(0);
            }
            black_box(n)
        })
    });
    g.bench_function("sqlancer_1k", |bench| {
        bench.iter(|| {
            let mut gen = SqlancerLite::new(3);
            let mut n = 0usize;
            for _ in 0..1000 {
                n += gen.next_statement().map(|s| s.len()).unwrap_or(0);
            }
            black_box(n)
        })
    });
    g.bench_function("squirrel_1k", |bench| {
        bench.iter(|| {
            let mut gen = SquirrelLite::new(&profile, 3);
            let mut n = 0usize;
            for _ in 0..1000 {
                n += gen.next_statement().map(|s| s.len()).unwrap_or(0);
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tools, bench_generator_streams);
criterion_main!(benches);
