//! String path vs prepared path vs columnar batch path: statements/sec
//! over a fixed table4-scale corpus (ClickHouse + MonetDB, the Table 4
//! bench budget).
//!
//! The string path is the pre-split discipline — every statement re-lexed
//! and re-parsed by `Engine::execute`. The prepared path parses the corpus
//! once (`Engine::prepare`) and then executes the owned ASTs
//! (`Engine::execute_prepared`), the way the campaign runner did since the
//! parse-once plan landed. The batch path additionally groups the prepared
//! corpus by structural shape (`Engine::shape_key`, outside the timed
//! region — the campaign does this in its plan-prepare pass) and evaluates
//! each group as one columnar batch (`Engine::execute_batch_in`), falling
//! back to `execute_prepared` for unbatchable statements and groups below
//! `MIN_BATCH_GROUP` (plan compilation doesn't amortize there).
//! All arms run on a fresh clone of the same prepared template per
//! iteration. `BENCH_execute.json` records the three rates; the `speedup`
//! lines print the ratios, and `scripts/verify.sh` gates on
//! batch ≥ prepared.

use soft_bench::Bench;
use soft_core::collect;
use soft_core::patterns::{self, GenCtx};
use soft_dialects::{DialectId, DialectProfile};
use soft_engine::{BatchArena, Engine, ExecOutcome, PatternId, Prepared, ShapeKey, SqlError, MIN_BATCH_GROUP};
use std::collections::HashSet;
use std::hint::black_box;

/// A deterministic table4-scale statement stream: the seeds, then the
/// pattern-generated cases in pattern order, globally deduplicated and
/// truncated — the same shape the campaign planner produces at the Table 4
/// bench budget (2 000 statements, per-seed cap 8).
fn corpus(profile: &DialectProfile) -> (Engine, Vec<String>) {
    const MAX_STATEMENTS: usize = 2_000;
    const PER_SEED_CAP: usize = 8;
    let collection = collect::collect(profile);
    let ctx = GenCtx::new(&collection);
    let mut template = profile.engine();
    for stmt in &collection.preparation {
        let _ = template.execute(&stmt.to_string());
    }
    let mut seen: HashSet<String> = HashSet::new();
    let mut corpus: Vec<String> = Vec::new();
    for seed in &collection.seeds {
        let sql = seed.to_string();
        if seen.insert(sql.clone()) {
            corpus.push(sql);
        }
    }
    let mut buf = Vec::new();
    'outer: for pattern in PatternId::ALL {
        for (si, seed) in collection.seeds.iter().enumerate() {
            patterns::apply_salted(pattern, seed, &ctx, PER_SEED_CAP, si, &mut buf);
            for case in buf.drain(..) {
                if corpus.len() >= MAX_STATEMENTS {
                    break 'outer;
                }
                if seen.insert(case.sql.clone()) {
                    corpus.push(case.sql);
                }
            }
        }
    }
    (template, corpus)
}

fn count_crashes(outcome: ExecOutcome) -> usize {
    usize::from(outcome.is_crash())
}

fn main() {
    let mut b = Bench::new("execute");

    for id in [DialectId::Clickhouse, DialectId::Monetdb] {
        let (template, corpus) = corpus(&DialectProfile::build(id));
        let name = id.name();

        let string_rate = b
            .bench_items(&format!("execute/{name}/string"), corpus.len() as u64, || {
                let mut e = template.clone();
                let mut crashes = 0usize;
                for sql in &corpus {
                    crashes += count_crashes(e.execute(sql));
                }
                black_box(crashes)
            })
            .items_per_sec()
            .expect("throughput declared");

        // Parse once, outside the timed region — the campaign does this in
        // its plan-prepare pass.
        let prepared: Vec<Result<Prepared, SqlError>> =
            corpus.iter().map(|sql| template.prepare(sql)).collect();

        // Shape-group the prepared corpus once, outside the timed region
        // (the campaign computes shapes in its plan-prepare pass). Groups
        // below `MIN_BATCH_GROUP` dissolve back into the scalar remainder,
        // which keeps its original corpus order — the order the prepared
        // arm runs in, so the two arms differ only in how the grouped
        // statements execute.
        let mut shape_order: Vec<ShapeKey> = Vec::new();
        let mut shape_groups: Vec<Vec<usize>> = Vec::new();
        for (i, p) in prepared.iter().enumerate() {
            if let Some(key) = p.as_ref().ok().and_then(|p| template.shape_key(p)) {
                match shape_order.iter().position(|&k| k == key) {
                    Some(g) => shape_groups[g].push(i),
                    None => {
                        shape_order.push(key);
                        shape_groups.push(vec![i]);
                    }
                }
            }
        }
        shape_groups.retain(|g| g.len() >= MIN_BATCH_GROUP);
        let mut in_group = vec![false; prepared.len()];
        let batch_groups: Vec<Vec<&Prepared>> = shape_groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|&i| {
                        in_group[i] = true;
                        prepared[i].as_ref().expect("shape implies ok")
                    })
                    .collect()
            })
            .collect();
        let scalar_rest: Vec<&Result<Prepared, SqlError>> = prepared
            .iter()
            .enumerate()
            .filter(|&(i, _)| !in_group[i])
            .map(|(_, p)| p)
            .collect();
        let grouped: usize = batch_groups.iter().map(|g| g.len()).sum();
        println!(
            "execute/{name}/batchable: {grouped}/{} statements in {} groups",
            corpus.len(),
            batch_groups.len()
        );

        // Prepared vs batch as a drift-robust *pair*: the two closures
        // alternate inside one measurement window, so their ratio (the
        // number `scripts/verify.sh` gates on) is immune to the few percent
        // of thermal/frequency drift that accumulates across sequential
        // measurement windows.
        let (prepared_sample, batch_sample) = b.bench_pair(
            (&format!("execute/{name}/prepared"), corpus.len() as u64, &mut || {
                let mut e = template.clone();
                let mut crashes = 0usize;
                for p in &prepared {
                    crashes += count_crashes(match p {
                        Ok(p) => e.execute_prepared(p),
                        Err(err) => ExecOutcome::Error(err.clone()),
                    });
                }
                black_box(crashes)
            }),
            (&format!("execute/{name}/batch"), corpus.len() as u64, &mut || {
                let mut e = template.clone();
                let mut arena = BatchArena::new();
                let mut crashes = 0usize;
                for group in &batch_groups {
                    let outcomes =
                        e.execute_batch_in(group, &mut arena).expect("shape-keyed group");
                    crashes += outcomes.iter().filter(|o| o.is_crash()).count();
                }
                for p in &scalar_rest {
                    crashes += count_crashes(match p {
                        Ok(p) => e.execute_prepared(p),
                        Err(err) => ExecOutcome::Error(err.clone()),
                    });
                }
                black_box(crashes)
            }),
        );
        let prepared_rate = prepared_sample.items_per_sec().expect("throughput declared");
        let batch_rate = batch_sample.items_per_sec().expect("throughput declared");

        println!("execute/{name}/speedup: {:.2}x statements/sec", prepared_rate / string_rate);
        println!(
            "execute/{name}/batch-speedup: {:.2}x over prepared ({:.2}x over string)",
            batch_rate / prepared_rate,
            batch_rate / string_rate
        );

        // Kernel subset: the grouped statements only, prepared vs batch on
        // equal footing. The whole-corpus ratio above is Amdahl-limited by
        // the scalar remainder (singletons, sub-threshold groups,
        // aggregates, FROM clauses); this pair isolates what the columnar
        // kernel itself buys on the statements it actually covers.
        let grouped_stmts: Vec<&Prepared> = batch_groups.iter().flatten().copied().collect();
        let (sub_prepared, sub_batch) = b.bench_pair(
            (&format!("execute/{name}/grouped-prepared"), grouped_stmts.len() as u64, &mut || {
                let mut e = template.clone();
                let mut crashes = 0usize;
                for p in &grouped_stmts {
                    crashes += count_crashes(e.execute_prepared(p));
                }
                black_box(crashes)
            }),
            (&format!("execute/{name}/grouped-batch"), grouped_stmts.len() as u64, &mut || {
                let mut e = template.clone();
                let mut arena = BatchArena::new();
                let mut crashes = 0usize;
                for group in &batch_groups {
                    let outcomes =
                        e.execute_batch_in(group, &mut arena).expect("shape-keyed group");
                    crashes += outcomes.iter().filter(|o| o.is_crash()).count();
                }
                black_box(crashes)
            }),
        );
        let sub_prepared_rate = sub_prepared.items_per_sec().expect("throughput declared");
        let sub_batch_rate = sub_batch.items_per_sec().expect("throughput declared");
        println!(
            "execute/{name}/kernel-speedup: {:.2}x over prepared on the {} grouped statements",
            sub_batch_rate / sub_prepared_rate,
            grouped_stmts.len()
        );
    }

    b.finish();
}
