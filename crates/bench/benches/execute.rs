//! String path vs prepared path: statements/sec over a fixed table4-scale
//! corpus (ClickHouse + MonetDB, the Table 4 bench budget).
//!
//! The string path is the pre-split discipline — every statement re-lexed
//! and re-parsed by `Engine::execute`. The prepared path parses the corpus
//! once (`Engine::prepare`) and then executes the owned ASTs
//! (`Engine::execute_prepared`), the way the campaign runner does since the
//! parse-once plan landed. Both arms run on a fresh clone of the same
//! prepared template per iteration, so the only difference measured is the
//! frontend amortisation. `BENCH_execute.json` records both rates; the
//! `prepared/speedup` line prints the ratio.

use soft_bench::Bench;
use soft_core::collect;
use soft_core::patterns::{self, GenCtx};
use soft_dialects::{DialectId, DialectProfile};
use soft_engine::{Engine, ExecOutcome, PatternId, Prepared, SqlError};
use std::collections::HashSet;
use std::hint::black_box;

/// A deterministic table4-scale statement stream: the seeds, then the
/// pattern-generated cases in pattern order, globally deduplicated and
/// truncated — the same shape the campaign planner produces at the Table 4
/// bench budget (2 000 statements, per-seed cap 8).
fn corpus(profile: &DialectProfile) -> (Engine, Vec<String>) {
    const MAX_STATEMENTS: usize = 2_000;
    const PER_SEED_CAP: usize = 8;
    let collection = collect::collect(profile);
    let ctx = GenCtx::new(&collection);
    let mut template = profile.engine();
    for stmt in &collection.preparation {
        let _ = template.execute(&stmt.to_string());
    }
    let mut seen: HashSet<String> = HashSet::new();
    let mut corpus: Vec<String> = Vec::new();
    for seed in &collection.seeds {
        let sql = seed.to_string();
        if seen.insert(sql.clone()) {
            corpus.push(sql);
        }
    }
    let mut buf = Vec::new();
    'outer: for pattern in PatternId::ALL {
        for (si, seed) in collection.seeds.iter().enumerate() {
            patterns::apply_salted(pattern, seed, &ctx, PER_SEED_CAP, si, &mut buf);
            for case in buf.drain(..) {
                if corpus.len() >= MAX_STATEMENTS {
                    break 'outer;
                }
                if seen.insert(case.sql.clone()) {
                    corpus.push(case.sql);
                }
            }
        }
    }
    (template, corpus)
}

fn count_crashes(outcome: ExecOutcome) -> usize {
    usize::from(outcome.is_crash())
}

fn main() {
    let mut b = Bench::new("execute");

    for id in [DialectId::Clickhouse, DialectId::Monetdb] {
        let (template, corpus) = corpus(&DialectProfile::build(id));
        let name = id.name();

        let string_rate = b
            .bench_items(&format!("execute/{name}/string"), corpus.len() as u64, || {
                let mut e = template.clone();
                let mut crashes = 0usize;
                for sql in &corpus {
                    crashes += count_crashes(e.execute(sql));
                }
                black_box(crashes)
            })
            .items_per_sec()
            .expect("throughput declared");

        // Parse once, outside the timed region — the campaign does this in
        // its plan-prepare pass.
        let prepared: Vec<Result<Prepared, SqlError>> =
            corpus.iter().map(|sql| template.prepare(sql)).collect();
        let prepared_rate = b
            .bench_items(&format!("execute/{name}/prepared"), corpus.len() as u64, || {
                let mut e = template.clone();
                let mut crashes = 0usize;
                for p in &prepared {
                    crashes += count_crashes(match p {
                        Ok(p) => e.execute_prepared(p),
                        Err(err) => ExecOutcome::Error(err.clone()),
                    });
                }
                black_box(crashes)
            })
            .items_per_sec()
            .expect("throughput declared");

        println!("execute/{name}/speedup: {:.2}x statements/sec", prepared_rate / string_rate);
    }

    b.finish();
}
