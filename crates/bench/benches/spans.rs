//! Flight-recorder overhead: the same campaign with spans off vs armed,
//! measured as a drift-robust pair (the two arms alternate inside one
//! measurement window, so the ratio is immune to thermal/frequency drift).
//!
//! The span sinks are plain per-shard `Vec` pushes with no locks and no
//! cross-thread traffic, so arming the recorder must stay within a few
//! percent of the bare campaign; EXPERIMENTS.md records the measured
//! ratio and `scripts/verify.sh` gates on ≤ 5% statements/sec overhead.
//! The report itself is asserted byte-identical up front — spans observe
//! the run, they never steer it.

use soft_bench::Bench;
use soft_core::campaign::{run_soft_parallel_live, CampaignConfig, LivePlane};
use soft_dialects::{DialectId, DialectProfile};
use std::hint::black_box;

fn main() {
    let mut b = Bench::new("spans");

    let cfg = CampaignConfig { max_statements: 6_000, per_seed_cap: 8, ..CampaignConfig::default() };
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let off_plane = LivePlane::default();
    let on_plane = LivePlane { spans: true, ..LivePlane::default() };

    let off_run = run_soft_parallel_live(&profile, &cfg, 2, &off_plane);
    let on_run = run_soft_parallel_live(&profile, &cfg, 2, &on_plane);
    assert_eq!(off_run.report, on_run.report, "arming spans changed the campaign report");
    let spans = on_run.spans.as_ref().expect("spans were armed");
    assert!(!spans.spans.is_empty(), "armed recorder produced no spans");
    let statements = off_run.report.statements_executed;
    println!("spans/recorded: {} spans over {statements} statements", spans.spans.len());

    let (off, on) = b.bench_pair(
        ("spans/ClickHouse/off", statements as u64, &mut || {
            let run = run_soft_parallel_live(&profile, &cfg, 2, &off_plane);
            black_box(run.report.findings.len())
        }),
        ("spans/ClickHouse/on", statements as u64, &mut || {
            let run = run_soft_parallel_live(&profile, &cfg, 2, &on_plane);
            black_box(run.report.findings.len())
        }),
    );
    let off_rate = off.items_per_sec().expect("throughput declared");
    let on_rate = on.items_per_sec().expect("throughput declared");
    println!(
        "spans/overhead: {:.2}% statements/sec ({:.0} off vs {:.0} on)",
        100.0 * (off_rate - on_rate) / off_rate,
        off_rate,
        on_rate
    );

    b.finish();
}
