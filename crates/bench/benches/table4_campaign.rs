//! The Table 4 experiment as a benchmark: a reduced-budget SOFT campaign
//! per target, reporting bug-discovery work rates. The full-budget run is
//! `repro table4`.

use soft_bench::Bench;
use soft_core::campaign::{run_soft, CampaignConfig};
use soft_dialects::{DialectId, DialectProfile};
use std::hint::black_box;

fn main() {
    let mut b = Bench::new("table4_campaign");

    for id in [DialectId::Monetdb, DialectId::Clickhouse, DialectId::Mariadb] {
        let profile = DialectProfile::build(id);
        b.bench(&format!("table4_campaign/{}", id.name()), || {
            let report = run_soft(
                &profile,
                &CampaignConfig { max_statements: 2_000, per_seed_cap: 8, patterns: None },
            );
            black_box(report.findings.len())
        });
    }

    // Building a profile includes corpus construction and witness synthesis.
    b.bench("profile_build/virtuoso", || {
        black_box(DialectProfile::build(DialectId::Virtuoso))
    });

    b.finish();
}
