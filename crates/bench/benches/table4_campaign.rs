//! The Table 4 experiment as a benchmark: a reduced-budget SOFT campaign
//! per target, reporting bug-discovery work rates, plus the parallel-runner
//! worker sweep (statements/sec at 1, 2, and 4 workers — the §7.1
//! 128-core-testbed analogue). The full-budget run is `repro table4`.

use soft_bench::Bench;
use soft_core::campaign::{run_soft_parallel, CampaignConfig};
use soft_core::TelemetryConfig;
use soft_dialects::{DialectId, DialectProfile};
use std::hint::black_box;

fn main() {
    let mut b = Bench::new("table4_campaign");

    let cfg = CampaignConfig { max_statements: 2_000, per_seed_cap: 8, ..CampaignConfig::default() };
    for id in [DialectId::Monetdb, DialectId::Clickhouse, DialectId::Mariadb] {
        let profile = DialectProfile::build(id);
        let statements = run_soft_parallel(&profile, &cfg, 1).statements_executed;
        b.bench_items(&format!("table4_campaign/{}", id.name()), statements as u64, || {
            let report = run_soft_parallel(&profile, &cfg, 1);
            black_box(report.findings.len())
        });
    }

    // Worker sweep: the same campaign at 1, 2, and 4 workers. The report is
    // byte-identical across the sweep (the determinism-by-merge guarantee);
    // only items_per_sec moves, and it scales with the host's core count.
    let profile = DialectProfile::build(DialectId::Clickhouse);
    let sweep_cfg =
        CampaignConfig { max_statements: 6_000, per_seed_cap: 8, ..CampaignConfig::default() };
    let reference = run_soft_parallel(&profile, &sweep_cfg, 1);
    for workers in [1usize, 2, 4] {
        assert_eq!(
            reference,
            run_soft_parallel(&profile, &sweep_cfg, workers),
            "worker count changed the campaign report"
        );
        b.bench_items(
            &format!("table4_campaign/parallel/ClickHouse/workers{workers}"),
            reference.statements_executed as u64,
            || {
                let report = run_soft_parallel(&profile, &sweep_cfg, workers);
                black_box(report.findings.len())
            },
        );
    }

    // Telemetry-on arm of the sweep: same campaign with the event journal,
    // yield metrics, and coverage curves active. Stripping the telemetry
    // field back to `None` must recover the Off-mode report exactly (the
    // ledger observes the run, it never steers it); the throughput gap to
    // `workers4` above is the telemetry overhead.
    let telemetry_cfg = CampaignConfig { telemetry: TelemetryConfig::on(), ..sweep_cfg.clone() };
    let mut on = run_soft_parallel(&profile, &telemetry_cfg, 4);
    assert!(on.telemetry.is_some(), "telemetry was requested");
    on.telemetry = None;
    assert_eq!(reference, on, "telemetry changed the campaign report");
    b.bench_items(
        "table4_campaign/parallel/ClickHouse/workers4/telemetry",
        reference.statements_executed as u64,
        || {
            let report = run_soft_parallel(&profile, &telemetry_cfg, 4);
            black_box(report.findings.len())
        },
    );

    // Building a profile includes corpus construction and witness synthesis.
    b.bench("profile_build/virtuoso", || {
        black_box(DialectProfile::build(DialectId::Virtuoso))
    });

    b.finish();
}
