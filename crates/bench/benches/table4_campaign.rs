//! The Table 4 experiment as a benchmark: a reduced-budget SOFT campaign
//! per target, reporting bug-discovery work rates. The full-budget run is
//! `repro table4`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use soft_core::campaign::{run_soft, CampaignConfig};
use soft_dialects::{DialectId, DialectProfile};

fn bench_campaigns(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_campaign");
    g.sample_size(10);
    for id in [DialectId::Monetdb, DialectId::Clickhouse, DialectId::Mariadb] {
        let profile = DialectProfile::build(id);
        g.bench_with_input(BenchmarkId::from_parameter(id.name()), &profile, |bench, p| {
            bench.iter(|| {
                let report = run_soft(
                    p,
                    &CampaignConfig { max_statements: 2_000, per_seed_cap: 8, patterns: None },
                );
                black_box(report.findings.len())
            })
        });
    }
    g.finish();
}

fn bench_profile_build(c: &mut Criterion) {
    // Building a profile includes corpus construction and witness synthesis.
    c.bench_function("profile_build/virtuoso", |bench| {
        bench.iter(|| black_box(DialectProfile::build(DialectId::Virtuoso)))
    });
}

criterion_group!(benches, bench_campaigns, bench_profile_build);
criterion_main!(benches);
