//! Throughput of the engine's three-stage pipeline: the cost model behind
//! the statement budgets that substitute the paper's wall-clock budgets.

use soft_bench::Bench;
use soft_engine::Engine;
use std::hint::black_box;

fn main() {
    let mut b = Bench::new("sql_pipeline");

    let statements = [
        "SELECT 1 + 2 * 3",
        "SELECT UPPER('abc'), LENGTH(CONCAT('a', 'b'))",
        "SELECT a, COUNT(*) FROM t1 WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a LIMIT 5",
        "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')",
    ];
    for (i, sql) in statements.iter().enumerate() {
        b.bench(&format!("parse/stmt{i}"), || {
            black_box(soft_parser::parse_statement(sql).unwrap())
        });
    }

    let mut e = Engine::with_default_functions(Default::default());
    b.bench("execute/scalar_function", || black_box(e.execute("SELECT UPPER('hello world')")));

    let mut e = Engine::with_default_functions(Default::default());
    let sql = format!("SELECT AVG({})", "9".repeat(45));
    b.bench("execute/boundary_literal", || black_box(e.execute(&sql)));

    let mut e = Engine::with_default_functions(Default::default());
    e.execute("CREATE TABLE b (v INTEGER)");
    let values: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
    e.execute(&format!("INSERT INTO b VALUES {}", values.join(", ")));
    b.bench("execute/aggregate_over_table", || {
        black_box(e.execute("SELECT AVG(v), COUNT(*), MAX(v) FROM b"))
    });

    let mut e = Engine::with_default_functions(Default::default());
    b.bench("execute/nested_functions", || {
        black_box(e.execute("SELECT JSON_LENGTH(CONCAT('[', REPEAT('1,', 50), '1]'))"))
    });

    // The fault-matching overhead on the hot path, with Virtuoso's 45 faults
    // loaded.
    let profile = soft_dialects::DialectProfile::build(soft_dialects::DialectId::Virtuoso);
    let mut e = profile.engine();
    b.bench("fault_check/non_matching_call", || black_box(e.execute("SELECT UPPER('plain')")));

    let witness = profile.faults[0].witness.clone();
    let mut e = profile.engine();
    b.bench("fault_check/crashing_call", || black_box(e.execute(&witness)));

    b.finish();
}
