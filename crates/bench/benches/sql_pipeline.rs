//! Throughput of the engine's three-stage pipeline: the cost model behind
//! the statement budgets that substitute the paper's wall-clock budgets.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use soft_engine::Engine;

fn bench_parse(c: &mut Criterion) {
    let statements = [
        "SELECT 1 + 2 * 3",
        "SELECT UPPER('abc'), LENGTH(CONCAT('a', 'b'))",
        "SELECT a, COUNT(*) FROM t1 WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a LIMIT 5",
        "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')",
    ];
    let mut g = c.benchmark_group("parse");
    for (i, sql) in statements.iter().enumerate() {
        g.bench_function(format!("stmt{i}"), |bench| {
            bench.iter(|| black_box(soft_parser::parse_statement(sql).unwrap()))
        });
    }
    g.finish();
}

fn bench_execute(c: &mut Criterion) {
    let mut g = c.benchmark_group("execute");
    g.bench_function("scalar_function", |bench| {
        let mut e = Engine::with_default_functions(Default::default());
        bench.iter(|| black_box(e.execute("SELECT UPPER('hello world')")))
    });
    g.bench_function("boundary_literal", |bench| {
        let mut e = Engine::with_default_functions(Default::default());
        let sql = format!("SELECT AVG({})", "9".repeat(45));
        bench.iter(|| black_box(e.execute(&sql)))
    });
    g.bench_function("aggregate_over_table", |bench| {
        let mut e = Engine::with_default_functions(Default::default());
        e.execute("CREATE TABLE b (v INTEGER)");
        let values: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
        e.execute(&format!("INSERT INTO b VALUES {}", values.join(", ")));
        bench.iter(|| black_box(e.execute("SELECT AVG(v), COUNT(*), MAX(v) FROM b")))
    });
    g.bench_function("nested_functions", |bench| {
        let mut e = Engine::with_default_functions(Default::default());
        bench.iter(|| {
            black_box(e.execute("SELECT JSON_LENGTH(CONCAT('[', REPEAT('1,', 50), '1]'))"))
        })
    });
    g.finish();
}

fn bench_fault_checking(c: &mut Criterion) {
    // The fault-matching overhead on the hot path, with Virtuoso's 45 faults
    // loaded.
    let profile = soft_dialects::DialectProfile::build(soft_dialects::DialectId::Virtuoso);
    let mut g = c.benchmark_group("fault_check");
    g.bench_function("non_matching_call", |bench| {
        let mut e = profile.engine();
        bench.iter(|| black_box(e.execute("SELECT UPPER('plain')")))
    });
    g.bench_function("crashing_call", |bench| {
        let witness = profile.faults[0].witness.clone();
        let mut e = profile.engine();
        bench.iter(|| black_box(e.execute(&witness)))
    });
    g.finish();
}

criterion_group!(benches, bench_parse, bench_execute, bench_fault_checking);
criterion_main!(benches);
