//! Static vs adaptive budget scheduling on the Table 4 corpora: the same
//! campaign run twice per target — once with the static round-robin
//! planner, once with the epoch-based bandit (`CampaignConfig::schedule`) —
//! comparing unique bugs per statement and work rates. The comparison
//! table is the EXPERIMENTS.md "feedback scheduling" artifact; the gate
//! asserts the adaptive planner matches or beats the static yield on at
//! least one corpus at the default budget.
//!
//! `SOFT_SCHED_BENCH_BUDGET` overrides the per-arm statement budget for
//! fast CI smokes; the yield gate only applies at the default budget
//! (small smoke budgets make the yields too noisy to compare).

use soft_bench::Bench;
use soft_core::campaign::{run_soft_parallel, CampaignConfig};
use soft_core::{CampaignReport, ScheduleConfig};
use soft_dialects::{DialectId, DialectProfile};
use std::hint::black_box;

fn main() {
    let mut b = Bench::new("schedule");
    let (budget, gated) = match std::env::var("SOFT_SCHED_BENCH_BUDGET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) => (n.max(1), false),
        None => (20_000, true),
    };
    let workers = soft_core::default_workers().min(4);
    let rate = |r: &CampaignReport| {
        1e5 * r.findings.len() as f64 / r.statements_executed.max(1) as f64
    };

    println!("static vs adaptive scheduling — budget {budget} per arm, {workers} workers\n");
    println!(
        "{:<12} {:>6} {:>6} {:>15} {:>15}",
        "corpus", "static", "adapt", "static/100k", "adaptive/100k"
    );
    let mut adaptive_holds = 0usize;
    for id in [DialectId::Monetdb, DialectId::Clickhouse, DialectId::Mariadb] {
        let profile = DialectProfile::build(id);
        let static_cfg = CampaignConfig {
            max_statements: budget,
            per_seed_cap: 16,
            ..CampaignConfig::default()
        };
        let adaptive_cfg =
            CampaignConfig { schedule: ScheduleConfig::on(), ..static_cfg.clone() };
        let s = run_soft_parallel(&profile, &static_cfg, workers);
        let a = run_soft_parallel(&profile, &adaptive_cfg, workers);
        println!(
            "{:<12} {:>6} {:>6} {:>15.2} {:>15.2}",
            id.name(),
            s.findings.len(),
            a.findings.len(),
            rate(&s),
            rate(&a)
        );
        if rate(&a) >= rate(&s) {
            adaptive_holds += 1;
        }
        b.bench_items(
            &format!("schedule/static/{}", id.name()),
            s.statements_executed as u64,
            || black_box(run_soft_parallel(&profile, &static_cfg, workers).findings.len()),
        );
        b.bench_items(
            &format!("schedule/adaptive/{}", id.name()),
            a.statements_executed as u64,
            || black_box(run_soft_parallel(&profile, &adaptive_cfg, workers).findings.len()),
        );
    }
    if gated {
        assert!(
            adaptive_holds >= 1,
            "adaptive scheduling must match or beat the static \
             unique-bugs-per-statement yield on at least one Table 4 corpus"
        );
    }
    b.finish();
}
