//! Throughput of SOFT's collection and pattern-generation stages (§7.1
//! steps 1–2) and of the Table 3 literal patterns specifically.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use soft_core::collect;
use soft_core::patterns::{apply, GenCtx};
use soft_dialects::{DialectId, DialectProfile};
use soft_engine::PatternId;

fn bench_collection(c: &mut Criterion) {
    let profile = DialectProfile::build(DialectId::Mariadb);
    c.bench_function("collection/mariadb", |bench| {
        bench.iter(|| black_box(collect::collect(&profile)))
    });
}

fn bench_patterns(c: &mut Criterion) {
    let profile = DialectProfile::build(DialectId::Mariadb);
    let collection = collect::collect(&profile);
    let ctx = GenCtx::new(&collection);
    let seed = soft_parser::parse_statement("SELECT JSON_LENGTH('{\"a\": [1, 2]}', '$.a')")
        .expect("valid seed");
    let mut g = c.benchmark_group("pattern_apply");
    for pattern in PatternId::ALL {
        if pattern == PatternId::P1_1 {
            continue;
        }
        g.bench_with_input(BenchmarkId::from_parameter(pattern.label()), &pattern, |bench, p| {
            bench.iter(|| {
                let mut out = Vec::new();
                apply(*p, &seed, &ctx, 64, &mut out);
                black_box(out)
            })
        });
    }
    g.finish();
}

fn bench_full_generation(c: &mut Criterion) {
    // One full generation sweep (all patterns × all seeds) for the smallest
    // target — the up-front cost of a campaign.
    let profile = DialectProfile::build(DialectId::Monetdb);
    let collection = collect::collect(&profile);
    let ctx = GenCtx::new(&collection);
    c.bench_function("generation/monetdb_full_sweep", |bench| {
        bench.iter(|| {
            let mut total = 0usize;
            for pattern in PatternId::ALL {
                for seed in &collection.seeds {
                    let mut out = Vec::new();
                    apply(pattern, seed, &ctx, 16, &mut out);
                    total += out.len();
                }
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_collection, bench_patterns, bench_full_generation);
criterion_main!(benches);
