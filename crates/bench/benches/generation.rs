//! Throughput of SOFT's collection and pattern-generation stages (§7.1
//! steps 1–2) and of the Table 3 literal patterns specifically.

use soft_bench::Bench;
use soft_core::collect;
use soft_core::patterns::{apply, GenCtx};
use soft_dialects::{DialectId, DialectProfile};
use soft_engine::PatternId;
use std::hint::black_box;

fn main() {
    let mut b = Bench::new("generation");

    let profile = DialectProfile::build(DialectId::Mariadb);
    b.bench("collection/mariadb", || black_box(collect::collect(&profile)));

    let collection = collect::collect(&profile);
    let ctx = GenCtx::new(&collection);
    let seed = soft_parser::parse_statement("SELECT JSON_LENGTH('{\"a\": [1, 2]}', '$.a')")
        .expect("valid seed");
    // All ten patterns, P1.1 included — the campaign applies every one.
    for pattern in PatternId::ALL {
        b.bench(&format!("pattern_apply/{}", pattern.label()), || {
            let mut out = Vec::new();
            apply(pattern, &seed, &ctx, 64, &mut out);
            black_box(out)
        });
    }

    // One full generation sweep (all patterns × all seeds) for the smallest
    // target — the up-front cost of a campaign.
    let monet = DialectProfile::build(DialectId::Monetdb);
    let monet_collection = collect::collect(&monet);
    let monet_ctx = GenCtx::new(&monet_collection);
    b.bench("generation/monetdb_full_sweep", || {
        let mut total = 0usize;
        for pattern in PatternId::ALL {
            for seed in &monet_collection.seeds {
                let mut out = Vec::new();
                apply(pattern, seed, &monet_ctx, 16, &mut out);
                total += out.len();
            }
        }
        black_box(total)
    });

    b.finish();
}
