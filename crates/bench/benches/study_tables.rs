//! The study artifacts (Tables 1-2, Figure 1, Findings 1-4) as benchmarks:
//! dataset construction plus each analysis, with correctness asserted
//! against the paper's published values inside the measured closure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use soft_study::{analysis, studied_bugs};

fn bench_dataset(c: &mut Criterion) {
    c.bench_function("study/dataset_build", |b| b.iter(|| black_box(studied_bugs())));
}

fn bench_analyses(c: &mut Criterion) {
    let bugs = studied_bugs();
    let mut g = c.benchmark_group("study");
    g.bench_function("table1", |b| {
        b.iter(|| {
            let t = analysis::table1(&bugs);
            assert_eq!(t[2].1, 269);
            black_box(t)
        })
    });
    g.bench_function("table2", |b| {
        b.iter(|| {
            let t = analysis::table2(&bugs);
            assert_eq!(t, analysis::paper::TABLE2);
            black_box(t)
        })
    });
    g.bench_function("figure1", |b| {
        b.iter(|| {
            let f = analysis::figure1(&bugs);
            assert_eq!(f[0].1, analysis::paper::STRING_OCCURRENCES);
            black_box(f)
        })
    });
    g.bench_function("findings", |b| {
        b.iter(|| {
            let f1 = analysis::finding1(&bugs);
            assert_eq!(f1.execution, analysis::paper::STAGE_EXECUTION);
            let rc = analysis::root_causes(&bugs);
            assert_eq!(rc.boundary_total(), analysis::paper::BOUNDARY_TOTAL);
            black_box((f1, rc))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dataset, bench_analyses);
criterion_main!(benches);
