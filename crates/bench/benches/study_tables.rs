//! The study artifacts (Tables 1-2, Figure 1, Findings 1-4) as benchmarks:
//! dataset construction plus each analysis, with correctness asserted
//! against the paper's published values inside the measured closure.

use soft_bench::Bench;
use soft_study::{analysis, studied_bugs};
use std::hint::black_box;

fn main() {
    let mut b = Bench::new("study_tables");

    b.bench("study/dataset_build", || black_box(studied_bugs()));

    let bugs = studied_bugs();
    b.bench("study/table1", || {
        let t = analysis::table1(&bugs);
        assert_eq!(t[2].1, 269);
        black_box(t)
    });
    b.bench("study/table2", || {
        let t = analysis::table2(&bugs);
        assert_eq!(t, analysis::paper::TABLE2);
        black_box(t)
    });
    b.bench("study/figure1", || {
        let f = analysis::figure1(&bugs);
        assert_eq!(f[0].1, analysis::paper::STRING_OCCURRENCES);
        black_box(f)
    });
    b.bench("study/findings", || {
        let f1 = analysis::finding1(&bugs);
        assert_eq!(f1.execution, analysis::paper::STAGE_EXECUTION);
        let rc = analysis::root_causes(&bugs);
        assert_eq!(rc.boundary_total(), analysis::paper::BOUNDARY_TOTAL);
        black_box((f1, rc))
    });

    b.finish();
}
