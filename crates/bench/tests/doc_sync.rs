//! Documentation-sync guard: the operator guide (`docs/CAMPAIGNS.md`) must
//! cover the entire `repro` CLI surface.
//!
//! The binary and `repro help` are driven by the static command table in
//! `soft_bench::cli`; this test walks the same table against the guide, so
//! adding a subcommand or flag without documenting it — or documenting a
//! flag the binary no longer accepts under a renamed token — fails the
//! build rather than shipping drift.

use soft_bench::{COMMANDS, EXIT_CODES};

fn operator_guide() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/CAMPAIGNS.md");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("docs/CAMPAIGNS.md must exist next to the CLI it documents: {e}"))
}

/// Every subcommand name, its usage line, and every flag token from the
/// CLI table appear verbatim in the guide.
#[test]
fn every_subcommand_and_flag_is_documented() {
    let doc = operator_guide();
    for cmd in COMMANDS {
        assert!(
            doc.contains(cmd.name),
            "subcommand `{}` is missing from docs/CAMPAIGNS.md",
            cmd.name
        );
        assert!(
            doc.contains(cmd.usage),
            "usage line `repro {}` is missing from docs/CAMPAIGNS.md",
            cmd.usage
        );
        for f in cmd.flags {
            assert!(
                doc.contains(f.flag),
                "flag `{}` of `repro {}` is missing from docs/CAMPAIGNS.md",
                f.flag,
                cmd.name
            );
        }
    }
}

/// The guide documents the full exit-code contract.
#[test]
fn every_exit_code_is_documented() {
    let doc = operator_guide();
    for e in EXIT_CODES {
        assert!(
            doc.contains(&format!("`{}`", e.code)),
            "exit code {} is missing from docs/CAMPAIGNS.md",
            e.code
        );
    }
    for needle in ["exit code", "Exit code"] {
        if doc.contains(needle) {
            return;
        }
    }
    panic!("docs/CAMPAIGNS.md must have an exit-code section");
}
