//! SQL function categories.
//!
//! The paper classifies functions "following the official documentations of
//! MySQL and PostgreSQL" (§4.2, Figure 1). This is that taxonomy, shared by
//! the engine's function registry, the dialect fault corpus (Table 4 rows)
//! and the bug-study dataset.

use std::fmt;

/// A built-in SQL function category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FunctionCategory {
    /// String operations (search, replacement, regex, hashing, ...).
    String,
    /// Aggregates (`COUNT`, `AVG`, `GROUP_CONCAT`, ...).
    Aggregate,
    /// Arithmetic and transcendental math.
    Math,
    /// Date and time.
    Date,
    /// JSON documents.
    Json,
    /// XML documents.
    Xml,
    /// Spatial / geometry.
    Spatial,
    /// Conditional (`IF`, `COALESCE`, `INTERVAL`, ...).
    Condition,
    /// Explicit conversion helpers (`TO_CHAR`, `toDecimalString`, ...).
    Casting,
    /// System / session / miscellaneous.
    System,
    /// Sequence manipulation (`NEXTVAL`, ...).
    Sequence,
    /// Array operations (DuckDB / ClickHouse style).
    Array,
    /// Map operations.
    Map,
    /// Comparison helpers (`STRCMP`, ...), kept for Figure 1 parity.
    Comparison,
    /// Control / flow helpers appearing in bug PoCs (`BENCHMARK`, ...).
    Control,
}

impl FunctionCategory {
    /// Every category, in the order Figure 1 reports them.
    pub const ALL: [FunctionCategory; 15] = [
        FunctionCategory::String,
        FunctionCategory::Aggregate,
        FunctionCategory::Math,
        FunctionCategory::Date,
        FunctionCategory::Json,
        FunctionCategory::Xml,
        FunctionCategory::Spatial,
        FunctionCategory::Condition,
        FunctionCategory::Casting,
        FunctionCategory::System,
        FunctionCategory::Sequence,
        FunctionCategory::Array,
        FunctionCategory::Map,
        FunctionCategory::Comparison,
        FunctionCategory::Control,
    ];

    /// A stable lowercase label (used in reports and Table 4 rows).
    pub fn label(&self) -> &'static str {
        match self {
            FunctionCategory::String => "string",
            FunctionCategory::Aggregate => "aggregate",
            FunctionCategory::Math => "math",
            FunctionCategory::Date => "date",
            FunctionCategory::Json => "json",
            FunctionCategory::Xml => "xml",
            FunctionCategory::Spatial => "spatial",
            FunctionCategory::Condition => "condition",
            FunctionCategory::Casting => "casting",
            FunctionCategory::System => "system",
            FunctionCategory::Sequence => "sequence",
            FunctionCategory::Array => "array",
            FunctionCategory::Map => "map",
            FunctionCategory::Comparison => "comparison",
            FunctionCategory::Control => "control",
        }
    }

    /// Parses a label produced by [`FunctionCategory::label`].
    pub fn from_label(s: &str) -> Option<FunctionCategory> {
        FunctionCategory::ALL.into_iter().find(|c| c.label() == s)
    }
}

impl fmt::Display for FunctionCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for c in FunctionCategory::ALL {
            assert_eq!(FunctionCategory::from_label(c.label()), Some(c));
        }
        assert_eq!(FunctionCategory::from_label("nope"), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = FunctionCategory::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FunctionCategory::ALL.len());
    }
}
