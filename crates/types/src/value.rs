//! The SQL value model shared by the parser, engine, dialects and tools.

use crate::datetime::{Date, DateTime, Interval, Time};
use crate::decimal::Decimal;
use crate::geometry::Geometry;
use crate::json::JsonValue;
use crate::xml::XmlDocument;
use std::cmp::Ordering;
use std::fmt;

/// The engine's data types.
///
/// Container types (`Array`, `Map`, `Row`) are dynamically element-typed,
/// which mirrors how the studied DBMSs behave at the SQL-function boundary —
/// it is exactly the "internal data type instance" layer the paper's casting
/// bugs (§5.2) corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// The type of `NULL` before coercion.
    Null,
    /// Boolean.
    Boolean,
    /// 64-bit signed integer.
    Integer,
    /// Arbitrary-precision decimal.
    Decimal,
    /// IEEE-754 double.
    Float,
    /// Character string.
    Text,
    /// Byte string.
    Binary,
    /// Calendar date.
    Date,
    /// Time of day.
    Time,
    /// Date and time.
    DateTime,
    /// Mixed-unit interval.
    Interval,
    /// JSON document.
    Json,
    /// XML fragment.
    Xml,
    /// Geometry.
    Geometry,
    /// Array of values.
    Array,
    /// Key/value map.
    Map,
    /// Row (tuple) of values.
    Row,
    /// The `*` pseudo-value (Pattern 1.1's asterisk boundary literal).
    Star,
}

impl DataType {
    /// All concrete types a generator may cast to (excludes `Null`/`Star`).
    pub const CASTABLE: [DataType; 15] = [
        DataType::Boolean,
        DataType::Integer,
        DataType::Decimal,
        DataType::Float,
        DataType::Text,
        DataType::Binary,
        DataType::Date,
        DataType::Time,
        DataType::DateTime,
        DataType::Interval,
        DataType::Json,
        DataType::Xml,
        DataType::Geometry,
        DataType::Array,
        DataType::Map,
    ];

    /// The SQL spelling used in `CAST(x AS ...)`.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Null => "NULL",
            DataType::Boolean => "BOOLEAN",
            DataType::Integer => "INTEGER",
            DataType::Decimal => "DECIMAL",
            DataType::Float => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::Binary => "BINARY",
            DataType::Date => "DATE",
            DataType::Time => "TIME",
            DataType::DateTime => "DATETIME",
            DataType::Interval => "INTERVAL",
            DataType::Json => "JSON",
            DataType::Xml => "XML",
            DataType::Geometry => "GEOMETRY",
            DataType::Array => "ARRAY",
            DataType::Map => "MAP",
            DataType::Row => "ROW",
            DataType::Star => "STAR",
        }
    }

    /// Parses a SQL type name (as appearing in `CAST` / column definitions).
    pub fn parse_sql_name(s: &str) -> Option<DataType> {
        Some(match s.to_ascii_uppercase().as_str() {
            "BOOLEAN" | "BOOL" => DataType::Boolean,
            "INTEGER" | "INT" | "BIGINT" | "SMALLINT" | "TINYINT" | "SIGNED" | "UNSIGNED" => {
                DataType::Integer
            }
            "DECIMAL" | "NUMERIC" | "DEC" => DataType::Decimal,
            "DOUBLE" | "FLOAT" | "REAL" => DataType::Float,
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" | "CLOB" => DataType::Text,
            "BINARY" | "VARBINARY" | "BLOB" | "BYTEA" => DataType::Binary,
            "DATE" => DataType::Date,
            "TIME" => DataType::Time,
            "DATETIME" | "TIMESTAMP" => DataType::DateTime,
            "INTERVAL" => DataType::Interval,
            "JSON" | "JSONB" => DataType::Json,
            "XML" => DataType::Xml,
            "GEOMETRY" => DataType::Geometry,
            "ARRAY" => DataType::Array,
            "MAP" => DataType::Map,
            "ROW" => DataType::Row,
            _ => return None,
        })
    }

    /// True for the numeric family.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Integer | DataType::Decimal | DataType::Float)
    }

    /// True for the temporal family.
    pub fn is_temporal(&self) -> bool {
        matches!(
            self,
            DataType::Date | DataType::Time | DataType::DateTime | DataType::Interval
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Boolean(bool),
    /// 64-bit integer.
    Integer(i64),
    /// Arbitrary-precision decimal.
    Decimal(Decimal),
    /// Double.
    Float(f64),
    /// Character string.
    Text(String),
    /// Byte string.
    Binary(Vec<u8>),
    /// Date.
    Date(Date),
    /// Time of day.
    Time(Time),
    /// Date and time.
    DateTime(DateTime),
    /// Interval.
    Interval(Interval),
    /// JSON document.
    Json(JsonValue),
    /// XML fragment.
    Xml(XmlDocument),
    /// Geometry.
    Geometry(Geometry),
    /// Array.
    Array(Vec<Value>),
    /// Ordered key/value map.
    Map(Vec<(Value, Value)>),
    /// Row (tuple).
    Row(Vec<Value>),
    /// The `*` pseudo-value passed as a bare function argument.
    Star,
}

/// Error for comparisons that are undefined between the operand types
/// (e.g. ROW vs ROW in contexts that require scalars — MDEV-14596's trigger).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareError {
    /// Left operand type.
    pub left: DataType,
    /// Right operand type.
    pub right: DataType,
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot compare {} with {}", self.left, self.right)
    }
}

impl std::error::Error for CompareError {}

impl Value {
    /// The value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Boolean(_) => DataType::Boolean,
            Value::Integer(_) => DataType::Integer,
            Value::Decimal(_) => DataType::Decimal,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
            Value::Binary(_) => DataType::Binary,
            Value::Date(_) => DataType::Date,
            Value::Time(_) => DataType::Time,
            Value::DateTime(_) => DataType::DateTime,
            Value::Interval(_) => DataType::Interval,
            Value::Json(_) => DataType::Json,
            Value::Xml(_) => DataType::Xml,
            Value::Geometry(_) => DataType::Geometry,
            Value::Array(_) => DataType::Array,
            Value::Map(_) => DataType::Map,
            Value::Row(_) => DataType::Row,
            Value::Star => DataType::Star,
        }
    }

    /// True iff the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL three-valued truthiness: NULL is unknown (`None`), numbers are
    /// true when non-zero, strings when they parse to a non-zero number
    /// (MySQL semantics).
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Boolean(b) => Some(*b),
            Value::Integer(i) => Some(*i != 0),
            Value::Decimal(d) => Some(!d.is_zero()),
            Value::Float(f) => Some(*f != 0.0),
            Value::Text(s) => {
                let n: f64 = parse_numeric_prefix(s);
                Some(n != 0.0)
            }
            _ => Some(true),
        }
    }

    /// Numeric view of the value, if it is in the numeric family.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Decimal(d) => Some(d.to_f64()),
            Value::Float(f) => Some(*f),
            Value::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// SQL comparison. `Ok(None)` means unknown (a NULL operand);
    /// `Err` means the types are not comparable.
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>, CompareError> {
        use Value::*;
        let incomparable = || CompareError { left: self.data_type(), right: other.data_type() };
        if self.is_null() || other.is_null() {
            return Ok(None);
        }
        // Numeric family compares across representations.
        if self.data_type().is_numeric() && other.data_type().is_numeric() {
            match (self, other) {
                (Integer(a), Integer(b)) => return Ok(Some(a.cmp(b))),
                (Decimal(a), Decimal(b)) => return Ok(Some(a.cmp(b))),
                _ => {
                    let a = self.as_f64().expect("numeric");
                    let b = other.as_f64().expect("numeric");
                    return Ok(a.partial_cmp(&b));
                }
            }
        }
        match (self, other) {
            (Boolean(a), Boolean(b)) => Ok(Some(a.cmp(b))),
            (Text(a), Text(b)) => Ok(Some(a.cmp(b))),
            (Binary(a), Binary(b)) => Ok(Some(a.cmp(b))),
            (Date(a), Date(b)) => Ok(Some(a.cmp(b))),
            (Time(a), Time(b)) => Ok(Some(a.cmp(b))),
            (DateTime(a), DateTime(b)) => Ok(Some(a.cmp(b))),
            // Mixed text/number: compare numerically (MySQL coercion).
            (Text(s), b) if b.data_type().is_numeric() => {
                Ok(parse_numeric_prefix(s).partial_cmp(&b.as_f64().expect("numeric")))
            }
            (a, Text(s)) if a.data_type().is_numeric() => {
                Ok(a.as_f64().expect("numeric").partial_cmp(&parse_numeric_prefix(s)))
            }
            (Array(a), Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.sql_cmp(y)? {
                        Some(Ordering::Equal) => continue,
                        other => return Ok(other),
                    }
                }
                Ok(Some(a.len().cmp(&b.len())))
            }
            _ => Err(incomparable()),
        }
    }

    /// A canonical textual key for grouping / DISTINCT.
    ///
    /// Distinct values must map to distinct keys within a type; NULLs group
    /// together (SQL GROUP BY semantics).
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "\u{0}N".to_string(),
            Value::Float(f) => format!("f{f}"),
            Value::Decimal(d) => format!("d{d}"),
            v => format!("{}|{}", v.data_type().sql_name(), v.render()),
        }
    }

    /// Renders the value the way a client would see it in a result set.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Boolean(true) => "1".to_string(),
            Value::Boolean(false) => "0".to_string(),
            Value::Integer(i) => i.to_string(),
            Value::Decimal(d) => d.to_string(),
            Value::Float(f) => {
                if f.is_nan() {
                    "NaN".to_string()
                } else if f.is_infinite() {
                    if *f > 0.0 { "Infinity".to_string() } else { "-Infinity".to_string() }
                } else {
                    format!("{f}")
                }
            }
            Value::Text(s) => s.clone(),
            Value::Binary(b) => {
                let mut out = String::with_capacity(2 + b.len() * 2);
                out.push_str("0x");
                for byte in b {
                    out.push_str(&format!("{byte:02X}"));
                }
                out
            }
            Value::Date(d) => d.to_string(),
            Value::Time(t) => t.to_string(),
            Value::DateTime(dt) => dt.to_string(),
            Value::Interval(iv) => iv.to_string(),
            Value::Json(j) => j.to_json_string(),
            Value::Xml(x) => x.to_xml_string(),
            Value::Geometry(g) => g.to_string(),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Map(entries) => {
                let inner: Vec<String> =
                    entries.iter().map(|(k, v)| format!("{}: {}", k.render(), v.render())).collect();
                format!("{{{}}}", inner.join(", "))
            }
            Value::Row(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("({})", inner.join(", "))
            }
            Value::Star => "*".to_string(),
        }
    }

    /// Renders the value as a SQL literal expression that would evaluate
    /// back to it — used by the generators when transplanting values.
    pub fn sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Boolean(true) => "TRUE".to_string(),
            Value::Boolean(false) => "FALSE".to_string(),
            Value::Integer(i) => i.to_string(),
            Value::Decimal(d) => d.to_string(),
            Value::Float(f) => format!("{f:?}"),
            Value::Text(s) => quote_sql_string(s),
            Value::Binary(b) => {
                let mut out = String::from("x'");
                for byte in b {
                    out.push_str(&format!("{byte:02X}"));
                }
                out.push('\'');
                out
            }
            Value::Date(d) => format!("DATE '{d}'"),
            Value::Time(t) => format!("TIME '{t}'"),
            Value::DateTime(dt) => format!("TIMESTAMP '{dt}'"),
            Value::Interval(iv) => format!("INTERVAL {} DAY", iv.days),
            Value::Json(j) => quote_sql_string(&j.to_json_string()),
            Value::Xml(x) => quote_sql_string(&x.to_xml_string()),
            Value::Geometry(g) => format!("ST_GEOMFROMTEXT({})", quote_sql_string(&g.to_string())),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(Value::sql_literal).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Map(entries) => {
                let inner: Vec<String> = entries
                    .iter()
                    .flat_map(|(k, v)| [k.sql_literal(), v.sql_literal()])
                    .collect();
                format!("MAP({})", inner.join(", "))
            }
            Value::Row(items) => {
                let inner: Vec<String> = items.iter().map(Value::sql_literal).collect();
                format!("ROW({})", inner.join(", "))
            }
            Value::Star => "*".to_string(),
        }
    }

    /// An estimate of the value's in-memory footprint in bytes, used by the
    /// engine's resource-limit accounting (the source of the paper's 7
    /// REPEAT-related false positives).
    pub fn size_estimate(&self) -> usize {
        match self {
            Value::Text(s) => s.len() + 24,
            Value::Binary(b) => b.len() + 24,
            Value::Json(j) => j.to_json_string().len() + 24,
            Value::Xml(x) => x.to_xml_string().len() + 24,
            Value::Array(items) => 24 + items.iter().map(Value::size_estimate).sum::<usize>(),
            Value::Map(entries) => {
                24 + entries
                    .iter()
                    .map(|(k, v)| k.size_estimate() + v.size_estimate())
                    .sum::<usize>()
            }
            Value::Row(items) => 24 + items.iter().map(Value::size_estimate).sum::<usize>(),
            Value::Geometry(g) => 24 + g.num_points() * 16,
            _ => 24,
        }
    }
}

/// Quotes a string as a single-quoted SQL literal, doubling embedded quotes.
pub fn quote_sql_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out.push('\'');
    out
}

/// MySQL-style lenient numeric coercion: parses the longest numeric prefix,
/// yielding 0.0 when there is none.
pub fn parse_numeric_prefix(s: &str) -> f64 {
    let s = s.trim_start();
    let bytes = s.as_bytes();
    let mut end = 0;
    if matches!(bytes.first(), Some(b'-' | b'+')) {
        end = 1;
    }
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while end < bytes.len() {
        match bytes[end] {
            b'0'..=b'9' => {
                seen_digit = true;
                end += 1;
            }
            b'.' if !seen_dot && !seen_exp => {
                seen_dot = true;
                end += 1;
            }
            b'e' | b'E' if seen_digit && !seen_exp => {
                // Only accept the exponent if digits follow.
                let mut j = end + 1;
                if matches!(bytes.get(j), Some(b'-' | b'+')) {
                    j += 1;
                }
                if matches!(bytes.get(j), Some(b'0'..=b'9')) {
                    seen_exp = true;
                    end = j;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    if !seen_digit {
        return 0.0;
    }
    s[..end].parse().unwrap_or(0.0)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> Value {
        Value::Decimal(s.parse().unwrap())
    }

    #[test]
    fn type_tags() {
        assert_eq!(Value::Null.data_type(), DataType::Null);
        assert_eq!(Value::Integer(5).data_type(), DataType::Integer);
        assert_eq!(Value::Star.data_type(), DataType::Star);
    }

    #[test]
    fn truthiness_rules() {
        assert_eq!(Value::Null.truthiness(), None);
        assert_eq!(Value::Integer(0).truthiness(), Some(false));
        assert_eq!(Value::Text("1abc".into()).truthiness(), Some(true));
        assert_eq!(Value::Text("abc".into()).truthiness(), Some(false));
        assert_eq!(dec("0.00").truthiness(), Some(false));
    }

    #[test]
    fn cross_type_numeric_compare() {
        let i = Value::Integer(2);
        let d = dec("2.0");
        let f = Value::Float(2.5);
        assert_eq!(i.sql_cmp(&d).unwrap(), Some(Ordering::Equal));
        assert_eq!(i.sql_cmp(&f).unwrap(), Some(Ordering::Less));
        assert_eq!(Value::Text("3".into()).sql_cmp(&i).unwrap(), Some(Ordering::Greater));
    }

    #[test]
    fn null_compares_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Integer(1)).unwrap(), None);
        assert_eq!(Value::Integer(1).sql_cmp(&Value::Null).unwrap(), None);
    }

    #[test]
    fn row_comparison_is_a_type_error() {
        let r1 = Value::Row(vec![Value::Integer(1), Value::Integer(1)]);
        let r2 = Value::Row(vec![Value::Integer(1), Value::Integer(2)]);
        // The MDEV-14596 boundary: rows are not comparable here.
        assert!(r1.sql_cmp(&r2).is_err());
    }

    #[test]
    fn array_comparison_is_elementwise() {
        let a = Value::Array(vec![Value::Integer(1), Value::Integer(2)]);
        let b = Value::Array(vec![Value::Integer(1), Value::Integer(3)]);
        assert_eq!(a.sql_cmp(&b).unwrap(), Some(Ordering::Less));
        let shorter = Value::Array(vec![Value::Integer(1)]);
        assert_eq!(shorter.sql_cmp(&a).unwrap(), Some(Ordering::Less));
    }

    #[test]
    fn rendering() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Boolean(true).render(), "1");
        assert_eq!(Value::Binary(vec![0xde, 0xad]).render(), "0xDEAD");
        assert_eq!(
            Value::Array(vec![Value::Integer(1), Value::Null]).render(),
            "[1, NULL]"
        );
    }

    #[test]
    fn sql_literals_quote_properly() {
        assert_eq!(Value::Text("it's".into()).sql_literal(), "'it''s'");
        assert_eq!(Value::Null.sql_literal(), "NULL");
        assert_eq!(Value::Binary(vec![1, 255]).sql_literal(), "x'01FF'");
        assert_eq!(
            Value::Row(vec![Value::Integer(1), Value::Integer(2)]).sql_literal(),
            "ROW(1, 2)"
        );
    }

    #[test]
    fn numeric_prefix_parsing() {
        assert_eq!(parse_numeric_prefix("123abc"), 123.0);
        assert_eq!(parse_numeric_prefix("-1.5x"), -1.5);
        assert_eq!(parse_numeric_prefix("abc"), 0.0);
        assert_eq!(parse_numeric_prefix("1e3z"), 1000.0);
        assert_eq!(parse_numeric_prefix("1e"), 1.0);
        assert_eq!(parse_numeric_prefix(""), 0.0);
    }

    #[test]
    fn group_keys_distinguish_values_and_merge_nulls() {
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
        assert_ne!(Value::Integer(1).group_key(), Value::Integer(2).group_key());
        assert_ne!(Value::Integer(1).group_key(), Value::Text("1".into()).group_key());
    }

    #[test]
    fn size_estimates_scale_with_payload() {
        let small = Value::Text("a".into());
        let big = Value::Text("a".repeat(10_000));
        assert!(big.size_estimate() > small.size_estimate() + 9_000);
    }
}
