//! Columnar value storage for batch execution.
//!
//! Campaigns are embarrassingly batchable: thousands of generated statements
//! share a handful of AST shapes and differ only in their boundary literals.
//! The batch executor groups statements by shape and binds each literal slot
//! into a [`ColumnVec`] — one typed column per slot, rows indexed by group
//! member — so the hot loop walks flat arrays instead of re-materialising a
//! `Value` per row.
//!
//! A [`ColumnVec`] stores values in a typed backing array chosen from the
//! first value pushed (`i64`, `f64`, `bool`, or a shared string heap for
//! text) and carries a validity bitmap for SQL NULLs. Pushing a value of a
//! different type promotes the column to the [`ColumnData::Mixed`] fallback,
//! which keeps full `Value` fidelity for heterogeneous slots (boundary
//! corpora mix e.g. `0`, `'a'` and `NULL` in the same slot on purpose).
//!
//! ```
//! use soft_types::column::ColumnVec;
//! use soft_types::value::Value;
//!
//! let mut col = ColumnVec::new();
//! col.push(&Value::Integer(7));
//! col.push(&Value::Null);
//! col.push(&Value::Integer(-1));
//! assert_eq!(col.len(), 3);
//! assert_eq!(col.value_at(0), Value::Integer(7));
//! assert!(col.is_null(1));
//! assert_eq!(col.value_at(2), Value::Integer(-1));
//! ```

use crate::value::Value;

/// Typed backing storage for one column.
///
/// The variant is picked from the first non-NULL value pushed; pushing a
/// value the variant cannot hold promotes the whole column to `Mixed`.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All-NULL so far; no backing array has been committed yet.
    Untyped,
    /// 64-bit integers (`Value::Integer`).
    Int(Vec<i64>),
    /// 64-bit floats (`Value::Float`).
    Float(Vec<f64>),
    /// Booleans (`Value::Boolean`).
    Bool(Vec<bool>),
    /// Text spans into a shared heap (`Value::Text`) — one allocation for
    /// the whole column instead of one `String` per row.
    Text {
        /// Concatenated bytes of every row's text.
        heap: String,
        /// `(offset, len)` byte spans into `heap`, one per row.
        spans: Vec<(u32, u32)>,
    },
    /// Fallback: full `Value`s, used once a column turns heterogeneous.
    Mixed(Vec<Value>),
}

/// A typed column of SQL values with a validity bitmap.
///
/// Row `i` is NULL when bit `i` of the validity bitmap is clear; the
/// backing array still holds a placeholder at that index so row offsets stay
/// dense.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVec {
    data: ColumnData,
    /// One bit per row; set = valid (non-NULL).
    validity: Vec<u64>,
    len: usize,
}

impl Default for ColumnVec {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnVec {
    /// An empty, untyped column.
    pub fn new() -> Self {
        ColumnVec { data: ColumnData::Untyped, validity: Vec::new(), len: 0 }
    }

    /// Number of rows (valid + NULL).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when row `i` is SQL NULL.
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.validity[i / 64] & (1 << (i % 64)) == 0
    }

    /// Clear all rows but keep the backing allocations (arena reuse).
    pub fn clear(&mut self) {
        self.len = 0;
        self.validity.clear();
        match &mut self.data {
            ColumnData::Untyped => {}
            ColumnData::Int(v) => v.clear(),
            ColumnData::Float(v) => v.clear(),
            ColumnData::Bool(v) => v.clear(),
            ColumnData::Text { heap, spans } => {
                heap.clear();
                spans.clear();
            }
            ColumnData::Mixed(v) => v.clear(),
        }
    }

    fn push_validity(&mut self, valid: bool) {
        let bit = self.len % 64;
        if bit == 0 {
            self.validity.push(0);
        }
        if valid {
            *self.validity.last_mut().expect("validity word") |= 1 << bit;
        }
        self.len += 1;
    }

    /// Promote the current backing array to `Mixed`, reconstructing the
    /// already-pushed rows as full `Value`s.
    fn promote_to_mixed(&mut self) {
        let rows = self.len;
        let mut mixed: Vec<Value> = Vec::with_capacity(rows + 1);
        for i in 0..rows {
            mixed.push(self.value_at(i));
        }
        self.data = ColumnData::Mixed(mixed);
    }

    /// Append a value (cloned as needed). NULLs never force a promotion:
    /// they are recorded in the bitmap with a placeholder slot.
    pub fn push(&mut self, v: &Value) {
        if matches!(v, Value::Null) {
            match &mut self.data {
                ColumnData::Untyped => {}
                ColumnData::Int(vec) => vec.push(0),
                ColumnData::Float(vec) => vec.push(0.0),
                ColumnData::Bool(vec) => vec.push(false),
                ColumnData::Text { spans, .. } => spans.push((0, 0)),
                ColumnData::Mixed(vec) => vec.push(Value::Null),
            }
            self.push_validity(false);
            return;
        }
        // Commit a typed backing array on the first non-NULL push, back-filling
        // placeholders for any leading NULL rows.
        if matches!(self.data, ColumnData::Untyped) {
            self.data = match v {
                Value::Integer(_) => ColumnData::Int(vec![0; self.len]),
                Value::Float(_) => ColumnData::Float(vec![0.0; self.len]),
                Value::Boolean(_) => ColumnData::Bool(vec![false; self.len]),
                Value::Text(_) => {
                    ColumnData::Text { heap: String::new(), spans: vec![(0, 0); self.len] }
                }
                _ => ColumnData::Mixed(vec![Value::Null; self.len]),
            };
        }
        let fits = match (&mut self.data, v) {
            (ColumnData::Int(vec), Value::Integer(n)) => {
                vec.push(*n);
                true
            }
            (ColumnData::Float(vec), Value::Float(f)) => {
                vec.push(*f);
                true
            }
            (ColumnData::Bool(vec), Value::Boolean(b)) => {
                vec.push(*b);
                true
            }
            (ColumnData::Text { heap, spans }, Value::Text(s)) => {
                let off = heap.len();
                heap.push_str(s);
                spans.push((off as u32, s.len() as u32));
                true
            }
            (ColumnData::Mixed(vec), v) => {
                vec.push(v.clone());
                true
            }
            _ => false,
        };
        if !fits {
            self.promote_to_mixed();
            if let ColumnData::Mixed(vec) = &mut self.data {
                vec.push(v.clone());
            }
        }
        self.push_validity(true);
    }

    /// Append an owned value, moving heap contents where the backing array
    /// can hold them — the batch executor's output path (function results
    /// are produced owned; cloning them again would double the allocation
    /// traffic the column exists to remove).
    pub fn push_owned(&mut self, v: Value) {
        match (&mut self.data, v) {
            // Only the `Mixed` fallback stores whole `Value`s; every typed
            // backing array copies out the payload anyway, so `push` is
            // already move-equivalent there.
            (ColumnData::Mixed(vec), v) => {
                let valid = !matches!(v, Value::Null);
                vec.push(v);
                self.push_validity(valid);
            }
            (_, v) => self.push(&v),
        }
    }

    /// Materialise row `i` as an owned `Value` (allocates for text/mixed).
    pub fn value_at(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Untyped => Value::Null,
            ColumnData::Int(v) => Value::Integer(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Boolean(v[i]),
            ColumnData::Text { heap, spans } => {
                let (off, len) = spans[i];
                Value::Text(heap[off as usize..(off + len) as usize].to_string())
            }
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Load row `i` into `out`, reusing `out`'s existing heap allocation when
    /// both sides are text — the batch hot loop's zero-allocation path.
    pub fn load_into(&self, i: usize, out: &mut Value) {
        if self.is_null(i) {
            *out = Value::Null;
            return;
        }
        match &self.data {
            ColumnData::Untyped => *out = Value::Null,
            ColumnData::Int(v) => *out = Value::Integer(v[i]),
            ColumnData::Float(v) => *out = Value::Float(v[i]),
            ColumnData::Bool(v) => *out = Value::Boolean(v[i]),
            ColumnData::Text { heap, spans } => {
                let (off, len) = spans[i];
                let text = &heap[off as usize..(off + len) as usize];
                if let Value::Text(s) = out {
                    s.clear();
                    s.push_str(text);
                } else {
                    *out = Value::Text(text.to_string());
                }
            }
            ColumnData::Mixed(v) => out.clone_from(&v[i]),
        }
    }

    /// Move row `i` out of the column, leaving a NULL placeholder. Typed
    /// backing arrays copy (`Copy` payloads, or a heap-span for text); the
    /// `Mixed` fallback genuinely moves. Sound only when each row is read
    /// once — which batch plans guarantee, because every node has exactly
    /// one consumer (its parent, or the demultiplexer for roots).
    pub fn take_at(&mut self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &mut self.data {
            ColumnData::Mixed(v) => std::mem::replace(&mut v[i], Value::Null),
            _ => self.value_at(i),
        }
    }

    /// [`ColumnVec::take_at`] into an existing slot: moves for `Mixed`
    /// backing, otherwise defers to [`ColumnVec::load_into`] (which reuses
    /// `out`'s text allocation).
    pub fn take_into(&mut self, i: usize, out: &mut Value) {
        if !self.is_null(i) {
            if let ColumnData::Mixed(v) = &mut self.data {
                *out = std::mem::replace(&mut v[i], Value::Null);
                return;
            }
        }
        self.load_into(i, out);
    }

    /// Commit this empty column to `Mixed` backing up front. Batch *output*
    /// columns call this: results are produced owned and consumed exactly
    /// once, so storing whole `Value`s makes the column round-trip two moves
    /// — a typed array would copy text in and allocate it back out, which
    /// for boundary-length strings costs more than the whole evaluation.
    pub fn make_mixed(&mut self) {
        debug_assert!(self.is_empty(), "make_mixed on a non-empty column");
        if !matches!(self.data, ColumnData::Mixed(_)) {
            self.data = ColumnData::Mixed(Vec::new());
        }
    }

    /// The backing storage (inspection / tests).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }
}

/// A recycling pool of [`ColumnVec`]s and scratch `Value` rows.
///
/// One arena lives per shard for the whole campaign: every batch returns its
/// columns and row buffers here, so steady-state batch execution performs no
/// per-statement allocation in the binding layer.
#[derive(Debug, Default)]
pub struct ColumnArena {
    columns: Vec<ColumnVec>,
    rows: Vec<Vec<Value>>,
}

impl ColumnArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared column from the pool (or allocate the first time).
    pub fn take_column(&mut self) -> ColumnVec {
        let mut col = self.columns.pop().unwrap_or_default();
        col.clear();
        col
    }

    /// Return a column to the pool, keeping its backing allocation.
    pub fn put_column(&mut self, col: ColumnVec) {
        self.columns.push(col);
    }

    /// Take a cleared scratch row from the pool.
    pub fn take_row(&mut self) -> Vec<Value> {
        let mut row = self.rows.pop().unwrap_or_default();
        row.clear();
        row
    }

    /// Return a scratch row to the pool.
    pub fn put_row(&mut self, row: Vec<Value>) {
        self.rows.push(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip_and_nulls() {
        let mut col = ColumnVec::new();
        for v in [Value::Null, Value::Integer(1), Value::Null, Value::Integer(i64::MIN)] {
            col.push(&v);
        }
        assert_eq!(col.len(), 4);
        assert!(col.is_null(0));
        assert!(!col.is_null(1));
        assert_eq!(col.value_at(1), Value::Integer(1));
        assert!(col.is_null(2));
        assert_eq!(col.value_at(3), Value::Integer(i64::MIN));
        assert!(matches!(col.data(), ColumnData::Int(_)));
    }

    #[test]
    fn text_uses_shared_heap() {
        let mut col = ColumnVec::new();
        col.push(&Value::Text("abc".into()));
        col.push(&Value::Text(String::new()));
        col.push(&Value::Text("Ω".into()));
        match col.data() {
            ColumnData::Text { heap, spans } => {
                assert_eq!(heap, "abcΩ");
                assert_eq!(spans.len(), 3);
            }
            other => panic!("expected text column, got {other:?}"),
        }
        assert_eq!(col.value_at(0), Value::Text("abc".into()));
        assert_eq!(col.value_at(1), Value::Text(String::new()));
        assert_eq!(col.value_at(2), Value::Text("Ω".into()));
    }

    #[test]
    fn heterogeneous_promotes_to_mixed() {
        let mut col = ColumnVec::new();
        col.push(&Value::Integer(3));
        col.push(&Value::Text("x".into()));
        col.push(&Value::Null);
        assert!(matches!(col.data(), ColumnData::Mixed(_)));
        assert_eq!(col.value_at(0), Value::Integer(3));
        assert_eq!(col.value_at(1), Value::Text("x".into()));
        assert_eq!(col.value_at(2), Value::Null);
    }

    #[test]
    fn all_null_column_stays_untyped() {
        let mut col = ColumnVec::new();
        col.push(&Value::Null);
        col.push(&Value::Null);
        assert!(matches!(col.data(), ColumnData::Untyped));
        assert_eq!(col.value_at(1), Value::Null);
    }

    #[test]
    fn load_into_reuses_text_allocation() {
        let mut col = ColumnVec::new();
        col.push(&Value::Text("hello".into()));
        let mut out = Value::Text(String::with_capacity(32));
        col.load_into(0, &mut out);
        match &out {
            Value::Text(s) => {
                assert_eq!(s, "hello");
                assert!(s.capacity() >= 32, "capacity was not reused");
            }
            other => panic!("expected text, got {other:?}"),
        }
    }

    #[test]
    fn push_owned_matches_push() {
        let mut a = ColumnVec::new();
        let mut b = ColumnVec::new();
        let values = [Value::Integer(1), Value::Text("x".into()), Value::Null];
        for v in &values {
            a.push(v);
        }
        for v in values {
            b.push_owned(v);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn take_at_moves_out_of_mixed() {
        let mut col = ColumnVec::new();
        col.make_mixed();
        col.push_owned(Value::Text("payload".into()));
        col.push_owned(Value::Null);
        assert_eq!(col.take_at(0), Value::Text("payload".into()));
        // The slot is spent, not duplicated: a second take sees the
        // placeholder.
        assert_eq!(col.take_at(0), Value::Null);
    }

    #[test]
    fn take_into_copies_from_typed_backing() {
        let mut col = ColumnVec::new();
        col.push(&Value::Integer(5));
        let mut out = Value::Null;
        col.take_into(0, &mut out);
        assert_eq!(out, Value::Integer(5));
        // Typed backing is non-destructive.
        assert_eq!(col.value_at(0), Value::Integer(5));
    }

    #[test]
    fn make_mixed_keeps_owned_values_movable() {
        let mut arena = ColumnArena::new();
        let mut col = arena.take_column();
        col.make_mixed();
        col.push_owned(Value::Array(vec![Value::Integer(1)]));
        assert!(matches!(col.data(), ColumnData::Mixed(_)));
        assert_eq!(col.take_at(0), Value::Array(vec![Value::Integer(1)]));
        arena.put_column(col);
        // Recycled columns keep the Mixed backing after clear().
        let col = arena.take_column();
        assert!(matches!(col.data(), ColumnData::Mixed(_)));
    }

    #[test]
    fn arena_recycles_columns() {
        let mut arena = ColumnArena::new();
        let mut col = arena.take_column();
        col.push(&Value::Integer(9));
        arena.put_column(col);
        let col = arena.take_column();
        assert!(col.is_empty(), "recycled column must come back cleared");
    }

    #[test]
    fn clear_keeps_type_backing() {
        let mut col = ColumnVec::new();
        col.push(&Value::Float(1.5));
        col.clear();
        assert!(col.is_empty());
        col.push(&Value::Float(2.5));
        assert_eq!(col.value_at(0), Value::Float(2.5));
    }
}
