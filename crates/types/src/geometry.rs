//! WKT geometries and a compact binary encoding.
//!
//! Spatial functions account for several of the paper's discovered bugs
//! (e.g. the MariaDB SEGV of Listing 11, where `INET6_ATON`'s binary return
//! value flows into `BOUNDARY` and `ST_ASTEXT`). This module provides the
//! geometry model those functions operate on: WKT parse/format, a WKB-like
//! binary codec (so type-confused binary blobs are representable), and the
//! simple geometric operations the function suite needs.

use std::fmt;

/// Errors from WKT/WKB handling.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// Malformed WKT text.
    Syntax(String),
    /// Malformed or truncated binary geometry.
    BadBinary(String),
    /// Operation not defined for this geometry kind.
    Unsupported(String),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::Syntax(s) => write!(f, "invalid WKT: {s}"),
            GeometryError::BadBinary(s) => write!(f, "invalid geometry binary: {s}"),
            GeometryError::Unsupported(s) => write!(f, "unsupported geometry operation: {s}"),
        }
    }
}

impl std::error::Error for GeometryError {}

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

/// A geometry value.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// A single point.
    Point(Point),
    /// An open polyline.
    LineString(Vec<Point>),
    /// A polygon given as rings; the first ring is the shell.
    Polygon(Vec<Vec<Point>>),
    /// A heterogeneous collection.
    Collection(Vec<Geometry>),
}

impl Geometry {
    /// The WKT tag for this geometry.
    pub fn kind(&self) -> &'static str {
        match self {
            Geometry::Point(_) => "POINT",
            Geometry::LineString(_) => "LINESTRING",
            Geometry::Polygon(_) => "POLYGON",
            Geometry::Collection(_) => "GEOMETRYCOLLECTION",
        }
    }

    /// Topological dimension: 0 for points, 1 for lines, 2 for polygons.
    pub fn dimension(&self) -> u8 {
        match self {
            Geometry::Point(_) => 0,
            Geometry::LineString(_) => 1,
            Geometry::Polygon(_) => 2,
            Geometry::Collection(items) => {
                items.iter().map(Geometry::dimension).max().unwrap_or(0)
            }
        }
    }

    /// Total number of points.
    pub fn num_points(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::LineString(ps) => ps.len(),
            Geometry::Polygon(rings) => rings.iter().map(Vec::len).sum(),
            Geometry::Collection(items) => items.iter().map(Geometry::num_points).sum(),
        }
    }

    /// Length of a linestring / perimeter of a polygon.
    pub fn length(&self) -> f64 {
        fn path_len(ps: &[Point]) -> f64 {
            ps.windows(2).map(|w| ((w[1].x - w[0].x).powi(2) + (w[1].y - w[0].y).powi(2)).sqrt()).sum()
        }
        match self {
            Geometry::Point(_) => 0.0,
            Geometry::LineString(ps) => path_len(ps),
            Geometry::Polygon(rings) => rings.iter().map(|r| path_len(r)).sum(),
            Geometry::Collection(items) => items.iter().map(Geometry::length).sum(),
        }
    }

    /// Signed-area-based polygon area (shoelace formula, shell only).
    pub fn area(&self) -> f64 {
        match self {
            Geometry::Polygon(rings) => {
                let Some(shell) = rings.first() else { return 0.0 };
                let mut s = 0.0;
                for w in shell.windows(2) {
                    s += w[0].x * w[1].y - w[1].x * w[0].y;
                }
                (s / 2.0).abs()
            }
            Geometry::Collection(items) => items.iter().map(Geometry::area).sum(),
            _ => 0.0,
        }
    }

    /// The combinatorial boundary: endpoints of a line, rings of a polygon.
    ///
    /// Points have an empty boundary; MariaDB represents that as an empty
    /// collection (and mishandling *binary that is not a geometry at all*
    /// here is the bug of Listing 11).
    pub fn boundary(&self) -> Result<Geometry, GeometryError> {
        match self {
            Geometry::Point(_) => Ok(Geometry::Collection(Vec::new())),
            Geometry::LineString(ps) => {
                if ps.len() < 2 {
                    return Ok(Geometry::Collection(Vec::new()));
                }
                Ok(Geometry::Collection(vec![
                    Geometry::Point(ps[0]),
                    Geometry::Point(*ps.last().expect("len >= 2")),
                ]))
            }
            Geometry::Polygon(rings) => Ok(Geometry::Collection(
                rings.iter().map(|r| Geometry::LineString(r.clone())).collect(),
            )),
            Geometry::Collection(_) => {
                Err(GeometryError::Unsupported("boundary of collection".into()))
            }
        }
    }

    /// Axis-aligned bounding box as a polygon (`ST_ENVELOPE`).
    pub fn envelope(&self) -> Result<Geometry, GeometryError> {
        let mut pts = Vec::new();
        collect_points(self, &mut pts);
        if pts.is_empty() {
            return Err(GeometryError::Unsupported("envelope of empty geometry".into()));
        }
        let minx = pts.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let maxx = pts.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        let miny = pts.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
        let maxy = pts.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
        Ok(Geometry::Polygon(vec![vec![
            Point { x: minx, y: miny },
            Point { x: maxx, y: miny },
            Point { x: maxx, y: maxy },
            Point { x: minx, y: maxy },
            Point { x: minx, y: miny },
        ]]))
    }

    /// Parses WKT text such as `POINT(1 2)` or `POLYGON((0 0,1 0,1 1,0 0))`.
    pub fn parse_wkt(text: &str) -> Result<Geometry, GeometryError> {
        let mut p = WktParser { s: text.trim(), pos: 0 };
        let g = p.geometry()?;
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(GeometryError::Syntax(format!("trailing input in {text:?}")));
        }
        Ok(g)
    }

    /// Encodes to the compact binary form (a WKB-like tagged layout).
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Geometry::Point(p) => {
                out.push(1);
                out.extend_from_slice(&p.x.to_le_bytes());
                out.extend_from_slice(&p.y.to_le_bytes());
            }
            Geometry::LineString(ps) => {
                out.push(2);
                out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
                for p in ps {
                    out.extend_from_slice(&p.x.to_le_bytes());
                    out.extend_from_slice(&p.y.to_le_bytes());
                }
            }
            Geometry::Polygon(rings) => {
                out.push(3);
                out.extend_from_slice(&(rings.len() as u32).to_le_bytes());
                for r in rings {
                    out.extend_from_slice(&(r.len() as u32).to_le_bytes());
                    for p in r {
                        out.extend_from_slice(&p.x.to_le_bytes());
                        out.extend_from_slice(&p.y.to_le_bytes());
                    }
                }
            }
            Geometry::Collection(items) => {
                out.push(7);
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for g in items {
                    g.encode(out);
                }
            }
        }
    }

    /// Decodes from the compact binary form.
    ///
    /// Arbitrary binary (like an INET address blob) is usually *not* a valid
    /// geometry; a correct implementation rejects it, which is exactly the
    /// validation the MariaDB bug of Listing 11 was missing.
    pub fn from_binary(bytes: &[u8]) -> Result<Geometry, GeometryError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let g = cur.geometry(0)?;
        if cur.pos != bytes.len() {
            return Err(GeometryError::BadBinary("trailing bytes".into()));
        }
        Ok(g)
    }
}

fn collect_points(g: &Geometry, out: &mut Vec<Point>) {
    match g {
        Geometry::Point(p) => out.push(*p),
        Geometry::LineString(ps) => out.extend_from_slice(ps),
        Geometry::Polygon(rings) => {
            for r in rings {
                out.extend_from_slice(r);
            }
        }
        Geometry::Collection(items) => {
            for i in items {
                collect_points(i, out);
            }
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, GeometryError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| GeometryError::BadBinary("truncated".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, GeometryError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(GeometryError::BadBinary("truncated length".into()));
        }
        let v = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().expect("4 bytes"));
        self.pos += 4;
        if v > 1_000_000 {
            return Err(GeometryError::BadBinary(format!("implausible element count {v}")));
        }
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64, GeometryError> {
        if self.pos + 8 > self.bytes.len() {
            return Err(GeometryError::BadBinary("truncated coordinate".into()));
        }
        let v = f64::from_le_bytes(self.bytes[self.pos..self.pos + 8].try_into().expect("8 bytes"));
        self.pos += 8;
        Ok(v)
    }

    fn point(&mut self) -> Result<Point, GeometryError> {
        Ok(Point { x: self.f64()?, y: self.f64()? })
    }

    fn geometry(&mut self, depth: usize) -> Result<Geometry, GeometryError> {
        if depth > 16 {
            return Err(GeometryError::BadBinary("collection too deep".into()));
        }
        match self.u8()? {
            1 => Ok(Geometry::Point(self.point()?)),
            2 => {
                let n = self.u32()?;
                let mut ps = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ps.push(self.point()?);
                }
                Ok(Geometry::LineString(ps))
            }
            3 => {
                let nrings = self.u32()?;
                let mut rings = Vec::with_capacity(nrings as usize);
                for _ in 0..nrings {
                    let n = self.u32()?;
                    let mut r = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        r.push(self.point()?);
                    }
                    rings.push(r);
                }
                Ok(Geometry::Polygon(rings))
            }
            7 => {
                let n = self.u32()?;
                let mut items = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    items.push(self.geometry(depth + 1)?);
                }
                Ok(Geometry::Collection(items))
            }
            tag => Err(GeometryError::BadBinary(format!("unknown geometry tag {tag}"))),
        }
    }
}

struct WktParser<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> WktParser<'a> {
    fn skip_ws(&mut self) {
        while self.s[self.pos..].starts_with(' ') {
            self.pos += 1;
        }
    }

    fn keyword(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.s[self.pos..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic())
        {
            self.pos += 1;
        }
        self.s[start..self.pos].to_ascii_uppercase()
    }

    fn expect(&mut self, c: char) -> Result<(), GeometryError> {
        self.skip_ws();
        if self.s[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(GeometryError::Syntax(format!("expected {c:?} at {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<f64, GeometryError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.s.as_bytes();
        if matches!(bytes.get(self.pos), Some(b'-' | b'+')) {
            self.pos += 1;
        }
        while self
            .s
            .as_bytes()
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || *b == b'.' || *b == b'e' || *b == b'E')
        {
            self.pos += 1;
        }
        self.s[start..self.pos]
            .parse()
            .map_err(|_| GeometryError::Syntax(format!("bad number at {start}")))
    }

    fn point_pair(&mut self) -> Result<Point, GeometryError> {
        let x = self.number()?;
        let y = self.number()?;
        Ok(Point { x, y })
    }

    fn point_list(&mut self) -> Result<Vec<Point>, GeometryError> {
        self.expect('(')?;
        let mut ps = vec![self.point_pair()?];
        loop {
            self.skip_ws();
            if self.s[self.pos..].starts_with(',') {
                self.pos += 1;
                ps.push(self.point_pair()?);
            } else {
                break;
            }
        }
        self.expect(')')?;
        Ok(ps)
    }

    fn geometry(&mut self) -> Result<Geometry, GeometryError> {
        match self.keyword().as_str() {
            "POINT" => {
                self.expect('(')?;
                let p = self.point_pair()?;
                self.expect(')')?;
                Ok(Geometry::Point(p))
            }
            "LINESTRING" => Ok(Geometry::LineString(self.point_list()?)),
            "POLYGON" => {
                self.expect('(')?;
                let mut rings = vec![self.point_list()?];
                loop {
                    self.skip_ws();
                    if self.s[self.pos..].starts_with(',') {
                        self.pos += 1;
                        rings.push(self.point_list()?);
                    } else {
                        break;
                    }
                }
                self.expect(')')?;
                Ok(Geometry::Polygon(rings))
            }
            "GEOMETRYCOLLECTION" => {
                self.skip_ws();
                if self.s[self.pos..].to_ascii_uppercase().starts_with("EMPTY") {
                    self.pos += 5;
                    return Ok(Geometry::Collection(Vec::new()));
                }
                self.expect('(')?;
                let mut items = vec![self.geometry()?];
                loop {
                    self.skip_ws();
                    if self.s[self.pos..].starts_with(',') {
                        self.pos += 1;
                        items.push(self.geometry()?);
                    } else {
                        break;
                    }
                }
                self.expect(')')?;
                Ok(Geometry::Collection(items))
            }
            kw => Err(GeometryError::Syntax(format!("unknown geometry kind {kw:?}"))),
        }
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn w(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
            if v == v.trunc() && v.abs() < 1e15 {
                write!(f, "{}", v as i64)
            } else {
                write!(f, "{v}")
            }
        }
        fn pair(f: &mut fmt::Formatter<'_>, p: &Point) -> fmt::Result {
            w(f, p.x)?;
            write!(f, " ")?;
            w(f, p.y)
        }
        fn list(f: &mut fmt::Formatter<'_>, ps: &[Point]) -> fmt::Result {
            write!(f, "(")?;
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                pair(f, p)?;
            }
            write!(f, ")")
        }
        match self {
            Geometry::Point(p) => {
                write!(f, "POINT(")?;
                pair(f, p)?;
                write!(f, ")")
            }
            Geometry::LineString(ps) => {
                write!(f, "LINESTRING")?;
                list(f, ps)
            }
            Geometry::Polygon(rings) => {
                write!(f, "POLYGON(")?;
                for (i, r) in rings.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    list(f, r)?;
                }
                write!(f, ")")
            }
            Geometry::Collection(items) => {
                if items.is_empty() {
                    return write!(f, "GEOMETRYCOLLECTION EMPTY");
                }
                write!(f, "GEOMETRYCOLLECTION(")?;
                for (i, g) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wkt_roundtrip() {
        for s in [
            "POINT(1 2)",
            "LINESTRING(0 0,1 1,2 0)",
            "POLYGON((0 0,4 0,4 4,0 4,0 0))",
            "POLYGON((0 0,4 0,4 4,0 0),(1 1,2 1,2 2,1 1))",
            "GEOMETRYCOLLECTION(POINT(1 2),LINESTRING(0 0,1 1))",
            "GEOMETRYCOLLECTION EMPTY",
        ] {
            let g = Geometry::parse_wkt(s).unwrap();
            assert_eq!(g.to_string(), s, "roundtrip of {s}");
        }
    }

    #[test]
    fn wkt_rejects_malformed() {
        for s in ["POINT(1)", "POINT 1 2", "CIRCLE(0 0, 5)", "LINESTRING()", "POINT(a b)", ""] {
            assert!(Geometry::parse_wkt(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn binary_roundtrip() {
        for s in [
            "POINT(1.5 -2.5)",
            "LINESTRING(0 0,1 1)",
            "POLYGON((0 0,1 0,1 1,0 0))",
            "GEOMETRYCOLLECTION(POINT(0 0))",
        ] {
            let g = Geometry::parse_wkt(s).unwrap();
            let bin = g.to_binary();
            assert_eq!(Geometry::from_binary(&bin).unwrap(), g);
        }
    }

    #[test]
    fn binary_rejects_non_geometry() {
        // An IPv6 address blob (16 bytes of 0xff) is not a valid geometry —
        // this is the check MariaDB was missing in Listing 11.
        let inet_blob = vec![0xffu8; 16];
        assert!(Geometry::from_binary(&inet_blob).is_err());
        assert!(Geometry::from_binary(&[]).is_err());
        assert!(Geometry::from_binary(&[2, 0xff, 0xff, 0xff, 0x7f]).is_err());
    }

    #[test]
    fn measures() {
        let line = Geometry::parse_wkt("LINESTRING(0 0,3 4)").unwrap();
        assert!((line.length() - 5.0).abs() < 1e-9);
        let poly = Geometry::parse_wkt("POLYGON((0 0,4 0,4 4,0 4,0 0))").unwrap();
        assert!((poly.area() - 16.0).abs() < 1e-9);
        assert_eq!(poly.dimension(), 2);
        assert_eq!(poly.num_points(), 5);
    }

    #[test]
    fn boundary_cases() {
        let p = Geometry::parse_wkt("POINT(1 1)").unwrap();
        assert_eq!(p.boundary().unwrap().to_string(), "GEOMETRYCOLLECTION EMPTY");
        let l = Geometry::parse_wkt("LINESTRING(0 0,5 5)").unwrap();
        assert_eq!(
            l.boundary().unwrap().to_string(),
            "GEOMETRYCOLLECTION(POINT(0 0),POINT(5 5))"
        );
        let c = Geometry::Collection(vec![p]);
        assert!(c.boundary().is_err());
    }

    #[test]
    fn envelope() {
        let l = Geometry::parse_wkt("LINESTRING(0 0,2 3)").unwrap();
        assert_eq!(l.envelope().unwrap().to_string(), "POLYGON((0 0,2 0,2 3,0 3,0 0))");
    }
}
