//! A minimal XML document model with a parser, serializer and the tiny XPath
//! subset used by MySQL's `ExtractValue` / `UpdateXML` (absolute paths with
//! optional positional predicates, e.g. `/a/c[1]`).
//!
//! The paper's Listing 2 contrasts exactly these functions with JavaScript
//! DOM manipulation; the MySQL `xml` use-after-free of Table 4 lives in this
//! component.

use std::fmt;

/// Errors from XML parsing and XPath evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Malformed XML text.
    Syntax {
        /// What went wrong.
        message: String,
        /// Byte offset into the input.
        offset: usize,
    },
    /// Nesting exceeded the configured recursion limit.
    TooDeep {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A malformed XPath expression.
    BadPath(String),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { message, offset } => {
                write!(f, "invalid XML at byte {offset}: {message}")
            }
            XmlError::TooDeep { limit } => write!(f, "XML nesting exceeds depth limit {limit}"),
            XmlError::BadPath(p) => write!(f, "invalid XPath: {p}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// An XML node: an element with children, or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// `<name attr="v">children</name>`.
    Element {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
        /// Child nodes in document order.
        children: Vec<XmlNode>,
    },
    /// A text run between tags.
    Text(String),
}

impl XmlNode {
    /// Creates an element with no attributes.
    pub fn element(name: &str, children: Vec<XmlNode>) -> XmlNode {
        XmlNode::Element { name: name.to_string(), attributes: Vec::new(), children }
    }

    /// The element tag name, if this is an element.
    pub fn name(&self) -> Option<&str> {
        match self {
            XmlNode::Element { name, .. } => Some(name),
            XmlNode::Text(_) => None,
        }
    }

    /// Concatenated text content of this subtree.
    pub fn text_content(&self) -> String {
        match self {
            XmlNode::Text(t) => t.clone(),
            XmlNode::Element { children, .. } => {
                children.iter().map(XmlNode::text_content).collect()
            }
        }
    }

    /// Maximum element nesting depth (text = 0, leaf element = 1).
    pub fn depth(&self) -> usize {
        match self {
            XmlNode::Text(_) => 0,
            XmlNode::Element { children, .. } => {
                1 + children.iter().map(XmlNode::depth).max().unwrap_or(0)
            }
        }
    }

    /// Serialises the node back to XML text.
    pub fn to_xml_string(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out);
        out
    }

    fn write_xml(&self, out: &mut String) {
        match self {
            XmlNode::Text(t) => {
                for c in t.chars() {
                    match c {
                        '<' => out.push_str("&lt;"),
                        '>' => out.push_str("&gt;"),
                        '&' => out.push_str("&amp;"),
                        c => out.push(c),
                    }
                }
            }
            XmlNode::Element { name, attributes, children } => {
                out.push('<');
                out.push_str(name);
                for (k, v) in attributes {
                    out.push(' ');
                    out.push_str(k);
                    out.push_str("=\"");
                    for c in v.chars() {
                        match c {
                            '"' => out.push_str("&quot;"),
                            '&' => out.push_str("&amp;"),
                            '<' => out.push_str("&lt;"),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                if children.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for c in children {
                        c.write_xml(out);
                    }
                    out.push_str("</");
                    out.push_str(name);
                    out.push('>');
                }
            }
        }
    }
}

/// Default element-nesting recursion limit.
pub const DEFAULT_MAX_DEPTH: usize = 64;

/// A parsed document: a sequence of top-level nodes (MySQL's XML functions
/// accept fragments, not only single-rooted documents).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlDocument {
    /// Top-level nodes in document order.
    pub roots: Vec<XmlNode>,
}

impl XmlDocument {
    /// Parses an XML fragment with the default depth limit.
    pub fn parse(text: &str) -> Result<XmlDocument, XmlError> {
        Self::parse_with_depth(text, DEFAULT_MAX_DEPTH)
    }

    /// Parses with an explicit depth limit.
    pub fn parse_with_depth(text: &str, max_depth: usize) -> Result<XmlDocument, XmlError> {
        let mut p = XmlParser { bytes: text.as_bytes(), pos: 0, max_depth };
        let mut roots = Vec::new();
        loop {
            p.skip_ws();
            if p.pos >= p.bytes.len() {
                break;
            }
            roots.push(p.node(0)?);
        }
        Ok(XmlDocument { roots })
    }

    /// Serialises the document.
    pub fn to_xml_string(&self) -> String {
        self.roots.iter().map(XmlNode::to_xml_string).collect()
    }

    /// Evaluates an XPath, returning matching nodes in document order.
    pub fn select<'a>(&'a self, path: &XPath) -> Vec<&'a XmlNode> {
        let mut current: Vec<&XmlNode> = self.roots.iter().collect();
        for step in &path.steps {
            let mut next = Vec::new();
            // Positional predicates are evaluated per parent context, so walk
            // matches grouped by their sibling list.
            let mut matches = Vec::new();
            for node in &current {
                if node.name() == Some(step.name.as_str()) {
                    matches.push(*node);
                }
            }
            match step.position {
                None => next.extend(matches),
                Some(pos) => {
                    if pos >= 1 && pos as usize <= matches.len() {
                        next.push(matches[pos as usize - 1]);
                    }
                }
            }
            // Descend: children of the matched elements feed the next step.
            if path.steps.last() != Some(step) {
                let mut descend = Vec::new();
                for m in next {
                    if let XmlNode::Element { children, .. } = m {
                        descend.extend(children.iter());
                    }
                }
                current = descend;
            } else {
                current = next;
            }
        }
        current
    }

    /// Replaces the first node matched by `path` with `replacement`,
    /// returning whether a replacement happened (the `UpdateXML` operation).
    pub fn replace_first(&mut self, path: &XPath, replacement: XmlNode) -> bool {
        fn walk(nodes: &mut [XmlNode], steps: &[XPathStep], replacement: &XmlNode) -> bool {
            let Some(step) = steps.first() else {
                return false;
            };
            let mut ordinal = 0u32;
            #[allow(clippy::needless_range_loop)] // Mutating by index below.
            for i in 0..nodes.len() {
                if nodes[i].name() == Some(step.name.as_str()) {
                    ordinal += 1;
                    if let Some(pos) = step.position {
                        if ordinal != pos {
                            continue;
                        }
                    }
                    if steps.len() == 1 {
                        nodes[i] = replacement.clone();
                        return true;
                    }
                    if let XmlNode::Element { children, .. } = &mut nodes[i] {
                        if walk(children, &steps[1..], replacement) {
                            return true;
                        }
                    }
                    if step.position.is_some() {
                        return false;
                    }
                }
            }
            false
        }
        walk(&mut self.roots, &path.steps, &replacement)
    }
}

struct XmlParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    max_depth: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, message: &str) -> XmlError {
        XmlError::Syntax { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn node(&mut self, depth: usize) -> Result<XmlNode, XmlError> {
        if self.bytes.get(self.pos) == Some(&b'<') {
            if depth >= self.max_depth {
                return Err(XmlError::TooDeep { limit: self.max_depth });
            }
            self.element(depth)
        } else {
            self.text()
        }
    }

    fn text(&mut self) -> Result<XmlNode, XmlError> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        let t = raw
            .replace("&lt;", "<")
            .replace("&gt;", ">")
            .replace("&quot;", "\"")
            .replace("&amp;", "&");
        Ok(XmlNode::Text(t))
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_' || *b == b'-' || *b == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?
            .to_string())
    }

    fn element(&mut self, depth: usize) -> Result<XmlNode, XmlError> {
        self.pos += 1; // '<'
        let name = self.name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'/') => {
                    if self.bytes.get(self.pos + 1) == Some(&b'>') {
                        self.pos += 2;
                        return Ok(XmlNode::Element { name, attributes, children: Vec::new() });
                    }
                    return Err(self.err("expected '/>'"));
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let aname = self.name()?;
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.bytes.get(self.pos).copied();
                    if quote != Some(b'"') && quote != Some(b'\'') {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.pos < self.bytes.len() && Some(self.bytes[self.pos]) != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.bytes.len() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let v = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?
                        .replace("&quot;", "\"")
                        .replace("&lt;", "<")
                        .replace("&amp;", "&");
                    self.pos += 1;
                    attributes.push((aname, v));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Children until matching close tag.
        let mut children = Vec::new();
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.err("unterminated element"));
            }
            if self.bytes[self.pos] == b'<' && self.bytes.get(self.pos + 1) == Some(&b'/') {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(self.err("mismatched close tag"));
                }
                self.skip_ws();
                if self.bytes.get(self.pos) != Some(&b'>') {
                    return Err(self.err("expected '>'"));
                }
                self.pos += 1;
                // Drop pure-whitespace text children for a cleaner tree.
                children.retain(|c| !matches!(c, XmlNode::Text(t) if t.trim().is_empty()));
                return Ok(XmlNode::Element { name, attributes, children });
            }
            children.push(self.node(depth + 1)?);
        }
    }
}

/// One step of the supported XPath subset: a name with an optional 1-based
/// positional predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathStep {
    /// Element name to match.
    pub name: String,
    /// Optional `[n]` position (1-based).
    pub position: Option<u32>,
}

/// An absolute XPath like `/a/c[1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPath {
    /// Steps from the document root.
    pub steps: Vec<XPathStep>,
}

impl XPath {
    /// Parses an absolute path of the form `/name[pos]/name...`.
    pub fn parse(text: &str) -> Result<XPath, XmlError> {
        let text = text.trim();
        if !text.starts_with('/') {
            return Err(XmlError::BadPath(text.to_string()));
        }
        let mut steps = Vec::new();
        for part in text[1..].split('/') {
            if part.is_empty() {
                return Err(XmlError::BadPath(text.to_string()));
            }
            let (name, position) = match part.find('[') {
                None => (part.to_string(), None),
                Some(i) => {
                    if !part.ends_with(']') {
                        return Err(XmlError::BadPath(text.to_string()));
                    }
                    let pos: u32 = part[i + 1..part.len() - 1]
                        .trim()
                        .parse()
                        .map_err(|_| XmlError::BadPath(text.to_string()))?;
                    (part[..i].to_string(), Some(pos))
                }
            };
            if name.is_empty() {
                return Err(XmlError::BadPath(text.to_string()));
            }
            steps.push(XPathStep { name, position });
        }
        Ok(XPath { steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_fragment() {
        let doc = XmlDocument::parse("<a><c></c></a>").unwrap();
        assert_eq!(doc.roots.len(), 1);
        assert_eq!(doc.roots[0].name(), Some("a"));
        assert_eq!(doc.to_xml_string(), "<a><c/></a>");
    }

    #[test]
    fn parse_attributes_and_text() {
        let doc = XmlDocument::parse(r#"<a x="1" y='two'>hello</a>"#).unwrap();
        match &doc.roots[0] {
            XmlNode::Element { attributes, children, .. } => {
                assert_eq!(attributes, &vec![("x".into(), "1".into()), ("y".into(), "two".into())]);
                assert_eq!(children, &vec![XmlNode::Text("hello".into())]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in ["<a>", "<a></b>", "<a x=1></a>", "<a", "</a>", "<a x=\"1></a>"] {
            assert!(XmlDocument::parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn depth_limit() {
        let mut deep = String::new();
        for _ in 0..100 {
            deep.push_str("<a>");
        }
        deep.push('x');
        for _ in 0..100 {
            deep.push_str("</a>");
        }
        match XmlDocument::parse(&deep) {
            Err(XmlError::TooDeep { limit }) => assert_eq!(limit, DEFAULT_MAX_DEPTH),
            other => panic!("expected TooDeep, got {other:?}"),
        }
    }

    #[test]
    fn xpath_parsing() {
        let p = XPath::parse("/a/c[1]").unwrap();
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[1], XPathStep { name: "c".into(), position: Some(1) });
        assert!(XPath::parse("a/c").is_err());
        assert!(XPath::parse("/a//c").is_err());
        assert!(XPath::parse("/a[c]").is_err());
    }

    #[test]
    fn select_with_position() {
        let doc = XmlDocument::parse("<a><c>1</c><c>2</c></a>").unwrap();
        let p = XPath::parse("/a/c[2]").unwrap();
        let hits = doc.select(&p);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].text_content(), "2");
        let all = doc.select(&XPath::parse("/a/c").unwrap());
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn update_xml_listing2() {
        // The paper's Listing 2: replace /a/c[1] with <c><b/></c>.
        let mut doc = XmlDocument::parse("<a><c></c></a>").unwrap();
        let repl = XmlDocument::parse("<c><b></b></c>").unwrap().roots.remove(0);
        let done = doc.replace_first(&XPath::parse("/a/c[1]").unwrap(), repl);
        assert!(done);
        assert_eq!(doc.to_xml_string(), "<a><c><b/></c></a>");
    }

    #[test]
    fn replace_miss_returns_false() {
        let mut doc = XmlDocument::parse("<a><c/></a>").unwrap();
        let repl = XmlNode::element("z", vec![]);
        assert!(!doc.replace_first(&XPath::parse("/a/x[1]").unwrap(), repl.clone()));
        assert!(!doc.replace_first(&XPath::parse("/a/c[5]").unwrap(), repl));
    }

    #[test]
    fn text_escaping_roundtrip() {
        let doc = XmlDocument::parse("<a>x &lt; y &amp; z</a>").unwrap();
        assert_eq!(doc.roots[0].text_content(), "x < y & z");
        let re = XmlDocument::parse(&doc.to_xml_string()).unwrap();
        assert_eq!(re, doc);
    }
}
