//! Core data types for the SOFT reproduction.
//!
//! This crate is the bottom layer of the reproduction of *Understanding and
//! Detecting SQL Function Bugs* (EuroSys '25): the SQL value model and every
//! "internal data type" substrate the paper's studied bugs live in —
//! arbitrary-precision decimals, civil dates, JSON, XML, WKT geometry and
//! network addresses — plus the casting engine and the boundary-value
//! vocabulary the whole system is organised around.
//!
//! # Examples
//!
//! ```
//! use soft_types::prelude::*;
//!
//! // A 48-digit decimal — the MDEV-8407 boundary — survives parsing intact.
//! let d: Decimal = "123456789012345678901234567890123456789012346789".parse().unwrap();
//! assert_eq!(d.total_digits(), 48);
//!
//! // And is classified as a boundary value.
//! let classes = soft_types::boundary::classify(&Value::Decimal(d));
//! assert!(classes.contains(&BoundaryClass::ManyDigits(40)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod boundary;
pub mod cast;
pub mod category;
pub mod column;
pub mod datetime;
pub mod decimal;
pub mod geometry;
pub mod inet;
pub mod json;
pub mod value;
pub mod xml;

/// Convenient re-exports of the most-used items.
pub mod prelude {
    pub use crate::boundary::BoundaryClass;
    pub use crate::cast::{cast, CastError, CastLimits, CastMode, CastStrictness};
    pub use crate::category::FunctionCategory;
    pub use crate::datetime::{Date, DateTime, Interval, Time};
    pub use crate::decimal::Decimal;
    pub use crate::geometry::Geometry;
    pub use crate::json::JsonValue;
    pub use crate::value::{DataType, Value};
    pub use crate::xml::XmlDocument;
}
