//! Civil (proleptic Gregorian) dates, times and intervals.
//!
//! Date functions are one of the paper's bug-heavy categories (Figure 1), and
//! several discovered bugs (e.g. the MySQL `date` SEGV found via P3.3) live in
//! date parsing and arithmetic. This module implements the calendar from
//! first principles — days-from-epoch conversion, formatting, parsing and
//! component arithmetic — without any external time crate.

use std::fmt;

/// Errors from date/time parsing and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DateError {
    /// The textual input did not match a supported date/time format.
    Syntax(String),
    /// Components were individually numeric but out of range (month 13, ...).
    OutOfRange(String),
}

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DateError::Syntax(s) => write!(f, "invalid date/time literal: {s}"),
            DateError::OutOfRange(s) => write!(f, "date/time out of range: {s}"),
        }
    }
}

impl std::error::Error for DateError {}

/// A calendar date in the proleptic Gregorian calendar.
///
/// Supported range: years 1..=9999 (the usual SQL `DATE` range).
///
/// # Examples
///
/// ```
/// use soft_types::datetime::Date;
/// let d = Date::new(2024, 2, 29).unwrap();
/// assert_eq!(d.to_string(), "2024-02-29");
/// assert_eq!(d.add_days(1).unwrap().to_string(), "2024-03-01");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

/// A time of day with microsecond precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time {
    hour: u8,
    minute: u8,
    second: u8,
    micros: u32,
}

/// A combined date and time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DateTime {
    /// The date component.
    pub date: Date,
    /// The time-of-day component.
    pub time: Time,
}

/// A mixed-unit interval, as used by `DATE_ADD(.. INTERVAL ..)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Interval {
    /// Whole months (years fold into this).
    pub months: i64,
    /// Whole days.
    pub days: i64,
    /// Sub-day part in microseconds.
    pub micros: i64,
}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// True if `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap_year(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

impl Date {
    /// Minimum supported date.
    pub const MIN: Date = Date { year: 1, month: 1, day: 1 };
    /// Maximum supported date.
    pub const MAX: Date = Date { year: 9999, month: 12, day: 31 };

    /// Creates a date, validating all components.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Date, DateError> {
        if !(1..=9999).contains(&year) {
            return Err(DateError::OutOfRange(format!("year {year}")));
        }
        if !(1..=12).contains(&month) {
            return Err(DateError::OutOfRange(format!("month {month}")));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(DateError::OutOfRange(format!("day {day}")));
        }
        Ok(Date { year, month, day })
    }

    /// The year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The month component (1-12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// The day-of-month component (1-31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since 0001-01-01 (which is day 0).
    pub fn days_from_epoch(&self) -> i64 {
        let y = self.year as i64 - 1;
        let mut days = y * 365 + y / 4 - y / 100 + y / 400;
        for m in 1..self.month {
            days += days_in_month(self.year, m) as i64;
        }
        days + self.day as i64 - 1
    }

    /// Builds a date from days since 0001-01-01.
    pub fn from_days_from_epoch(mut days: i64) -> Result<Date, DateError> {
        if days < 0 {
            return Err(DateError::OutOfRange(format!("{days} days")));
        }
        // 400-year cycle = 146097 days.
        let cycles = days / 146097;
        days %= 146097;
        let mut year = (cycles * 400 + 1) as i32;
        loop {
            let ylen = if is_leap_year(year) { 366 } else { 365 };
            if days < ylen {
                break;
            }
            days -= ylen;
            year += 1;
            if year > 9999 {
                return Err(DateError::OutOfRange("beyond year 9999".into()));
            }
        }
        let mut month = 1u8;
        loop {
            let mlen = days_in_month(year, month) as i64;
            if days < mlen {
                break;
            }
            days -= mlen;
            month += 1;
        }
        Date::new(year, month, days as u8 + 1)
    }

    /// Day of week, 0 = Monday ... 6 = Sunday (ISO ordering).
    pub fn weekday(&self) -> u8 {
        // 0001-01-01 was a Monday in the proleptic Gregorian calendar.
        (self.days_from_epoch().rem_euclid(7)) as u8
    }

    /// Day of year, 1-based.
    pub fn day_of_year(&self) -> u16 {
        let mut doy = self.day as u16;
        for m in 1..self.month {
            doy += days_in_month(self.year, m) as u16;
        }
        doy
    }

    /// ISO-8601 week number (1-53).
    pub fn iso_week(&self) -> u8 {
        // Week containing the year's first Thursday is week 1.
        let doy = self.day_of_year() as i64;
        let wd = self.weekday() as i64; // 0 = Monday
        let week = (doy - wd + 9) / 7;
        if week < 1 {
            // Belongs to the last week of the previous year.
            
            Date::new(self.year - 1, 12, 31).map(|d| d.iso_week()).unwrap_or(52)
        } else if week > 52 {
            // Might be week 1 of next year.
            let dec31 = Date::new(self.year, 12, 31).expect("dec 31 is valid");
            let last_wd = dec31.weekday();
            if last_wd < 3 && self.day_of_year() as i64 > 363 - last_wd as i64 {
                1
            } else {
                week as u8
            }
        } else {
            week as u8
        }
    }

    /// Quarter of the year (1-4).
    pub fn quarter(&self) -> u8 {
        (self.month - 1) / 3 + 1
    }

    /// Last day of this date's month.
    pub fn last_day(&self) -> Date {
        Date {
            year: self.year,
            month: self.month,
            day: days_in_month(self.year, self.month),
        }
    }

    /// Adds (or subtracts) days, checking range.
    pub fn add_days(&self, days: i64) -> Result<Date, DateError> {
        let total = self
            .days_from_epoch()
            .checked_add(days)
            .ok_or_else(|| DateError::OutOfRange("day overflow".into()))?;
        Date::from_days_from_epoch(total)
    }

    /// Adds calendar months, clamping the day to the target month's length
    /// (the standard SQL `DATE_ADD` behaviour: Jan 31 + 1 month = Feb 28/29).
    pub fn add_months(&self, months: i64) -> Result<Date, DateError> {
        let zero_based = self.year as i64 * 12 + (self.month as i64 - 1) + months;
        let year = zero_based.div_euclid(12);
        let month = zero_based.rem_euclid(12) as u8 + 1;
        if !(1..=9999).contains(&year) {
            return Err(DateError::OutOfRange(format!("year {year}")));
        }
        let year = year as i32;
        let day = self.day.min(days_in_month(year, month));
        Date::new(year, month, day)
    }

    /// Parses `YYYY-MM-DD` (also accepting `/` separators and 1-2 digit
    /// month/day, as MySQL does).
    pub fn parse(s: &str) -> Result<Date, DateError> {
        let s = s.trim();
        let parts: Vec<&str> = s.split(['-', '/']).collect();
        if parts.len() != 3 {
            return Err(DateError::Syntax(s.to_string()));
        }
        let year: i32 = parts[0].parse().map_err(|_| DateError::Syntax(s.to_string()))?;
        let month: u8 = parts[1].parse().map_err(|_| DateError::Syntax(s.to_string()))?;
        let day: u8 = parts[2].parse().map_err(|_| DateError::Syntax(s.to_string()))?;
        Date::new(year, month, day)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl Time {
    /// Midnight.
    pub const MIDNIGHT: Time = Time { hour: 0, minute: 0, second: 0, micros: 0 };

    /// Creates a time of day, validating all components.
    pub fn new(hour: u8, minute: u8, second: u8, micros: u32) -> Result<Time, DateError> {
        if hour > 23 || minute > 59 || second > 59 || micros > 999_999 {
            return Err(DateError::OutOfRange(format!("{hour}:{minute}:{second}.{micros}")));
        }
        Ok(Time { hour, minute, second, micros })
    }

    /// The hour (0-23).
    pub fn hour(&self) -> u8 {
        self.hour
    }

    /// The minute (0-59).
    pub fn minute(&self) -> u8 {
        self.minute
    }

    /// The second (0-59).
    pub fn second(&self) -> u8 {
        self.second
    }

    /// The microsecond part (0-999999).
    pub fn micros(&self) -> u32 {
        self.micros
    }

    /// Microseconds since midnight.
    pub fn micros_from_midnight(&self) -> i64 {
        ((self.hour as i64 * 60 + self.minute as i64) * 60 + self.second as i64) * 1_000_000
            + self.micros as i64
    }

    /// Builds a time from microseconds since midnight (must be in range).
    pub fn from_micros_from_midnight(us: i64) -> Result<Time, DateError> {
        if !(0..86_400_000_000).contains(&us) {
            return Err(DateError::OutOfRange(format!("{us} microseconds")));
        }
        let micros = (us % 1_000_000) as u32;
        let total_secs = us / 1_000_000;
        Time::new(
            (total_secs / 3600) as u8,
            ((total_secs / 60) % 60) as u8,
            (total_secs % 60) as u8,
            micros,
        )
    }

    /// Parses `HH:MM:SS[.ffffff]` (also `HH:MM`).
    pub fn parse(s: &str) -> Result<Time, DateError> {
        let s = s.trim();
        let (main, frac) = match s.split_once('.') {
            Some((m, f)) => (m, Some(f)),
            None => (s, None),
        };
        let parts: Vec<&str> = main.split(':').collect();
        if parts.len() != 2 && parts.len() != 3 {
            return Err(DateError::Syntax(s.to_string()));
        }
        let hour: u8 = parts[0].parse().map_err(|_| DateError::Syntax(s.to_string()))?;
        let minute: u8 = parts[1].parse().map_err(|_| DateError::Syntax(s.to_string()))?;
        let second: u8 = if parts.len() == 3 {
            parts[2].parse().map_err(|_| DateError::Syntax(s.to_string()))?
        } else {
            0
        };
        let micros = match frac {
            None => 0,
            Some(f) => {
                if f.is_empty() || f.len() > 6 || !f.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(DateError::Syntax(s.to_string()));
                }
                let mut v: u32 = f.parse().map_err(|_| DateError::Syntax(s.to_string()))?;
                for _ in f.len()..6 {
                    v *= 10;
                }
                v
            }
        };
        Time::new(hour, minute, second, micros)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}:{:02}", self.hour, self.minute, self.second)?;
        if self.micros > 0 {
            write!(f, ".{:06}", self.micros)?;
        }
        Ok(())
    }
}

impl DateTime {
    /// Creates a datetime from parts.
    pub fn new(date: Date, time: Time) -> DateTime {
        DateTime { date, time }
    }

    /// Microseconds since 0001-01-01 00:00:00.
    pub fn micros_from_epoch(&self) -> i64 {
        self.date.days_from_epoch() * 86_400_000_000 + self.time.micros_from_midnight()
    }

    /// Builds a datetime from microseconds since 0001-01-01 00:00:00.
    pub fn from_micros_from_epoch(us: i64) -> Result<DateTime, DateError> {
        let days = us.div_euclid(86_400_000_000);
        let rem = us.rem_euclid(86_400_000_000);
        Ok(DateTime {
            date: Date::from_days_from_epoch(days)?,
            time: Time::from_micros_from_midnight(rem)?,
        })
    }

    /// Adds an interval, applying months first (clamping), then days, then
    /// the sub-day part — the standard SQL interval-addition order.
    pub fn add_interval(&self, iv: &Interval) -> Result<DateTime, DateError> {
        let date = self.date.add_months(iv.months)?.add_days(iv.days)?;
        let base = DateTime { date, time: self.time };
        let us = base
            .micros_from_epoch()
            .checked_add(iv.micros)
            .ok_or_else(|| DateError::OutOfRange("interval overflow".into()))?;
        DateTime::from_micros_from_epoch(us)
    }

    /// Parses `YYYY-MM-DD[ HH:MM:SS[.ffffff]]` (also `T` separator).
    pub fn parse(s: &str) -> Result<DateTime, DateError> {
        let s = s.trim();
        let split_at = s.find([' ', 'T']);
        match split_at {
            None => Ok(DateTime { date: Date::parse(s)?, time: Time::MIDNIGHT }),
            Some(i) => {
                let date = Date::parse(&s[..i])?;
                let time = Time::parse(&s[i + 1..])?;
                Ok(DateTime { date, time })
            }
        }
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.date, self.time)
    }
}

impl Interval {
    /// An interval of whole days.
    pub fn days(days: i64) -> Interval {
        Interval { months: 0, days, micros: 0 }
    }

    /// An interval of whole months.
    pub fn months(months: i64) -> Interval {
        Interval { months, days: 0, micros: 0 }
    }

    /// An interval of seconds.
    pub fn seconds(seconds: i64) -> Interval {
        Interval { months: 0, days: 0, micros: seconds.saturating_mul(1_000_000) }
    }

    /// Negates every component.
    pub fn neg(&self) -> Interval {
        Interval { months: -self.months, days: -self.days, micros: -self.micros }
    }

    /// Parses SQL interval syntax: a quantity plus a unit keyword, e.g.
    /// `5 DAY`, `-3 MONTH`, `2 HOUR`.
    pub fn parse(quantity: i64, unit: &str) -> Result<Interval, DateError> {
        let unit = unit.to_ascii_uppercase();
        Ok(match unit.as_str() {
            "MICROSECOND" => Interval { months: 0, days: 0, micros: quantity },
            "SECOND" => Interval::seconds(quantity),
            "MINUTE" => Interval::seconds(quantity.saturating_mul(60)),
            "HOUR" => Interval::seconds(quantity.saturating_mul(3600)),
            "DAY" => Interval::days(quantity),
            "WEEK" => Interval::days(quantity.saturating_mul(7)),
            "MONTH" => Interval::months(quantity),
            "QUARTER" => Interval::months(quantity.saturating_mul(3)),
            "YEAR" => Interval::months(quantity.saturating_mul(12)),
            _ => return Err(DateError::Syntax(format!("unknown interval unit {unit}"))),
        })
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} months {} days {} us", self.months, self.days, self.micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2000));
    }

    #[test]
    fn date_validation() {
        assert!(Date::new(2024, 2, 29).is_ok());
        assert!(Date::new(2023, 2, 29).is_err());
        assert!(Date::new(2023, 13, 1).is_err());
        assert!(Date::new(2023, 0, 1).is_err());
        assert!(Date::new(0, 1, 1).is_err());
        assert!(Date::new(10000, 1, 1).is_err());
    }

    #[test]
    fn epoch_roundtrip() {
        for (y, m, d) in [(1, 1, 1), (1970, 1, 1), (2000, 2, 29), (9999, 12, 31), (2026, 7, 6)] {
            let date = Date::new(y, m, d).unwrap();
            let days = date.days_from_epoch();
            assert_eq!(Date::from_days_from_epoch(days).unwrap(), date);
        }
    }

    #[test]
    fn weekday_known_values() {
        // 2026-07-06 is a Monday.
        assert_eq!(Date::new(2026, 7, 6).unwrap().weekday(), 0);
        // 2000-01-01 was a Saturday.
        assert_eq!(Date::new(2000, 1, 1).unwrap().weekday(), 5);
    }

    #[test]
    fn add_days_crosses_boundaries() {
        let d = Date::new(2023, 12, 31).unwrap();
        assert_eq!(d.add_days(1).unwrap().to_string(), "2024-01-01");
        assert_eq!(d.add_days(-365).unwrap().to_string(), "2022-12-31");
        assert!(Date::MAX.add_days(1).is_err());
        assert!(Date::MIN.add_days(-1).is_err());
    }

    #[test]
    fn add_months_clamps_day() {
        let d = Date::new(2024, 1, 31).unwrap();
        assert_eq!(d.add_months(1).unwrap().to_string(), "2024-02-29");
        assert_eq!(d.add_months(13).unwrap().to_string(), "2025-02-28");
        assert_eq!(d.add_months(-1).unwrap().to_string(), "2023-12-31");
    }

    #[test]
    fn date_parsing() {
        assert_eq!(Date::parse("2024-03-05").unwrap().to_string(), "2024-03-05");
        assert_eq!(Date::parse("2024/3/5").unwrap().to_string(), "2024-03-05");
        assert!(Date::parse("2024-13-05").is_err());
        assert!(Date::parse("hello").is_err());
        assert!(Date::parse("").is_err());
    }

    #[test]
    fn time_parsing_and_display() {
        assert_eq!(Time::parse("12:34:56").unwrap().to_string(), "12:34:56");
        assert_eq!(Time::parse("12:34").unwrap().to_string(), "12:34:00");
        assert_eq!(Time::parse("01:02:03.5").unwrap().to_string(), "01:02:03.500000");
        assert!(Time::parse("25:00:00").is_err());
        assert!(Time::parse("12:60:00").is_err());
        assert!(Time::parse("12:00:00.1234567").is_err());
    }

    #[test]
    fn datetime_roundtrip_and_interval() {
        let dt = DateTime::parse("2024-02-28 23:30:00").unwrap();
        let plus = dt.add_interval(&Interval::seconds(3600)).unwrap();
        assert_eq!(plus.to_string(), "2024-02-29 00:30:00");
        let plus_month = dt.add_interval(&Interval::months(1)).unwrap();
        assert_eq!(plus_month.to_string(), "2024-03-28 23:30:00");
        let us = dt.micros_from_epoch();
        assert_eq!(DateTime::from_micros_from_epoch(us).unwrap(), dt);
    }

    #[test]
    fn interval_units() {
        assert_eq!(Interval::parse(2, "WEEK").unwrap(), Interval::days(14));
        assert_eq!(Interval::parse(3, "YEAR").unwrap(), Interval::months(36));
        assert!(Interval::parse(1, "FORTNIGHT").is_err());
    }

    #[test]
    fn iso_week_samples() {
        // 2024-01-01 is a Monday -> week 1.
        assert_eq!(Date::new(2024, 1, 1).unwrap().iso_week(), 1);
        // 2023-01-01 is a Sunday -> ISO week 52 of 2022.
        assert_eq!(Date::new(2023, 1, 1).unwrap().iso_week(), 52);
        // 2020-12-31 (Thursday) is week 53.
        assert_eq!(Date::new(2020, 12, 31).unwrap().iso_week(), 53);
    }

    #[test]
    fn quarter_and_last_day() {
        assert_eq!(Date::new(2024, 5, 10).unwrap().quarter(), 2);
        assert_eq!(Date::new(2024, 2, 10).unwrap().last_day().to_string(), "2024-02-29");
    }
}
