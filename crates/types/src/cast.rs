//! The type-casting engine.
//!
//! §5.2 of the paper attributes 23.3 % of studied bugs to boundary results of
//! type castings — values that survive a flawed conversion as "broken internal
//! instances". This module is the reproduction's conversion layer: a single
//! [`cast`] entry point with explicit/implicit modes and per-dialect
//! strictness, so both PostgreSQL-like strictness (rejecting most implicit
//! conversions — the reason the paper found only one PostgreSQL bug) and
//! MySQL-like leniency are expressible.

use crate::datetime::{Date, DateTime, Interval, Time};
use crate::decimal::Decimal;
use crate::geometry::Geometry;
use crate::json;
use crate::value::{parse_numeric_prefix, DataType, Value};
use crate::xml::XmlDocument;
use std::fmt;

/// Whether a cast was written by the user (`CAST`, `::`) or synthesised by
/// the engine (argument coercion, `UNION` column alignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastMode {
    /// User-written cast.
    Explicit,
    /// Engine-inserted coercion.
    Implicit,
}

/// How permissive implicit conversions are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastStrictness {
    /// PostgreSQL-like: implicit casts only within a family (numeric↔numeric,
    /// anything→text is still explicit-only).
    Strict,
    /// MySQL-like: strings coerce to numbers by prefix, numbers stringify,
    /// almost everything converts with best effort.
    Lenient,
}

/// Limits applied during conversion.
#[derive(Debug, Clone, Copy)]
pub struct CastLimits {
    /// Maximum decimal digits (conversion overflow boundary).
    pub max_decimal_digits: usize,
    /// Maximum JSON/XML nesting accepted when parsing from text.
    pub max_nesting_depth: usize,
}

impl Default for CastLimits {
    fn default() -> Self {
        CastLimits { max_decimal_digits: crate::decimal::MAX_DIGITS, max_nesting_depth: 64 }
    }
}

/// A failed conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct CastError {
    /// Source type.
    pub from: DataType,
    /// Target type.
    pub to: DataType,
    /// Human-readable reason.
    pub reason: String,
}

impl CastError {
    fn new(from: DataType, to: DataType, reason: impl Into<String>) -> CastError {
        CastError { from, to, reason: reason.into() }
    }
}

impl fmt::Display for CastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot cast {} to {}: {}", self.from, self.to, self.reason)
    }
}

impl std::error::Error for CastError {}

/// True when `from` may be *implicitly* converted to `to` under the given
/// strictness. Explicit casts are allowed for every pair [`cast`] implements.
pub fn implicit_castable(from: DataType, to: DataType, strictness: CastStrictness) -> bool {
    use DataType::*;
    if from == to || from == Null {
        return true;
    }
    match strictness {
        CastStrictness::Strict => matches!(
            (from, to),
            (Integer, Decimal)
                | (Integer, Float)
                | (Decimal, Float)
                | (Boolean, Integer)
                | (Date, DateTime)
                | (Text, Json) // PG treats unknown-typed literals as castable
                | (Text, Binary) // binary-compatible reinterpretation
        ),
        CastStrictness::Lenient => {
            // MySQL-style: nearly everything scalar interconverts.
            !matches!(from, Row | Star) && !matches!(to, Row | Star)
        }
    }
}

/// Converts `value` to type `to`.
///
/// Implicit casts additionally require [`implicit_castable`] to hold; this is
/// the hook dialect strictness plugs into. NULL casts to NULL of any type.
pub fn cast(
    value: &Value,
    to: DataType,
    mode: CastMode,
    strictness: CastStrictness,
    limits: &CastLimits,
) -> Result<Value, CastError> {
    let from = value.data_type();
    if from == to {
        return Ok(value.clone());
    }
    if value.is_null() {
        return Ok(Value::Null);
    }
    if mode == CastMode::Implicit && !implicit_castable(from, to, strictness) {
        return Err(CastError::new(from, to, "no implicit conversion"));
    }
    let lenient = strictness == CastStrictness::Lenient;
    let err = |reason: &str| CastError::new(from, to, reason);
    match to {
        DataType::Boolean => match value.truthiness() {
            Some(b) => Ok(Value::Boolean(b)),
            None => Ok(Value::Null),
        },
        DataType::Integer => to_integer(value, lenient).map_err(|r| err(&r)),
        DataType::Decimal => to_decimal(value, lenient, limits).map_err(|r| err(&r)),
        DataType::Float => to_float(value, lenient).map_err(|r| err(&r)),
        DataType::Text => Ok(Value::Text(value.render())),
        DataType::Binary => match value {
            Value::Text(s) => Ok(Value::Binary(s.as_bytes().to_vec())),
            Value::Integer(i) => Ok(Value::Binary(i.to_be_bytes().to_vec())),
            Value::Geometry(g) => Ok(Value::Binary(g.to_binary())),
            _ => {
                if lenient {
                    Ok(Value::Binary(value.render().into_bytes()))
                } else {
                    Err(err("only text/integer/geometry convert to binary"))
                }
            }
        },
        DataType::Date => match value {
            Value::Text(s) => Date::parse(s).map(Value::Date).map_err(|e| err(&e.to_string())),
            Value::DateTime(dt) => Ok(Value::Date(dt.date)),
            Value::Integer(i) => {
                // YYYYMMDD numeric form, as MySQL accepts.
                let v = *i;
                if !(101..=99991231).contains(&v) {
                    return Err(err("integer out of date range"));
                }
                let y = (v / 10000) as i32;
                let m = ((v / 100) % 100) as u8;
                let d = (v % 100) as u8;
                Date::new(y, m, d).map(Value::Date).map_err(|e| err(&e.to_string()))
            }
            _ => Err(err("unsupported source for DATE")),
        },
        DataType::Time => match value {
            Value::Text(s) => Time::parse(s).map(Value::Time).map_err(|e| err(&e.to_string())),
            Value::DateTime(dt) => Ok(Value::Time(dt.time)),
            _ => Err(err("unsupported source for TIME")),
        },
        DataType::DateTime => match value {
            Value::Text(s) => {
                DateTime::parse(s).map(Value::DateTime).map_err(|e| err(&e.to_string()))
            }
            Value::Date(d) => {
                Ok(Value::DateTime(DateTime::new(*d, crate::datetime::Time::MIDNIGHT)))
            }
            _ => Err(err("unsupported source for DATETIME")),
        },
        DataType::Interval => match value {
            Value::Integer(i) => Ok(Value::Interval(Interval::days(*i))),
            _ => Err(err("unsupported source for INTERVAL")),
        },
        DataType::Json => match value {
            Value::Text(s) => json::parse_with_depth(s, limits.max_nesting_depth)
                .map(Value::Json)
                .map_err(|e| err(&e.to_string())),
            Value::Integer(i) => Ok(Value::Json(json::JsonValue::Number(i.to_string()))),
            Value::Decimal(d) => Ok(Value::Json(json::JsonValue::Number(d.to_string()))),
            Value::Float(f) => Ok(Value::Json(json::JsonValue::Number(format!("{f}")))),
            Value::Boolean(b) => Ok(Value::Json(json::JsonValue::Bool(*b))),
            Value::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match cast(item, DataType::Json, mode, strictness, limits)? {
                        Value::Json(j) => out.push(j),
                        Value::Null => out.push(json::JsonValue::Null),
                        _ => return Err(err("array element not convertible to JSON")),
                    }
                }
                Ok(Value::Json(json::JsonValue::Array(out)))
            }
            Value::Map(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for (k, v) in entries {
                    let key = match k {
                        Value::Text(s) => s.clone(),
                        other => other.render(),
                    };
                    match cast(v, DataType::Json, mode, strictness, limits)? {
                        Value::Json(j) => out.push((key, j)),
                        Value::Null => out.push((key, json::JsonValue::Null)),
                        _ => return Err(err("map value not convertible to JSON")),
                    }
                }
                Ok(Value::Json(json::JsonValue::Object(out)))
            }
            _ => Err(err("unsupported source for JSON")),
        },
        DataType::Xml => match value {
            Value::Text(s) => XmlDocument::parse_with_depth(s, limits.max_nesting_depth)
                .map(Value::Xml)
                .map_err(|e| err(&e.to_string())),
            _ => Err(err("unsupported source for XML")),
        },
        DataType::Geometry => match value {
            Value::Text(s) => {
                Geometry::parse_wkt(s).map(Value::Geometry).map_err(|e| err(&e.to_string()))
            }
            Value::Binary(b) => {
                Geometry::from_binary(b).map(Value::Geometry).map_err(|e| err(&e.to_string()))
            }
            _ => Err(err("unsupported source for GEOMETRY")),
        },
        DataType::Array => match value {
            Value::Json(json::JsonValue::Array(items)) => {
                Ok(Value::Array(items.iter().map(json_to_value).collect()))
            }
            v => Ok(Value::Array(vec![v.clone()])),
        },
        DataType::Map => match value {
            Value::Json(json::JsonValue::Object(fields)) => Ok(Value::Map(
                fields
                    .iter()
                    .map(|(k, v)| (Value::Text(k.clone()), json_to_value(v)))
                    .collect(),
            )),
            _ => Err(err("unsupported source for MAP")),
        },
        DataType::Row | DataType::Star | DataType::Null => {
            Err(err("not a cast target"))
        }
    }
}

/// Converts a JSON scalar/tree into the closest SQL value.
pub fn json_to_value(j: &json::JsonValue) -> Value {
    match j {
        json::JsonValue::Null => Value::Null,
        json::JsonValue::Bool(b) => Value::Boolean(*b),
        json::JsonValue::Number(n) => match n.parse::<i64>() {
            Ok(i) => Value::Integer(i),
            Err(_) => match n.parse::<Decimal>() {
                Ok(d) => Value::Decimal(d),
                Err(_) => Value::Float(n.parse().unwrap_or(0.0)),
            },
        },
        json::JsonValue::String(s) => Value::Text(s.clone()),
        json::JsonValue::Array(items) => Value::Array(items.iter().map(json_to_value).collect()),
        json::JsonValue::Object(fields) => Value::Map(
            fields
                .iter()
                .map(|(k, v)| (Value::Text(k.clone()), json_to_value(v)))
                .collect(),
        ),
    }
}

fn to_integer(value: &Value, lenient: bool) -> Result<Value, String> {
    match value {
        Value::Boolean(b) => Ok(Value::Integer(if *b { 1 } else { 0 })),
        Value::Integer(i) => Ok(Value::Integer(*i)),
        Value::Decimal(d) => d.to_i64().map(Value::Integer).map_err(|e| e.to_string()),
        Value::Float(f) => {
            if f.is_finite() && (i64::MIN as f64..=i64::MAX as f64).contains(f) {
                Ok(Value::Integer(f.trunc() as i64))
            } else {
                Err("float out of integer range".to_string())
            }
        }
        Value::Text(s) => {
            if lenient {
                Ok(Value::Integer(parse_numeric_prefix(s).trunc() as i64))
            } else {
                s.trim().parse::<i64>().map(Value::Integer).map_err(|e| e.to_string())
            }
        }
        Value::Date(d) => Ok(Value::Integer(
            d.year() as i64 * 10000 + d.month() as i64 * 100 + d.day() as i64,
        )),
        Value::Json(json::JsonValue::Number(n)) => {
            n.parse::<i64>().map(Value::Integer).map_err(|e| e.to_string())
        }
        _ => Err("unsupported source for INTEGER".to_string()),
    }
}

fn to_decimal(value: &Value, lenient: bool, limits: &CastLimits) -> Result<Value, String> {
    let d = match value {
        Value::Boolean(b) => Decimal::from_i64(if *b { 1 } else { 0 }),
        Value::Integer(i) => Decimal::from_i64(*i),
        Value::Decimal(d) => d.clone(),
        Value::Float(f) => Decimal::from_f64(*f).map_err(|e| e.to_string())?,
        Value::Text(s) => {
            if lenient {
                // Parse the longest numeric prefix as a decimal.
                match s.trim().parse::<Decimal>() {
                    Ok(d) => d,
                    Err(_) => Decimal::from_f64(parse_numeric_prefix(s))
                        .map_err(|e| e.to_string())?,
                }
            } else {
                s.trim().parse::<Decimal>().map_err(|e| e.to_string())?
            }
        }
        Value::Json(json::JsonValue::Number(n)) => n.parse().map_err(|_| "bad number")?,
        _ => return Err("unsupported source for DECIMAL".to_string()),
    };
    if d.total_digits() > limits.max_decimal_digits {
        return Err(format!(
            "decimal would need {} digits (limit {})",
            d.total_digits(),
            limits.max_decimal_digits
        ));
    }
    Ok(Value::Decimal(d))
}

fn to_float(value: &Value, lenient: bool) -> Result<Value, String> {
    match value {
        Value::Boolean(b) => Ok(Value::Float(if *b { 1.0 } else { 0.0 })),
        Value::Integer(i) => Ok(Value::Float(*i as f64)),
        Value::Decimal(d) => Ok(Value::Float(d.to_f64())),
        Value::Float(f) => Ok(Value::Float(*f)),
        Value::Text(s) => {
            if lenient {
                Ok(Value::Float(parse_numeric_prefix(s)))
            } else {
                s.trim().parse::<f64>().map(Value::Float).map_err(|e| e.to_string())
            }
        }
        Value::Json(json::JsonValue::Number(n)) => {
            n.parse().map(Value::Float).map_err(|_| "bad number".to_string())
        }
        _ => Err("unsupported source for DOUBLE".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: &CastLimits = &CastLimits { max_decimal_digits: 81, max_nesting_depth: 64 };

    fn exp(v: &Value, to: DataType) -> Result<Value, CastError> {
        cast(v, to, CastMode::Explicit, CastStrictness::Lenient, L)
    }

    fn imp_strict(v: &Value, to: DataType) -> Result<Value, CastError> {
        cast(v, to, CastMode::Implicit, CastStrictness::Strict, L)
    }

    #[test]
    fn null_casts_to_null() {
        for t in DataType::CASTABLE {
            assert_eq!(exp(&Value::Null, t).unwrap(), Value::Null, "NULL -> {t}");
        }
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(exp(&Value::Text("42".into()), DataType::Integer).unwrap(), Value::Integer(42));
        assert_eq!(
            exp(&Value::Float(1.9), DataType::Integer).unwrap(),
            Value::Integer(1)
        );
        assert_eq!(
            exp(&Value::Integer(3), DataType::Decimal).unwrap().render(),
            "3"
        );
    }

    #[test]
    fn lenient_text_to_number_uses_prefix() {
        assert_eq!(
            exp(&Value::Text("12abc".into()), DataType::Integer).unwrap(),
            Value::Integer(12)
        );
        assert_eq!(exp(&Value::Text("abc".into()), DataType::Integer).unwrap(), Value::Integer(0));
    }

    #[test]
    fn strict_rejects_implicit_cross_family() {
        assert!(imp_strict(&Value::Text("1".into()), DataType::Integer).is_err());
        assert!(imp_strict(&Value::Integer(1), DataType::Float).is_ok());
        assert!(imp_strict(&Value::Integer(1), DataType::Decimal).is_ok());
    }

    #[test]
    fn text_json_roundtrip() {
        let v = exp(&Value::Text("{\"a\": [1,2]}".into()), DataType::Json).unwrap();
        assert_eq!(v.render(), "{\"a\":[1,2]}");
        assert!(exp(&Value::Text("{bad".into()), DataType::Json).is_err());
    }

    #[test]
    fn deep_json_respects_depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let e = exp(&Value::Text(deep), DataType::Json).unwrap_err();
        assert!(e.reason.contains("depth"), "{e}");
    }

    #[test]
    fn date_conversions() {
        assert_eq!(
            exp(&Value::Text("2024-01-02".into()), DataType::Date).unwrap().render(),
            "2024-01-02"
        );
        assert_eq!(exp(&Value::Integer(20240102), DataType::Date).unwrap().render(), "2024-01-02");
        assert!(exp(&Value::Integer(20241402), DataType::Date).is_err());
    }

    #[test]
    fn geometry_from_binary_validates() {
        let geo = Geometry::parse_wkt("POINT(1 2)").unwrap();
        let bin = Value::Binary(geo.to_binary());
        assert_eq!(exp(&bin, DataType::Geometry).unwrap(), Value::Geometry(geo));
        // A 4-byte INET blob is rejected (post-fix Listing 11 behaviour).
        let blob = Value::Binary(vec![0xff; 4]);
        assert!(exp(&blob, DataType::Geometry).is_err());
    }

    #[test]
    fn decimal_digit_limit_applies() {
        let limits = CastLimits { max_decimal_digits: 10, max_nesting_depth: 64 };
        let long = Value::Text("123456789012345".into());
        let e = cast(&long, DataType::Decimal, CastMode::Explicit, CastStrictness::Lenient, &limits)
            .unwrap_err();
        assert!(e.reason.contains("digits"));
    }

    #[test]
    fn json_object_to_map() {
        let j = exp(&Value::Text("{\"k\": 1}".into()), DataType::Json).unwrap();
        let m = exp(&j, DataType::Map).unwrap();
        assert_eq!(m.render(), "{k: 1}");
    }

    #[test]
    fn star_is_not_castable() {
        assert!(exp(&Value::Star, DataType::Integer).is_err());
    }

    #[test]
    fn mdev_11030_shape_null_to_unsigned_is_null() {
        // CONVERT(NULL, UNSIGNED) must be NULL, not a broken zero.
        assert_eq!(exp(&Value::Null, DataType::Integer).unwrap(), Value::Null);
    }
}
