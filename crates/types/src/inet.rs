//! IPv4/IPv6 address parsing and formatting (the `INET_ATON` family).
//!
//! Implemented from scratch (no `std::net` parsing) so the engine controls
//! every boundary: `INET6_ATON('255.255.255.255')` returning a 16-byte blob
//! that later flows into a geometry function is the nested-function chain of
//! the paper's Listing 11.

use std::fmt;

/// Errors from address parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InetError(pub String);

impl fmt::Display for InetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid network address: {}", self.0)
    }
}

impl std::error::Error for InetError {}

/// Parses dotted-quad IPv4 into its numeric value (`INET_ATON`).
pub fn inet_aton(s: &str) -> Result<u32, InetError> {
    let parts: Vec<&str> = s.trim().split('.').collect();
    if parts.len() != 4 {
        return Err(InetError(s.to_string()));
    }
    let mut v: u32 = 0;
    for p in parts {
        if p.is_empty() || p.len() > 3 || !p.bytes().all(|b| b.is_ascii_digit()) {
            return Err(InetError(s.to_string()));
        }
        let octet: u32 = p.parse().map_err(|_| InetError(s.to_string()))?;
        if octet > 255 {
            return Err(InetError(s.to_string()));
        }
        v = (v << 8) | octet;
    }
    Ok(v)
}

/// Formats a numeric IPv4 value as dotted quad (`INET_NTOA`).
pub fn inet_ntoa(v: u32) -> String {
    format!("{}.{}.{}.{}", v >> 24, (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff)
}

/// Parses an IPv4 or IPv6 textual address into a binary blob
/// (4 or 16 bytes — `INET6_ATON` semantics).
pub fn inet6_aton(s: &str) -> Result<Vec<u8>, InetError> {
    let s = s.trim();
    if s.contains(':') {
        parse_ipv6(s).map(|b| b.to_vec())
    } else {
        inet_aton(s).map(|v| v.to_be_bytes().to_vec())
    }
}

/// Formats a 4- or 16-byte blob back to text (`INET6_NTOA`).
pub fn inet6_ntoa(bytes: &[u8]) -> Result<String, InetError> {
    match bytes.len() {
        4 => {
            let v = u32::from_be_bytes(bytes.try_into().expect("4 bytes"));
            Ok(inet_ntoa(v))
        }
        16 => Ok(format_ipv6(bytes.try_into().expect("16 bytes"))),
        n => Err(InetError(format!("{n}-byte blob is not an address"))),
    }
}

fn parse_ipv6(s: &str) -> Result<[u8; 16], InetError> {
    let err = || InetError(s.to_string());
    // Handle the `::` compression split.
    let (head, tail) = match s.find("::") {
        Some(i) => (&s[..i], Some(&s[i + 2..])),
        None => (s, None),
    };
    if s.matches("::").count() > 1 {
        return Err(err());
    }
    let parse_groups = |part: &str| -> Result<Vec<u16>, InetError> {
        if part.is_empty() {
            return Ok(Vec::new());
        }
        part.split(':')
            .map(|g| {
                if g.is_empty() || g.len() > 4 || !g.bytes().all(|b| b.is_ascii_hexdigit()) {
                    Err(err())
                } else {
                    u16::from_str_radix(g, 16).map_err(|_| err())
                }
            })
            .collect()
    };
    let head_groups = parse_groups(head)?;
    let groups: Vec<u16> = match tail {
        None => {
            if head_groups.len() != 8 {
                return Err(err());
            }
            head_groups
        }
        Some(tail) => {
            let tail_groups = parse_groups(tail)?;
            let fill = 8usize
                .checked_sub(head_groups.len() + tail_groups.len())
                .ok_or_else(err)?;
            if fill == 0 {
                return Err(err());
            }
            let mut g = head_groups;
            g.extend(std::iter::repeat_n(0, fill));
            g.extend(tail_groups);
            g
        }
    };
    let mut out = [0u8; 16];
    for (i, g) in groups.iter().enumerate() {
        out[i * 2] = (g >> 8) as u8;
        out[i * 2 + 1] = (g & 0xff) as u8;
    }
    Ok(out)
}

fn format_ipv6(bytes: &[u8; 16]) -> String {
    let groups: Vec<u16> = (0..8)
        .map(|i| ((bytes[i * 2] as u16) << 8) | bytes[i * 2 + 1] as u16)
        .collect();
    // Find the longest zero run (length >= 2) to compress.
    let mut best = (0usize, 0usize); // (start, len)
    let mut cur = (0usize, 0usize);
    for (i, &g) in groups.iter().enumerate() {
        if g == 0 {
            if cur.1 == 0 {
                cur.0 = i;
            }
            cur.1 += 1;
            if cur.1 > best.1 {
                best = cur;
            }
        } else {
            cur = (0, 0);
        }
    }
    if best.1 >= 2 {
        let head: Vec<String> = groups[..best.0].iter().map(|g| format!("{g:x}")).collect();
        let tail: Vec<String> =
            groups[best.0 + best.1..].iter().map(|g| format!("{g:x}")).collect();
        format!("{}::{}", head.join(":"), tail.join(":"))
    } else {
        groups.iter().map(|g| format!("{g:x}")).collect::<Vec<_>>().join(":")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_roundtrip() {
        assert_eq!(inet_aton("1.2.3.4").unwrap(), 0x01020304);
        assert_eq!(inet_ntoa(0x01020304), "1.2.3.4");
        assert_eq!(inet_aton("255.255.255.255").unwrap(), u32::MAX);
        assert_eq!(inet_ntoa(0), "0.0.0.0");
    }

    #[test]
    fn ipv4_rejects_malformed() {
        for s in ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "", "1.2.3.04x"] {
            assert!(inet_aton(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn ipv6_parse_and_format() {
        let b = inet6_aton("2001:db8::1").unwrap();
        assert_eq!(b.len(), 16);
        assert_eq!(inet6_ntoa(&b).unwrap(), "2001:db8::1");
        let b = inet6_aton("::").unwrap();
        assert_eq!(b, vec![0u8; 16]);
        assert_eq!(inet6_ntoa(&b).unwrap(), "::");
        let full = inet6_aton("1:2:3:4:5:6:7:8").unwrap();
        assert_eq!(inet6_ntoa(&full).unwrap(), "1:2:3:4:5:6:7:8");
    }

    #[test]
    fn ipv6_rejects_malformed() {
        for s in ["1:2:3", ":::", "1::2::3", "12345::", "g::1", "1:2:3:4:5:6:7:8:9"] {
            assert!(inet6_aton(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn listing11_chain_input() {
        // INET6_ATON('255.255.255.255') yields a 4-byte blob whose first
        // byte (0xff) is not a valid geometry tag.
        let blob = inet6_aton("255.255.255.255").unwrap();
        assert_eq!(blob, vec![0xff, 0xff, 0xff, 0xff]);
    }

    #[test]
    fn blob_length_check() {
        assert!(inet6_ntoa(&[1, 2, 3]).is_err());
        assert_eq!(inet6_ntoa(&[1, 2, 3, 4]).unwrap(), "1.2.3.4");
    }
}
