//! Boundary-value classification.
//!
//! The paper's central empirical claim is that 87.4 % of SQL function bugs
//! are triggered by *boundary values* of arguments — values at the edges of
//! expected structures, ranges, lengths and nesting depths (§5). This module
//! gives those edges a vocabulary: every [`Value`] can
//! be classified into a set of [`BoundaryClass`]es. The engine uses the
//! classes for feature-branch coverage, the fault corpus uses them as trigger
//! predicates, and the analyses report on them.

use crate::value::Value;

/// A boundary feature of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BoundaryClass {
    /// SQL NULL.
    NullValue,
    /// The `*` pseudo-argument.
    StarValue,
    /// The empty string `''` (or empty binary).
    EmptyString,
    /// Numeric zero.
    ZeroNumeric,
    /// Negative number.
    NegativeNumeric,
    /// Integer with magnitude within 1000 of `i64::MIN`/`i64::MAX`.
    ExtremeInt,
    /// A non-finite float (NaN/±inf).
    NonFiniteFloat,
    /// Numeric value whose textual form has many digits; payload is the
    /// bucket floor: 10, 20, 40 or 65 digits.
    ManyDigits(u8),
    /// String whose length falls in a large bucket; payload is the bucket
    /// floor: 256, 4096 or 65536 bytes.
    LongString(u32),
    /// String consisting mostly of one repeated short prefix (the output
    /// shape of `REPEAT` and of Patterns 1.4/3.1); payload is the repeat
    /// count bucket floor: 8, 64 or 512.
    RepeatedPrefix(u32),
    /// Container or document nested deeply; payload is the depth bucket
    /// floor: 8, 32 or 64.
    DeepNesting(u8),
    /// Empty container (array/map/row with no elements).
    EmptyContainer,
    /// A string that looks like structured data (starts like JSON/XML/WKT)
    /// — the "crafted string literal in certain formats" class.
    StructuredText,
}

/// Buckets a digit count to the floors used by [`BoundaryClass::ManyDigits`].
fn digit_bucket(n: usize) -> Option<u8> {
    match n {
        0..=9 => None,
        10..=19 => Some(10),
        20..=39 => Some(20),
        40..=64 => Some(40),
        _ => Some(65),
    }
}

fn len_bucket(n: usize) -> Option<u32> {
    match n {
        0..=255 => None,
        256..=4095 => Some(256),
        4096..=65535 => Some(4096),
        _ => Some(65536),
    }
}

fn depth_bucket(n: usize) -> Option<u8> {
    match n {
        0..=7 => None,
        8..=31 => Some(8),
        32..=63 => Some(32),
        _ => Some(64),
    }
}

fn repeat_bucket(n: usize) -> Option<u32> {
    match n {
        0..=7 => None,
        8..=63 => Some(8),
        64..=511 => Some(64),
        _ => Some(512),
    }
}

/// Length of the longest run of a repeated 1-4 byte prefix at the start of
/// `s` (e.g. `"[1,[1,[1,"` has a repeated 3-byte prefix with run 3).
pub fn repeated_prefix_run(s: &str) -> usize {
    let bytes = s.as_bytes();
    let mut best = 1;
    for plen in 1..=4usize {
        if bytes.len() < plen * 2 {
            break;
        }
        let prefix = &bytes[..plen];
        let mut count = 1;
        let mut i = plen;
        while i + plen <= bytes.len() && &bytes[i..i + plen] == prefix {
            count += 1;
            i += plen;
        }
        best = best.max(count);
    }
    best
}

/// True if the text looks like a structured format a SQL function might
/// parse: JSON, XML, WKT, a date, or a network address.
pub fn looks_structured(s: &str) -> bool {
    let t = s.trim_start();
    if t.starts_with('{') || t.starts_with('[') || t.starts_with('<') {
        return true;
    }
    let upper = t.to_ascii_uppercase();
    if upper.starts_with("POINT")
        || upper.starts_with("LINESTRING")
        || upper.starts_with("POLYGON")
        || upper.starts_with("GEOMETRYCOLLECTION")
    {
        return true;
    }
    // Date-like: dddd-dd-dd; address-like: contains dots or colons between digits.
    let b = t.as_bytes();
    if b.len() >= 8 && b[..4].iter().all(u8::is_ascii_digit) && b[4] == b'-' {
        return true;
    }
    if t.splitn(4, '.').count() == 4 && t.bytes().all(|c| c.is_ascii_digit() || c == b'.') {
        return true;
    }
    false
}

/// Classifies a value into its boundary classes (possibly empty for an
/// ordinary mid-range value).
pub fn classify(value: &Value) -> Vec<BoundaryClass> {
    use BoundaryClass::*;
    let mut out = Vec::new();
    match value {
        Value::Null => out.push(NullValue),
        Value::Star => out.push(StarValue),
        Value::Integer(i) => {
            if *i == 0 {
                out.push(ZeroNumeric);
            }
            if *i < 0 {
                out.push(NegativeNumeric);
            }
            if i.unsigned_abs() >= i64::MAX as u64 - 1000 {
                out.push(ExtremeInt);
            }
            if let Some(b) = digit_bucket(i.unsigned_abs().to_string().len()) {
                out.push(ManyDigits(b));
            }
        }
        Value::Decimal(d) => {
            if d.is_zero() {
                out.push(ZeroNumeric);
            }
            if d.is_negative() {
                out.push(NegativeNumeric);
            }
            if let Some(b) = digit_bucket(d.total_digits()) {
                out.push(ManyDigits(b));
            }
        }
        Value::Float(f) => {
            if *f == 0.0 {
                out.push(ZeroNumeric);
            }
            if *f < 0.0 {
                out.push(NegativeNumeric);
            }
            if !f.is_finite() {
                out.push(NonFiniteFloat);
            }
        }
        Value::Text(s) => {
            if s.is_empty() {
                out.push(EmptyString);
            }
            if let Some(b) = len_bucket(s.len()) {
                out.push(LongString(b));
            }
            if let Some(b) = repeat_bucket(repeated_prefix_run(s)) {
                out.push(RepeatedPrefix(b));
            }
            if looks_structured(s) {
                out.push(StructuredText);
            }
        }
        Value::Binary(b) => {
            if b.is_empty() {
                out.push(EmptyString);
            }
            if let Some(bucket) = len_bucket(b.len()) {
                out.push(LongString(bucket));
            }
        }
        Value::Json(j) => {
            if let Some(b) = depth_bucket(j.depth()) {
                out.push(DeepNesting(b));
            }
            if j.length() == 0 {
                out.push(EmptyContainer);
            }
        }
        Value::Xml(x) => {
            let depth = x.roots.iter().map(|n| n.depth()).max().unwrap_or(0);
            if let Some(b) = depth_bucket(depth) {
                out.push(DeepNesting(b));
            }
            if x.roots.is_empty() {
                out.push(EmptyContainer);
            }
        }
        Value::Array(items) | Value::Row(items) => {
            if items.is_empty() {
                out.push(EmptyContainer);
            }
            if let Some(b) = depth_bucket(container_depth(value)) {
                out.push(DeepNesting(b));
            }
        }
        Value::Map(entries)
            if entries.is_empty() => {
                out.push(EmptyContainer);
            }
        _ => {}
    }
    out.sort();
    out.dedup();
    out
}

fn container_depth(v: &Value) -> usize {
    match v {
        Value::Array(items) | Value::Row(items) => {
            1 + items.iter().map(container_depth).max().unwrap_or(0)
        }
        Value::Map(entries) => {
            1 + entries.iter().map(|(_, v)| container_depth(v)).max().unwrap_or(0)
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn null_and_star() {
        assert_eq!(classify(&Value::Null), vec![BoundaryClass::NullValue]);
        assert_eq!(classify(&Value::Star), vec![BoundaryClass::StarValue]);
    }

    #[test]
    fn plain_values_have_no_classes() {
        assert!(classify(&Value::Integer(42)).is_empty());
        assert!(classify(&Value::Text("hello".into())).is_empty());
        assert!(classify(&Value::Float(1.5)).is_empty());
    }

    #[test]
    fn numeric_boundaries() {
        assert!(classify(&Value::Integer(0)).contains(&BoundaryClass::ZeroNumeric));
        assert!(classify(&Value::Integer(i64::MAX)).contains(&BoundaryClass::ExtremeInt));
        assert!(classify(&Value::Integer(-5)).contains(&BoundaryClass::NegativeNumeric));
        let d: crate::decimal::Decimal = "9".repeat(50).parse().unwrap();
        assert!(classify(&Value::Decimal(d)).contains(&BoundaryClass::ManyDigits(40)));
        assert!(classify(&Value::Float(f64::NAN)).contains(&BoundaryClass::NonFiniteFloat));
    }

    #[test]
    fn string_boundaries() {
        assert_eq!(classify(&Value::Text(String::new())), vec![BoundaryClass::EmptyString]);
        assert!(classify(&Value::Text("x".repeat(5000)))
            .contains(&BoundaryClass::LongString(4096)));
        let rep = "[1,".repeat(100);
        assert!(classify(&Value::Text(rep)).contains(&BoundaryClass::RepeatedPrefix(64)));
    }

    #[test]
    fn structured_text_detection() {
        assert!(looks_structured("{\"a\":1}"));
        assert!(looks_structured("<a><b/></a>"));
        assert!(looks_structured("POINT(1 2)"));
        assert!(looks_structured("2024-01-01"));
        assert!(looks_structured("255.255.255.255"));
        assert!(!looks_structured("hello world"));
    }

    #[test]
    fn repeated_prefix_runs() {
        assert_eq!(repeated_prefix_run(&"[".repeat(100)), 100);
        assert_eq!(repeated_prefix_run(&"[1,".repeat(100)), 100);
        assert_eq!(repeated_prefix_run("abcdef"), 1);
        assert_eq!(repeated_prefix_run(""), 1);
    }

    #[test]
    fn deep_json_classified() {
        let deep = "[".repeat(40) + "1" + &"]".repeat(40);
        let j = json::parse(&deep).unwrap();
        assert!(classify(&Value::Json(j)).contains(&BoundaryClass::DeepNesting(32)));
    }

    #[test]
    fn empty_containers() {
        assert!(classify(&Value::Array(vec![])).contains(&BoundaryClass::EmptyContainer));
        assert!(classify(&Value::Map(vec![])).contains(&BoundaryClass::EmptyContainer));
    }
}
