//! Boundary-value classification.
//!
//! The paper's central empirical claim is that 87.4 % of SQL function bugs
//! are triggered by *boundary values* of arguments — values at the edges of
//! expected structures, ranges, lengths and nesting depths (§5). This module
//! gives those edges a vocabulary: every [`Value`] can
//! be classified into a set of [`BoundaryClass`]es. The engine uses the
//! classes for feature-branch coverage, the fault corpus uses them as trigger
//! predicates, and the analyses report on them.

use crate::value::Value;

/// A boundary feature of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BoundaryClass {
    /// SQL NULL.
    NullValue,
    /// The `*` pseudo-argument.
    StarValue,
    /// The empty string `''` (or empty binary).
    EmptyString,
    /// Numeric zero.
    ZeroNumeric,
    /// Negative number.
    NegativeNumeric,
    /// Integer with magnitude within 1000 of `i64::MIN`/`i64::MAX`.
    ExtremeInt,
    /// A non-finite float (NaN/±inf).
    NonFiniteFloat,
    /// Numeric value whose textual form has many digits; payload is the
    /// bucket floor: 10, 20, 40 or 65 digits.
    ManyDigits(u8),
    /// String whose length falls in a large bucket; payload is the bucket
    /// floor: 256, 4096 or 65536 bytes.
    LongString(u32),
    /// String consisting mostly of one repeated short prefix (the output
    /// shape of `REPEAT` and of Patterns 1.4/3.1); payload is the repeat
    /// count bucket floor: 8, 64 or 512.
    RepeatedPrefix(u32),
    /// Container or document nested deeply; payload is the depth bucket
    /// floor: 8, 32 or 64.
    DeepNesting(u8),
    /// Empty container (array/map/row with no elements).
    EmptyContainer,
    /// A string that looks like structured data (starts like JSON/XML/WKT)
    /// — the "crafted string literal in certain formats" class.
    StructuredText,
}

/// Buckets a digit count to the floors used by [`BoundaryClass::ManyDigits`].
fn digit_bucket(n: usize) -> Option<u8> {
    match n {
        0..=9 => None,
        10..=19 => Some(10),
        20..=39 => Some(20),
        40..=64 => Some(40),
        _ => Some(65),
    }
}

fn len_bucket(n: usize) -> Option<u32> {
    match n {
        0..=255 => None,
        256..=4095 => Some(256),
        4096..=65535 => Some(4096),
        _ => Some(65536),
    }
}

fn depth_bucket(n: usize) -> Option<u8> {
    match n {
        0..=7 => None,
        8..=31 => Some(8),
        32..=63 => Some(32),
        _ => Some(64),
    }
}

fn repeat_bucket(n: usize) -> Option<u32> {
    match n {
        0..=7 => None,
        8..=63 => Some(8),
        64..=511 => Some(64),
        _ => Some(512),
    }
}

/// Length of the longest run of a repeated 1-4 byte prefix at the start of
/// `s` (e.g. `"[1,[1,[1,"` has a repeated 3-byte prefix with run 3).
pub fn repeated_prefix_run(s: &str) -> usize {
    let bytes = s.as_bytes();
    let mut best = 1;
    for plen in 1..=4usize {
        if bytes.len() < plen * 2 {
            break;
        }
        let prefix = &bytes[..plen];
        let mut count = 1;
        let mut i = plen;
        while i + plen <= bytes.len() && &bytes[i..i + plen] == prefix {
            count += 1;
            i += plen;
        }
        best = best.max(count);
    }
    best
}

/// Case-insensitive ASCII prefix test without allocating an uppercased copy
/// — `looks_structured` runs on every text argument of every call.
fn has_prefix_ci(t: &str, prefix: &str) -> bool {
    t.len() >= prefix.len() && t.as_bytes()[..prefix.len()].eq_ignore_ascii_case(prefix.as_bytes())
}

/// True if the text looks like a structured format a SQL function might
/// parse: JSON, XML, WKT, a date, or a network address.
pub fn looks_structured(s: &str) -> bool {
    let t = s.trim_start();
    if t.starts_with('{') || t.starts_with('[') || t.starts_with('<') {
        return true;
    }
    if has_prefix_ci(t, "POINT")
        || has_prefix_ci(t, "LINESTRING")
        || has_prefix_ci(t, "POLYGON")
        || has_prefix_ci(t, "GEOMETRYCOLLECTION")
    {
        return true;
    }
    // Date-like: dddd-dd-dd; address-like: contains dots or colons between digits.
    let b = t.as_bytes();
    if b.len() >= 8 && b[..4].iter().all(u8::is_ascii_digit) && b[4] == b'-' {
        return true;
    }
    if t.splitn(4, '.').count() == 4 && t.bytes().all(|c| c.is_ascii_digit() || c == b'.') {
        return true;
    }
    false
}

/// The `(class, bit)` table behind [`class_bits`], in the sorted order
/// [`classify`] promises (variant order, then bucket payload order).
const CLASS_TABLE: [BoundaryClass; 22] = {
    use BoundaryClass::*;
    [
        NullValue,
        StarValue,
        EmptyString,
        ZeroNumeric,
        NegativeNumeric,
        ExtremeInt,
        NonFiniteFloat,
        ManyDigits(10),
        ManyDigits(20),
        ManyDigits(40),
        ManyDigits(65),
        LongString(256),
        LongString(4096),
        LongString(65536),
        RepeatedPrefix(8),
        RepeatedPrefix(64),
        RepeatedPrefix(512),
        DeepNesting(8),
        DeepNesting(32),
        DeepNesting(64),
        EmptyContainer,
        StructuredText,
    ]
};

fn class_bit(class: BoundaryClass) -> u32 {
    use BoundaryClass::*;
    // Must agree with `CLASS_TABLE` index for index — pinned by a test.
    let idx = match class {
        NullValue => 0,
        StarValue => 1,
        EmptyString => 2,
        ZeroNumeric => 3,
        NegativeNumeric => 4,
        ExtremeInt => 5,
        NonFiniteFloat => 6,
        ManyDigits(10) => 7,
        ManyDigits(20) => 8,
        ManyDigits(40) => 9,
        ManyDigits(_) => 10,
        LongString(256) => 11,
        LongString(4096) => 12,
        LongString(_) => 13,
        RepeatedPrefix(8) => 14,
        RepeatedPrefix(64) => 15,
        RepeatedPrefix(_) => 16,
        DeepNesting(8) => 17,
        DeepNesting(32) => 18,
        DeepNesting(_) => 19,
        EmptyContainer => 20,
        StructuredText => 21,
    };
    1 << idx
}

/// The boundary classes of a value as a bitmask over the (finite) class
/// universe — the allocation-free form of [`classify`], used on per-call hot
/// paths (coverage memo keys in the batch kernel). Bit `i` is set iff
/// `classify(value)` contains the `i`-th class in sorted order.
pub fn class_bits(value: &Value) -> u32 {
    use BoundaryClass::*;
    let mut bits = 0u32;
    let mut set = |c: BoundaryClass| bits |= class_bit(c);
    match value {
        Value::Null => set(NullValue),
        Value::Star => set(StarValue),
        Value::Integer(i) => {
            if *i == 0 {
                set(ZeroNumeric);
            }
            if *i < 0 {
                set(NegativeNumeric);
            }
            let mag = i.unsigned_abs();
            if mag >= i64::MAX as u64 - 1000 {
                set(ExtremeInt);
            }
            let digits = mag.checked_ilog10().map_or(1, |l| l as usize + 1);
            if let Some(b) = digit_bucket(digits) {
                set(ManyDigits(b));
            }
        }
        Value::Decimal(d) => {
            if d.is_zero() {
                set(ZeroNumeric);
            }
            if d.is_negative() {
                set(NegativeNumeric);
            }
            if let Some(b) = digit_bucket(d.total_digits()) {
                set(ManyDigits(b));
            }
        }
        Value::Float(f) => {
            if *f == 0.0 {
                set(ZeroNumeric);
            }
            if *f < 0.0 {
                set(NegativeNumeric);
            }
            if !f.is_finite() {
                set(NonFiniteFloat);
            }
        }
        Value::Text(s) => {
            if s.is_empty() {
                set(EmptyString);
            }
            if let Some(b) = len_bucket(s.len()) {
                set(LongString(b));
            }
            if let Some(b) = repeat_bucket(repeated_prefix_run(s)) {
                set(RepeatedPrefix(b));
            }
            if looks_structured(s) {
                set(StructuredText);
            }
        }
        Value::Binary(b) => {
            if b.is_empty() {
                set(EmptyString);
            }
            if let Some(bucket) = len_bucket(b.len()) {
                set(LongString(bucket));
            }
        }
        Value::Json(j) => {
            if let Some(b) = depth_bucket(j.depth()) {
                set(DeepNesting(b));
            }
            if j.length() == 0 {
                set(EmptyContainer);
            }
        }
        Value::Xml(x) => {
            let depth = x.roots.iter().map(|n| n.depth()).max().unwrap_or(0);
            if let Some(b) = depth_bucket(depth) {
                set(DeepNesting(b));
            }
            if x.roots.is_empty() {
                set(EmptyContainer);
            }
        }
        Value::Array(_) | Value::Row(_) => {
            let items_empty = match value {
                Value::Array(items) | Value::Row(items) => items.is_empty(),
                _ => unreachable!(),
            };
            if items_empty {
                set(EmptyContainer);
            }
            if let Some(b) = depth_bucket(container_depth(value)) {
                set(DeepNesting(b));
            }
        }
        Value::Map(entries) if entries.is_empty() => set(EmptyContainer),
        _ => {}
    }
    bits
}

/// Classifies a value into its boundary classes, sorted and deduplicated
/// (possibly empty for an ordinary mid-range value). This is the readable
/// form of [`class_bits`] — the two can never disagree because this one is
/// derived from the bitmask.
pub fn classify(value: &Value) -> Vec<BoundaryClass> {
    let bits = class_bits(value);
    CLASS_TABLE
        .iter()
        .enumerate()
        .filter(|&(i, _)| bits & (1 << i) != 0)
        .map(|(_, &c)| c)
        .collect()
}

fn container_depth(v: &Value) -> usize {
    match v {
        Value::Array(items) | Value::Row(items) => {
            1 + items.iter().map(container_depth).max().unwrap_or(0)
        }
        Value::Map(entries) => {
            1 + entries.iter().map(|(_, v)| container_depth(v)).max().unwrap_or(0)
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn null_and_star() {
        assert_eq!(classify(&Value::Null), vec![BoundaryClass::NullValue]);
        assert_eq!(classify(&Value::Star), vec![BoundaryClass::StarValue]);
    }

    #[test]
    fn plain_values_have_no_classes() {
        assert!(classify(&Value::Integer(42)).is_empty());
        assert!(classify(&Value::Text("hello".into())).is_empty());
        assert!(classify(&Value::Float(1.5)).is_empty());
    }

    #[test]
    fn numeric_boundaries() {
        assert!(classify(&Value::Integer(0)).contains(&BoundaryClass::ZeroNumeric));
        assert!(classify(&Value::Integer(i64::MAX)).contains(&BoundaryClass::ExtremeInt));
        assert!(classify(&Value::Integer(-5)).contains(&BoundaryClass::NegativeNumeric));
        let d: crate::decimal::Decimal = "9".repeat(50).parse().unwrap();
        assert!(classify(&Value::Decimal(d)).contains(&BoundaryClass::ManyDigits(40)));
        assert!(classify(&Value::Float(f64::NAN)).contains(&BoundaryClass::NonFiniteFloat));
    }

    #[test]
    fn string_boundaries() {
        assert_eq!(classify(&Value::Text(String::new())), vec![BoundaryClass::EmptyString]);
        assert!(classify(&Value::Text("x".repeat(5000)))
            .contains(&BoundaryClass::LongString(4096)));
        let rep = "[1,".repeat(100);
        assert!(classify(&Value::Text(rep)).contains(&BoundaryClass::RepeatedPrefix(64)));
    }

    #[test]
    fn structured_text_detection() {
        assert!(looks_structured("{\"a\":1}"));
        assert!(looks_structured("<a><b/></a>"));
        assert!(looks_structured("POINT(1 2)"));
        assert!(looks_structured("2024-01-01"));
        assert!(looks_structured("255.255.255.255"));
        assert!(!looks_structured("hello world"));
    }

    #[test]
    fn repeated_prefix_runs() {
        assert_eq!(repeated_prefix_run(&"[".repeat(100)), 100);
        assert_eq!(repeated_prefix_run(&"[1,".repeat(100)), 100);
        assert_eq!(repeated_prefix_run("abcdef"), 1);
        assert_eq!(repeated_prefix_run(""), 1);
    }

    #[test]
    fn deep_json_classified() {
        let deep = "[".repeat(40) + "1" + &"]".repeat(40);
        let j = json::parse(&deep).unwrap();
        assert!(classify(&Value::Json(j)).contains(&BoundaryClass::DeepNesting(32)));
    }

    #[test]
    fn empty_containers() {
        assert!(classify(&Value::Array(vec![])).contains(&BoundaryClass::EmptyContainer));
        assert!(classify(&Value::Map(vec![])).contains(&BoundaryClass::EmptyContainer));
    }

    #[test]
    fn class_table_is_sorted_and_bit_indexed() {
        for (i, &c) in CLASS_TABLE.iter().enumerate() {
            assert_eq!(class_bit(c), 1 << i, "bit index drifted for {c:?}");
            if i > 0 {
                assert!(CLASS_TABLE[i - 1] < c, "table out of sorted order at {i}");
            }
        }
    }

    #[test]
    fn classify_stays_sorted_and_deduped() {
        // classify is derived from the bitmask, so the sorted-set contract
        // holds for any value; spot-check multi-class values.
        let vals = [
            Value::Integer(-5),
            Value::Integer(i64::MIN),
            Value::Text("[1,".repeat(2000)),
            Value::Float(f64::NEG_INFINITY),
        ];
        for v in &vals {
            let c = classify(v);
            let mut sorted = c.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(c, sorted, "classify({v:?}) not sorted/deduped");
        }
    }
}
