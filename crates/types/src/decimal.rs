//! Arbitrary-precision decimal numbers.
//!
//! DBMSs such as MySQL and MariaDB implement `DECIMAL` with a dedicated
//! fixed-point library rather than binary floating point; several of the bugs
//! studied in the paper (MDEV-8407, MDEV-23415, the MySQL `AVG` global buffer
//! overflow of Listing 6) live in exactly this layer, in conversions between
//! decimals and strings at large digit counts. This module is the
//! reproduction's equivalent substrate: a base-10 digit-vector fixed-point
//! type with checked arithmetic and a digit-count cap modelled after
//! MySQL/MariaDB's 65-digit `DECIMAL` (with 81-digit intermediates).

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Maximum number of significant digits a [`Decimal`] may hold.
///
/// MariaDB's decimal library uses 81 decimal digits for intermediate results;
/// we adopt the same cap so "more digits than the library supports" is a real,
/// reachable boundary.
pub const MAX_DIGITS: usize = 81;

/// Maximum scale (digits after the decimal point).
pub const MAX_SCALE: usize = 38;

/// Errors produced by decimal parsing and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecimalError {
    /// The textual input was not a valid decimal literal.
    Syntax(String),
    /// The result would exceed [`MAX_DIGITS`] significant digits.
    Overflow,
    /// Division by zero.
    DivisionByZero,
    /// Conversion to a narrower type lost the value entirely.
    OutOfRange,
}

impl fmt::Display for DecimalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecimalError::Syntax(s) => write!(f, "invalid decimal literal: {s}"),
            DecimalError::Overflow => write!(f, "decimal overflow (more than {MAX_DIGITS} digits)"),
            DecimalError::DivisionByZero => write!(f, "decimal division by zero"),
            DecimalError::OutOfRange => write!(f, "decimal value out of range"),
        }
    }
}

impl std::error::Error for DecimalError {}

/// An arbitrary-precision signed fixed-point decimal.
///
/// The value is `(-1)^negative * digits / 10^scale` where `digits` is a
/// base-10 big integer stored most-significant digit first.
///
/// # Examples
///
/// ```
/// use soft_types::decimal::Decimal;
/// let a: Decimal = "1.25".parse().unwrap();
/// let b: Decimal = "2.75".parse().unwrap();
/// assert_eq!(a.checked_add(&b).unwrap().to_string(), "4.00");
/// ```
#[derive(Debug, Clone)]
pub struct Decimal {
    negative: bool,
    /// Base-10 digits of the unscaled integer, most significant first.
    /// Never empty; no redundant leading zeros (except a lone `0`).
    digits: Vec<u8>,
    /// Number of digits after the decimal point.
    scale: usize,
}

impl Decimal {
    /// Returns the decimal value zero (scale 0).
    pub fn zero() -> Self {
        Decimal { negative: false, digits: vec![0], scale: 0 }
    }

    /// Returns the decimal value one (scale 0).
    pub fn one() -> Self {
        Decimal { negative: false, digits: vec![1], scale: 0 }
    }

    /// Builds a decimal from raw parts, normalising leading zeros.
    ///
    /// Returns [`DecimalError::Overflow`] if more than [`MAX_DIGITS`] digits
    /// remain after stripping leading zeros, or if any digit is not in `0..=9`.
    pub fn from_parts(negative: bool, digits: Vec<u8>, scale: usize) -> Result<Self, DecimalError> {
        if digits.iter().any(|&d| d > 9) {
            return Err(DecimalError::Syntax("digit out of range".into()));
        }
        let mut d = Decimal { negative, digits, scale };
        d.normalize();
        if d.digits.len() > MAX_DIGITS {
            return Err(DecimalError::Overflow);
        }
        Ok(d)
    }

    /// Creates a decimal from an `i64` with scale 0.
    pub fn from_i64(v: i64) -> Self {
        Self::from_i128(v as i128)
    }

    /// Creates a decimal from an `i128` with scale 0.
    pub fn from_i128(v: i128) -> Self {
        let negative = v < 0;
        let mut mag = v.unsigned_abs();
        if mag == 0 {
            return Decimal::zero();
        }
        let mut digits = Vec::new();
        while mag > 0 {
            digits.push((mag % 10) as u8);
            mag /= 10;
        }
        digits.reverse();
        Decimal { negative, digits, scale: 0 }
    }

    /// Creates a decimal from an `f64`, using up to 17 significant digits.
    ///
    /// Returns [`DecimalError::OutOfRange`] for NaN or infinite inputs.
    pub fn from_f64(v: f64) -> Result<Self, DecimalError> {
        if !v.is_finite() {
            return Err(DecimalError::OutOfRange);
        }
        // Format with enough precision to round-trip, then parse.
        let s = format!("{v:.17}");
        let mut d: Decimal = s.parse()?;
        d.trim_trailing_fraction_zeros();
        Ok(d)
    }

    /// True if the value is exactly zero (regardless of scale or sign).
    pub fn is_zero(&self) -> bool {
        self.digits.iter().all(|&d| d == 0)
    }

    /// True if the value is negative (and non-zero).
    pub fn is_negative(&self) -> bool {
        self.negative && !self.is_zero()
    }

    /// The scale: number of digits after the decimal point.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Total number of stored significant digits (integer + fraction).
    ///
    /// This is the quantity the paper's "digit length" boundaries are about:
    /// e.g. MDEV-8407 fires for decimals longer than 40 digits.
    pub fn total_digits(&self) -> usize {
        if self.digits.len() < self.scale {
            // Pure fraction like 0.005: count the fractional digits.
            self.scale
        } else {
            self.digits.len().max(self.scale)
        }
    }

    /// Number of digits before the decimal point (at least 1 for the zero).
    pub fn integer_digits(&self) -> usize {
        self.digits.len().saturating_sub(self.scale).max(1)
    }

    /// Negates the value.
    pub fn neg(&self) -> Self {
        let mut d = self.clone();
        if !d.is_zero() {
            d.negative = !d.negative;
        }
        d
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        let mut d = self.clone();
        d.negative = false;
        d
    }

    fn normalize(&mut self) {
        // Keep at least max(1, scale+1)? No: value 0.05 stores digits [5],
        // scale 2. Just strip leading zeros down to one digit.
        while self.digits.len() > 1 && self.digits[0] == 0 {
            self.digits.remove(0);
        }
        if self.digits.is_empty() {
            self.digits.push(0);
        }
        if self.is_zero() {
            self.negative = false;
        }
    }

    fn trim_trailing_fraction_zeros(&mut self) {
        while self.scale > 0 && *self.digits.last().unwrap_or(&1) == 0 && self.digits.len() > 1 {
            self.digits.pop();
            self.scale -= 1;
        }
        if self.is_zero() {
            self.scale = 0;
            self.digits = vec![0];
        }
    }

    /// Rescales the unscaled digit vector so both operands share a scale.
    fn aligned(a: &Decimal, b: &Decimal) -> (Vec<u8>, Vec<u8>, usize) {
        let scale = a.scale.max(b.scale);
        let mut da = a.digits.clone();
        let mut db = b.digits.clone();
        da.extend(std::iter::repeat_n(0, scale - a.scale));
        db.extend(std::iter::repeat_n(0, scale - b.scale));
        (da, db, scale)
    }

    fn cmp_magnitude(a: &[u8], b: &[u8]) -> Ordering {
        let a = strip_leading(a);
        let b = strip_leading(b);
        match a.len().cmp(&b.len()) {
            Ordering::Equal => a.cmp(b),
            other => other,
        }
    }

    fn add_magnitude(a: &[u8], b: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry = 0u8;
        let mut ia = a.iter().rev();
        let mut ib = b.iter().rev();
        loop {
            let da = ia.next();
            let db = ib.next();
            if da.is_none() && db.is_none() && carry == 0 {
                break;
            }
            let s = da.copied().unwrap_or(0) + db.copied().unwrap_or(0) + carry;
            out.push(s % 10);
            carry = s / 10;
        }
        out.reverse();
        if out.is_empty() {
            out.push(0);
        }
        out
    }

    /// Subtracts magnitudes; requires `a >= b`.
    fn sub_magnitude(a: &[u8], b: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i8;
        let mut ia = a.iter().rev();
        let mut ib = b.iter().rev();
        loop {
            let da = ia.next();
            if da.is_none() {
                break;
            }
            let da = *da.unwrap() as i8;
            let db = ib.next().copied().unwrap_or(0) as i8;
            let mut s = da - db - borrow;
            if s < 0 {
                s += 10;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(s as u8);
        }
        out.reverse();
        out
    }

    /// Checked addition.
    pub fn checked_add(&self, other: &Decimal) -> Result<Decimal, DecimalError> {
        let (da, db, scale) = Decimal::aligned(self, other);
        let (negative, digits) = if self.negative == other.negative {
            (self.negative, Decimal::add_magnitude(&da, &db))
        } else {
            match Decimal::cmp_magnitude(&da, &db) {
                Ordering::Equal => (false, vec![0]),
                Ordering::Greater => (self.negative, Decimal::sub_magnitude(&da, &db)),
                Ordering::Less => (other.negative, Decimal::sub_magnitude(&db, &da)),
            }
        };
        Decimal::from_parts(negative, digits, scale)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, other: &Decimal) -> Result<Decimal, DecimalError> {
        self.checked_add(&other.neg())
    }

    /// Checked multiplication. The result scale is the sum of operand scales.
    pub fn checked_mul(&self, other: &Decimal) -> Result<Decimal, DecimalError> {
        let a = &self.digits;
        let b = &other.digits;
        let mut acc = vec![0u32; a.len() + b.len()];
        for (i, &da) in a.iter().rev().enumerate() {
            for (j, &db) in b.iter().rev().enumerate() {
                acc[i + j] += da as u32 * db as u32;
            }
        }
        let mut carry = 0u32;
        let mut digits = Vec::with_capacity(acc.len());
        for v in acc.iter_mut() {
            let s = *v + carry;
            digits.push((s % 10) as u8);
            carry = s / 10;
        }
        while carry > 0 {
            digits.push((carry % 10) as u8);
            carry /= 10;
        }
        digits.reverse();
        Decimal::from_parts(self.negative != other.negative, digits, self.scale + other.scale)
    }

    /// Checked division.
    ///
    /// Mirrors MySQL's `div_precision_increment = 4`: the result scale is
    /// `self.scale + 4`, computed with one guard digit and rounded half away
    /// from zero.
    pub fn checked_div(&self, other: &Decimal) -> Result<Decimal, DecimalError> {
        if other.is_zero() {
            return Err(DecimalError::DivisionByZero);
        }
        let target_scale = (self.scale + 4).min(MAX_SCALE);
        let guarded = self.div_with_scale(other, target_scale + 1)?;
        guarded.round_to_scale(target_scale)
    }

    /// Division producing a result with an explicit scale.
    pub fn div_with_scale(&self, other: &Decimal, target_scale: usize) -> Result<Decimal, DecimalError> {
        if other.is_zero() {
            return Err(DecimalError::DivisionByZero);
        }
        // Compute floor( (A * 10^k) / B ) on the unscaled integers, where k is
        // chosen so that the quotient has `target_scale` fractional digits:
        // value = A/10^sa / (B/10^sb) = (A * 10^sb) / (B * 10^sa).
        // Multiply numerator by an extra 10^target_scale.
        let mut num = self.digits.clone();
        num.extend(std::iter::repeat_n(0, other.scale + target_scale));
        let mut den = other.digits.clone();
        den.extend(std::iter::repeat_n(0, self.scale));
        let q = long_divide(&num, &den);
        Decimal::from_parts(self.negative != other.negative, q, target_scale)
    }

    /// Remainder with the sign of the dividend (SQL `MOD` semantics).
    pub fn checked_rem(&self, other: &Decimal) -> Result<Decimal, DecimalError> {
        if other.is_zero() {
            return Err(DecimalError::DivisionByZero);
        }
        // r = a - trunc(a/b) * b at scale 0 quotient.
        let q = self.div_with_scale(other, 0)?;
        let prod = q.checked_mul(other)?;
        self.checked_sub(&prod)
    }

    /// Rounds (half away from zero) to `new_scale` fractional digits.
    pub fn round_to_scale(&self, new_scale: usize) -> Result<Decimal, DecimalError> {
        if new_scale >= self.scale {
            let mut d = self.clone();
            let pad = new_scale - self.scale;
            d.digits.extend(std::iter::repeat_n(0, pad));
            d.scale = new_scale;
            d.normalize();
            if d.digits.len() > MAX_DIGITS {
                return Err(DecimalError::Overflow);
            }
            return Ok(d);
        }
        let drop = self.scale - new_scale;
        let mut digits = self.digits.clone();
        // Ensure we have at least `drop` digits to remove.
        while digits.len() < drop {
            digits.insert(0, 0);
        }
        let removed_first = digits[digits.len() - drop];
        digits.truncate(digits.len() - drop);
        if digits.is_empty() {
            digits.push(0);
        }
        let mut d = Decimal { negative: self.negative, digits, scale: new_scale };
        if removed_first >= 5 {
            let one_ulp = Decimal {
                negative: self.negative,
                digits: vec![1],
                scale: new_scale,
            };
            d = d.checked_add(&one_ulp)?;
        }
        d.normalize();
        Ok(d)
    }

    /// Truncates toward zero to `new_scale` fractional digits.
    pub fn truncate_to_scale(&self, new_scale: usize) -> Decimal {
        if new_scale >= self.scale {
            let mut d = self.clone();
            d.digits.extend(std::iter::repeat_n(0, new_scale - self.scale));
            d.scale = new_scale;
            d.normalize();
            return d;
        }
        let drop = self.scale - new_scale;
        let mut digits = self.digits.clone();
        if digits.len() <= drop {
            return Decimal { negative: false, digits: vec![0], scale: new_scale };
        }
        digits.truncate(digits.len() - drop);
        let mut d = Decimal { negative: self.negative, digits, scale: new_scale };
        d.normalize();
        d
    }

    /// Converts to `f64` (may lose precision for large digit counts).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0f64;
        for &d in &self.digits {
            acc = acc * 10.0 + d as f64;
        }
        acc /= 10f64.powi(self.scale as i32);
        if self.negative {
            -acc
        } else {
            acc
        }
    }

    /// Converts to `i64`, truncating the fraction toward zero.
    ///
    /// Returns [`DecimalError::OutOfRange`] when the integral part does not
    /// fit in an `i64`.
    pub fn to_i64(&self) -> Result<i64, DecimalError> {
        let t = self.truncate_to_scale(0);
        let mut acc: i64 = 0;
        for &d in &t.digits {
            acc = acc
                .checked_mul(10)
                .and_then(|a| a.checked_add(d as i64))
                .ok_or(DecimalError::OutOfRange)?;
        }
        Ok(if t.negative { -acc } else { acc })
    }

    /// Renders the value in scientific notation with `sig` significant digits,
    /// e.g. `1.3e-32`.
    ///
    /// MariaDB's `String::set_real` switches to this representation when a
    /// formatted number would exceed 31 digits — the behaviour at the heart of
    /// MDEV-23415.
    pub fn to_scientific(&self, sig: usize) -> String {
        if self.is_zero() {
            return "0e0".to_string();
        }
        let sig = sig.max(1);
        let digits = strip_leading(&self.digits);
        let exp = digits.len() as i64 - 1 - self.scale as i64;
        let mut mantissa: String = digits.iter().take(sig).map(|d| (b'0' + d) as char).collect();
        if mantissa.len() > 1 {
            mantissa.insert(1, '.');
            while mantissa.ends_with('0') {
                mantissa.pop();
            }
            if mantissa.ends_with('.') {
                mantissa.pop();
            }
        }
        let sign = if self.negative { "-" } else { "" };
        format!("{sign}{mantissa}e{exp}")
    }
}

fn strip_leading(d: &[u8]) -> &[u8] {
    let mut i = 0;
    while i + 1 < d.len() && d[i] == 0 {
        i += 1;
    }
    &d[i..]
}

/// Schoolbook long division of base-10 digit vectors, producing the floored
/// quotient. `den` must be non-zero.
fn long_divide(num: &[u8], den: &[u8]) -> Vec<u8> {
    let den = strip_leading(den);
    let mut rem: Vec<u8> = Vec::new();
    let mut quot = Vec::with_capacity(num.len());
    for &d in num {
        rem.push(d);
        // Strip leading zeros of rem.
        while rem.len() > 1 && rem[0] == 0 {
            rem.remove(0);
        }
        // Find q in 0..=9 with q*den <= rem < (q+1)*den.
        let mut q = 0u8;
        while Decimal::cmp_magnitude(&rem, den) != Ordering::Less {
            rem = Decimal::sub_magnitude(&rem, den);
            while rem.len() > 1 && rem[0] == 0 {
                rem.remove(0);
            }
            q += 1;
        }
        quot.push(q);
    }
    while quot.len() > 1 && quot[0] == 0 {
        quot.remove(0);
    }
    if quot.is_empty() {
        quot.push(0);
    }
    quot
}

impl FromStr for Decimal {
    type Err = DecimalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(DecimalError::Syntax("empty string".into()));
        }
        let bytes = s.as_bytes();
        let mut i = 0;
        let mut negative = false;
        match bytes[i] {
            b'-' => {
                negative = true;
                i += 1;
            }
            b'+' => i += 1,
            _ => {}
        }
        let mut digits: Vec<u8> = Vec::new();
        let mut scale = 0usize;
        let mut seen_digit = false;
        let mut seen_dot = false;
        let mut exp: i64 = 0;
        while i < bytes.len() {
            let c = bytes[i];
            match c {
                b'0'..=b'9' => {
                    digits.push(c - b'0');
                    if seen_dot {
                        scale += 1;
                    }
                    seen_digit = true;
                    i += 1;
                }
                b'.' if !seen_dot => {
                    seen_dot = true;
                    i += 1;
                }
                b'e' | b'E' if seen_digit => {
                    let (e, used) = parse_exponent(&bytes[i + 1..])
                        .ok_or_else(|| DecimalError::Syntax(s.to_string()))?;
                    exp = e;
                    i += 1 + used;
                    if i != bytes.len() {
                        return Err(DecimalError::Syntax(s.to_string()));
                    }
                }
                _ => return Err(DecimalError::Syntax(s.to_string())),
            }
        }
        if !seen_digit {
            return Err(DecimalError::Syntax(s.to_string()));
        }
        // Apply the exponent by adjusting the scale (or appending zeros).
        let mut scale_i = scale as i64 - exp;
        if scale_i < 0 {
            digits.extend(std::iter::repeat_n(0, (-scale_i) as usize));
            scale_i = 0;
        }
        Decimal::from_parts(negative, digits, scale_i as usize)
    }
}

fn parse_exponent(bytes: &[u8]) -> Option<(i64, usize)> {
    let mut i = 0;
    let mut neg = false;
    if i < bytes.len() && (bytes[i] == b'-' || bytes[i] == b'+') {
        neg = bytes[i] == b'-';
        i += 1;
    }
    let start = i;
    let mut v: i64 = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        v = v.checked_mul(10)?.checked_add((bytes[i] - b'0') as i64)?;
        i += 1;
    }
    if i == start {
        return None;
    }
    Some((if neg { -v } else { v }, i))
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative && !self.is_zero() {
            write!(f, "-")?;
        }
        let n = self.digits.len();
        if self.scale == 0 {
            for &d in &self.digits {
                write!(f, "{d}")?;
            }
            return Ok(());
        }
        if n > self.scale {
            for &d in &self.digits[..n - self.scale] {
                write!(f, "{d}")?;
            }
        } else {
            write!(f, "0")?;
        }
        write!(f, ".")?;
        // Pad missing fraction leading zeros (e.g. digits [5], scale 3 -> 0.005).
        if n < self.scale {
            for _ in 0..self.scale - n {
                write!(f, "0")?;
            }
            for &d in &self.digits {
                write!(f, "{d}")?;
            }
        } else {
            for &d in &self.digits[n - self.scale..] {
                write!(f, "{d}")?;
            }
        }
        Ok(())
    }
}

impl PartialEq for Decimal {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Decimal {}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_negative(), other.is_negative()) {
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        let (da, db, _) = Decimal::aligned(self, other);
        let mag = Decimal::cmp_magnitude(&da, &db);
        if self.is_negative() {
            mag.reverse()
        } else {
            mag
        }
    }
}

impl std::hash::Hash for Decimal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash a canonical form: trimmed trailing fraction zeros.
        let mut c = self.clone();
        c.trim_trailing_fraction_zeros();
        c.negative.hash(state);
        c.digits.hash(state);
        c.scale.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "1", "-1", "123.456", "-0.005", "99999999999999999999", "0.1"] {
            assert_eq!(d(s).to_string(), s);
        }
    }

    #[test]
    fn parse_normalises_leading_zeros() {
        assert_eq!(d("000123").to_string(), "123");
        assert_eq!(d("-000.500").to_string(), "-0.500");
        assert_eq!(d("+42").to_string(), "42");
    }

    #[test]
    fn parse_scientific() {
        assert_eq!(d("1e3").to_string(), "1000");
        assert_eq!(d("1.5e2").to_string(), "150");
        assert_eq!(d("1.5e-2").to_string(), "0.015");
        assert_eq!(d("-2E1").to_string(), "-20");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "abc", "1.2.3", "--5", "1e", "1e+", "."] {
            assert!(s.parse::<Decimal>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn negative_zero_is_zero() {
        let z = d("-0.000");
        assert!(z.is_zero());
        assert!(!z.is_negative());
        assert_eq!(z, d("0"));
    }

    #[test]
    fn addition() {
        assert_eq!(d("1.25").checked_add(&d("2.75")).unwrap().to_string(), "4.00");
        assert_eq!(d("-5").checked_add(&d("3")).unwrap().to_string(), "-2");
        assert_eq!(d("5").checked_add(&d("-5")).unwrap().to_string(), "0");
        assert_eq!(d("0.1").checked_add(&d("0.2")).unwrap().to_string(), "0.3");
    }

    #[test]
    fn subtraction() {
        assert_eq!(d("1").checked_sub(&d("0.001")).unwrap().to_string(), "0.999");
        assert_eq!(d("-1").checked_sub(&d("-1")).unwrap().to_string(), "0");
    }

    #[test]
    fn multiplication() {
        assert_eq!(d("12").checked_mul(&d("12")).unwrap().to_string(), "144");
        assert_eq!(d("-0.5").checked_mul(&d("0.5")).unwrap().to_string(), "-0.25");
        assert_eq!(d("0").checked_mul(&d("999")).unwrap().to_string(), "0");
    }

    #[test]
    fn division() {
        assert_eq!(d("1").checked_div(&d("4")).unwrap().to_string(), "0.2500");
        assert_eq!(d("10").checked_div(&d("3")).unwrap().to_string(), "3.3333");
        assert!(matches!(d("1").checked_div(&d("0")), Err(DecimalError::DivisionByZero)));
    }

    #[test]
    fn remainder_follows_dividend_sign() {
        assert_eq!(d("7").checked_rem(&d("3")).unwrap().to_string(), "1");
        assert_eq!(d("-7").checked_rem(&d("3")).unwrap().to_string(), "-1");
        assert_eq!(d("7.5").checked_rem(&d("2")).unwrap().to_string(), "1.5");
    }

    #[test]
    fn rounding() {
        assert_eq!(d("1.2345").round_to_scale(2).unwrap().to_string(), "1.23");
        assert_eq!(d("1.235").round_to_scale(2).unwrap().to_string(), "1.24");
        assert_eq!(d("-1.235").round_to_scale(2).unwrap().to_string(), "-1.24");
        assert_eq!(d("9.99").round_to_scale(1).unwrap().to_string(), "10.0");
        assert_eq!(d("1.2").round_to_scale(4).unwrap().to_string(), "1.2000");
    }

    #[test]
    fn truncation() {
        assert_eq!(d("1.999").truncate_to_scale(1).to_string(), "1.9");
        assert_eq!(d("-1.999").truncate_to_scale(0).to_string(), "-1");
        assert_eq!(d("0.001").truncate_to_scale(1).to_string(), "0.0");
    }

    #[test]
    fn comparison() {
        assert!(d("1.5") > d("1.4999"));
        assert!(d("-2") < d("-1"));
        assert_eq!(d("1.50"), d("1.5"));
        assert!(d("0") > d("-0.0001"));
    }

    #[test]
    fn digit_counting() {
        assert_eq!(d("123.45").total_digits(), 5);
        assert_eq!(d("123.45").integer_digits(), 3);
        assert_eq!(d("0.005").total_digits(), 3);
        assert_eq!(d("0.005").integer_digits(), 1);
    }

    #[test]
    fn overflow_at_max_digits() {
        let many = "9".repeat(MAX_DIGITS);
        assert!(many.parse::<Decimal>().is_ok());
        let too_many = "9".repeat(MAX_DIGITS + 1);
        assert!(matches!(too_many.parse::<Decimal>(), Err(DecimalError::Overflow)));
        // Multiplication that exceeds the cap must report overflow.
        let big = d(&"9".repeat(60));
        assert!(matches!(big.checked_mul(&big), Err(DecimalError::Overflow)));
    }

    #[test]
    fn conversions() {
        assert_eq!(d("42.9").to_i64().unwrap(), 42);
        assert_eq!(d("-42.9").to_i64().unwrap(), -42);
        assert!(d(&format!("{}", u64::MAX)).to_i64().is_err());
        assert!((d("1.5").to_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Decimal::from_f64(2.5).unwrap().to_string(), "2.5");
        assert!(Decimal::from_f64(f64::NAN).is_err());
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(d("0.00000001").to_scientific(2), "1e-8");
        assert_eq!(d("12345").to_scientific(3), "1.23e4");
        assert_eq!(d("-0.5").to_scientific(2), "-5e-1");
        assert_eq!(d("0").to_scientific(3), "0e0");
    }

    #[test]
    fn from_integers() {
        assert_eq!(Decimal::from_i64(i64::MIN).to_string(), i64::MIN.to_string());
        assert_eq!(Decimal::from_i64(0).to_string(), "0");
        assert_eq!(Decimal::from_i128(i128::MAX).to_string(), i128::MAX.to_string());
    }
}
