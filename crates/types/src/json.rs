//! A JSON value model with a depth-limited recursive-descent parser, a
//! serializer, and a JSON-path subset.
//!
//! PostgreSQL's CVE-2015-5289 — a stack overflow from `REPEAT('[', 1000)::json`
//! because `parse_array` recursed once per `[` — is the canonical nested-
//! function bug in the paper. This parser reproduces that code path: it is
//! recursive, and the recursion guard is an explicit, configurable limit so a
//! dialect can model the unguarded (buggy) behaviour as a detectable fault.

use std::fmt;
use std::fmt::Write as _;

/// Errors from JSON parsing and path evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Malformed JSON text.
    Syntax {
        /// What went wrong.
        message: String,
        /// Byte offset into the input.
        offset: usize,
    },
    /// Nesting exceeded the configured recursion limit.
    TooDeep {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A JSON path string was malformed.
    BadPath(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { message, offset } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            JsonError::TooDeep { limit } => {
                write!(f, "JSON nesting exceeds depth limit {limit}")
            }
            JsonError::BadPath(p) => write!(f, "invalid JSON path: {p}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
///
/// Numbers are stored as their source text to preserve arbitrary digit
/// counts, which matters for boundary-value analysis (e.g. MDEV-8407's
/// 48-digit decimal flowing through `COLUMN_JSON`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text.
    Number(String),
    /// A string (already unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The JSON type name, as `JSON_TYPE` would report it.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "NULL",
            JsonValue::Bool(_) => "BOOLEAN",
            JsonValue::Number(n) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    "DOUBLE"
                } else {
                    "INTEGER"
                }
            }
            JsonValue::String(_) => "STRING",
            JsonValue::Array(_) => "ARRAY",
            JsonValue::Object(_) => "OBJECT",
        }
    }

    /// Maximum nesting depth of this value (scalar = 1).
    pub fn depth(&self) -> usize {
        match self {
            JsonValue::Array(items) => 1 + items.iter().map(JsonValue::depth).max().unwrap_or(0),
            JsonValue::Object(fields) => {
                1 + fields.iter().map(|(_, v)| v.depth()).max().unwrap_or(0)
            }
            _ => 1,
        }
    }

    /// Number of elements for arrays/objects, 1 for scalars (MySQL
    /// `JSON_LENGTH` semantics).
    pub fn length(&self) -> usize {
        match self {
            JsonValue::Array(items) => items.len(),
            JsonValue::Object(fields) => fields.len(),
            _ => 1,
        }
    }

    /// Looks up an object key.
    pub fn get_key(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Looks up an array index.
    pub fn get_index(&self, idx: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// Evaluates a parsed path against this value.
    pub fn eval_path(&self, path: &JsonPath) -> Option<&JsonValue> {
        let mut cur = self;
        for leg in &path.legs {
            cur = match leg {
                PathLeg::Key(k) => cur.get_key(k)?,
                PathLeg::Index(i) => cur.get_index(*i)?,
            };
        }
        Some(cur)
    }

    /// Serialises to compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => out.push_str(n),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Default recursion limit, matching PostgreSQL's post-CVE-2015-5289 guard.
pub const DEFAULT_MAX_DEPTH: usize = 64;

/// Parses JSON text with the default depth limit.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    parse_with_depth(text, DEFAULT_MAX_DEPTH)
}

/// Parses JSON text, failing with [`JsonError::TooDeep`] past `max_depth`.
pub fn parse_with_depth(text: &str, max_depth: usize) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, max_depth };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Quick validity check (as `JSON_VALID` would perform).
pub fn is_valid(text: &str) -> bool {
    parse(text).is_ok()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError::Syntax { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth >= self.max_depth {
            return Err(JsonError::TooDeep { limit: self.max_depth });
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn keyword(&mut self, kw: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err("invalid keyword"))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("invalid number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("invalid number fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("invalid number exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        Ok(JsonValue::Number(text.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            let v = self.value(depth + 1)?;
            items.push(v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// One leg of a JSON path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathLeg {
    /// `.key` member access.
    Key(String),
    /// `[n]` array element access.
    Index(usize),
}

/// A parsed JSON path in the MySQL `$`-rooted dialect, e.g. `$.a[2].b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonPath {
    /// Access legs, applied left to right.
    pub legs: Vec<PathLeg>,
}

impl JsonPath {
    /// Parses a `$`-rooted path such as `$[2][1]` or `$.key.sub[0]`.
    pub fn parse(text: &str) -> Result<JsonPath, JsonError> {
        let bytes = text.trim().as_bytes();
        if bytes.first() != Some(&b'$') {
            return Err(JsonError::BadPath(text.to_string()));
        }
        let mut legs = Vec::new();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'.' => {
                    i += 1;
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'.' && bytes[i] != b'[' {
                        i += 1;
                    }
                    if start == i {
                        return Err(JsonError::BadPath(text.to_string()));
                    }
                    let key = std::str::from_utf8(&bytes[start..i])
                        .map_err(|_| JsonError::BadPath(text.to_string()))?;
                    legs.push(PathLeg::Key(key.to_string()));
                }
                b'[' => {
                    i += 1;
                    let start = i;
                    while i < bytes.len() && bytes[i] != b']' {
                        i += 1;
                    }
                    if i == bytes.len() {
                        return Err(JsonError::BadPath(text.to_string()));
                    }
                    let idx = std::str::from_utf8(&bytes[start..i])
                        .ok()
                        .and_then(|s| s.trim().parse::<usize>().ok())
                        .ok_or_else(|| JsonError::BadPath(text.to_string()))?;
                    legs.push(PathLeg::Index(idx));
                    i += 1; // consume ']'
                }
                _ => return Err(JsonError::BadPath(text.to_string())),
            }
        }
        Ok(JsonPath { legs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number("42".into()));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Number("-1.5e3".into()));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::String("hi".into()));
    }

    #[test]
    fn parse_structures() {
        let v = parse(r#"{"key": [1, 2, {"x": null}]}"#).unwrap();
        assert_eq!(v.type_name(), "OBJECT");
        // MySQL JSON_DEPTH semantics: scalars are depth 1, so
        // object -> array -> object -> null is depth 4.
        assert_eq!(v.depth(), 4);
        assert_eq!(v.get_key("key").unwrap().length(), 3);
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in ["", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"\\q\"", "[1] x", "nul"] {
            assert!(parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn depth_limit_models_cve_2015_5289() {
        // REPEAT('[', 1000)::json -- the guarded parser must reject, not crash.
        let deep = "[".repeat(1000);
        match parse(&deep) {
            Err(JsonError::TooDeep { limit }) => assert_eq!(limit, DEFAULT_MAX_DEPTH),
            other => panic!("expected TooDeep, got {other:?}"),
        }
        // A document exactly at the limit parses (if well-formed).
        let ok = format!("{}1{}", "[".repeat(63), "]".repeat(63));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\nb\t\"c\" A""#).unwrap();
        assert_eq!(v, JsonValue::String("a\nb\t\"c\" A".into()));
    }

    #[test]
    fn serialisation_roundtrip() {
        for s in [
            r#"{"a":[1,2,3],"b":"x"}"#,
            r#"[true,false,null]"#,
            r#""line\nbreak""#,
            "123456789012345678901234567890123456789012346789",
        ] {
            let v = parse(s).unwrap();
            let out = v.to_json_string();
            assert_eq!(parse(&out).unwrap(), v, "roundtrip of {s}");
        }
    }

    #[test]
    fn json_path() {
        let p = JsonPath::parse("$[2][1]").unwrap();
        assert_eq!(p.legs, vec![PathLeg::Index(2), PathLeg::Index(1)]);
        let p = JsonPath::parse("$.a.b[0]").unwrap();
        assert_eq!(
            p.legs,
            vec![PathLeg::Key("a".into()), PathLeg::Key("b".into()), PathLeg::Index(0)]
        );
        assert!(JsonPath::parse("a.b").is_err());
        assert!(JsonPath::parse("$[x]").is_err());
        assert!(JsonPath::parse("$.").is_err());
    }

    #[test]
    fn path_evaluation() {
        let v = parse(r#"{"a":[10,[20,30]]}"#).unwrap();
        let p = JsonPath::parse("$.a[1][0]").unwrap();
        assert_eq!(v.eval_path(&p), Some(&JsonValue::Number("20".into())));
        let missing = JsonPath::parse("$.a[9]").unwrap();
        assert_eq!(v.eval_path(&missing), None);
    }

    #[test]
    fn number_preserves_digits() {
        let fifty = "9".repeat(50);
        let v = parse(&fifty).unwrap();
        assert_eq!(v, JsonValue::Number(fifty.clone()));
        assert_eq!(v.to_json_string(), fifty);
    }
}
