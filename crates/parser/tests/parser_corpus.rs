//! A corpus of tricky statements: round-trip stability, operator binding,
//! and rejection of malformed input — the properties the generators depend
//! on when splicing mutated expressions back into statements.

use soft_parser::{parse_statement, Statement};

fn roundtrip(sql: &str) -> Statement {
    let s1 = parse_statement(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
    let printed = s1.to_string();
    let s2 =
        parse_statement(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
    assert_eq!(s1, s2, "{sql:?} via {printed:?}");
    s1
}

#[test]
fn operator_binding_corpus() {
    for (sql, canon) in [
        ("SELECT 1+2*3", "SELECT 1 + 2 * 3"),
        ("SELECT (1+2)*3", "SELECT (1 + 2) * 3"),
        ("SELECT 1-2-3", "SELECT 1 - 2 - 3"),
        ("SELECT -(1+2)", "SELECT -(1 + 2)"),
        ("SELECT NOT a AND b", "SELECT (NOT a) AND b"),
        ("SELECT a OR b AND c OR d", "SELECT a OR (b AND c) OR d"),
        ("SELECT a = b OR c = d", "SELECT (a = b) OR (c = d)"),
        ("SELECT 'a'||'b'||'c'", "SELECT 'a' || 'b' || 'c'"),
        ("SELECT a < b = c", "SELECT (a < b) = c"),
        ("SELECT - - 5", "SELECT --5"),
    ] {
        let stmt = roundtrip(sql);
        // Compare canonicalized forms modulo whitespace differences the
        // printer makes deterministic.
        let printed = stmt.to_string();
        let strip = |s: &str| s.replace([' ', '(', ')'], "");
        assert_eq!(strip(&printed), strip(canon), "{sql} printed as {printed}");
    }
}

#[test]
fn pathological_literal_corpus() {
    for sql in [
        // Digit monsters.
        &format!("SELECT {}", "9".repeat(500)),
        &format!("SELECT f(0.{})", "9".repeat(300)),
        &format!("SELECT f(-{}e-{})", "1".repeat(50), "2".repeat(3)),
        // String monsters.
        &format!("SELECT f('{}')", "x".repeat(10_000)),
        &format!("SELECT f('{}')", "''".repeat(500)),
        // Unicode in literals and nothing else.
        "SELECT f('héllo wörld — ✓')",
        "SELECT f('\u{1F4A3}')",
        // Mixed quotes.
        "SELECT f('it''s ''quoted''')",
    ] {
        roundtrip(sql);
    }
}

#[test]
fn clause_combination_corpus() {
    for sql in [
        "SELECT DISTINCT a, b FROM t WHERE a IN (1, 2) AND b NOT IN (3) GROUP BY a, b HAVING COUNT(*) BETWEEN 1 AND 9 ORDER BY a, b DESC LIMIT 7",
        "SELECT a FROM (SELECT a FROM (SELECT 1 AS a) x) y",
        "SELECT (SELECT (SELECT 1))",
        "SELECT 1 UNION SELECT 2 UNION ALL SELECT 3",
        "(SELECT 1 UNION SELECT 2) UNION SELECT 3",
        "SELECT CASE WHEN a THEN CASE WHEN b THEN 1 ELSE 2 END ELSE 3 END FROM t",
        "SELECT f(g(h('x')), [1, [2, [3]]], ROW(ROW(1)))",
        "SELECT CAST(CAST(1 AS TEXT) AS BINARY)",
        "SELECT '1'::INTEGER::TEXT",
        "SELECT a IS NULL AND b IS NOT NULL FROM t",
        "INSERT INTO t VALUES (1, 'a'), (NULL, ''), (-0.5, x'00')",
        "CREATE TABLE IF NOT EXISTS t2 (a DECIMAL(10,2) NOT NULL, b VARCHAR(255) NULL)",
    ] {
        roundtrip(sql);
    }
}

#[test]
fn rejection_corpus() {
    for sql in [
        "SELECT 1 1",
        "SELECT ,",
        "SELECT f(,)",
        "SELECT f(1,)",
        "SELECT 'abc",
        "SELECT \"abc",
        "SELECT 1 FROM",
        "SELECT 1 WHERE",
        "SELECT 1 GROUP BY",
        "SELECT 1 ORDER BY",
        "SELECT 1 LIMIT 'x'",
        "SELECT 1 UNION",
        "SELECT CAST(1)",
        "SELECT CAST(1 AS)",
        "SELECT 1::",
        "SELECT CASE WHEN 1 END",
        "SELECT BETWEEN 1 AND 2",
        "SELECT a NOT LIKE",
        "INSERT INTO VALUES (1)",
        "CREATE TABLE (a INT)",
        "DROP t",
        "SELECT [1, 2",
        "SELECT ROW(",
        "SELECT EXISTS 1",
        "SELECT INTERVAL 5",
    ] {
        assert!(parse_statement(sql).is_err(), "{sql:?} should be rejected");
    }
}

#[test]
fn keyword_case_and_spacing_insensitivity() {
    let variants = [
        "SELECT COUNT(*) FROM t WHERE a > 1",
        "select count(*) from t where a > 1",
        "SeLeCt CoUnT(*) FrOm t WhErE a > 1",
        "  SELECT\n\tCOUNT( * )\nFROM   t\nWHERE a>1  ",
    ];
    let parsed: Vec<Statement> = variants
        .iter()
        .map(|v| parse_statement(v).unwrap_or_else(|e| panic!("{v:?}: {e}")))
        .collect();
    // All variants parse to structurally equal statements, modulo the
    // preserved identifier spelling.
    for s in &parsed[1..] {
        assert_eq!(s.to_string().to_lowercase(), parsed[0].to_string().to_lowercase());
    }
}

#[test]
fn comments_are_transparent() {
    let a = parse_statement("SELECT /* mid */ 1 -- tail\n + 2").unwrap();
    let b = parse_statement("SELECT 1 + 2").unwrap();
    assert_eq!(a, b);
}

#[test]
fn deeply_nested_arrays_parse_within_guard() {
    let ok = format!("SELECT {}1{}", "[".repeat(60), "]".repeat(60));
    roundtrip(&ok);
    let too_deep = format!("SELECT {}1{}", "[".repeat(5000), "]".repeat(5000));
    assert!(parse_statement(&too_deep).is_err());
}
