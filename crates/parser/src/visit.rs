//! AST visitors and rewriting utilities.
//!
//! SOFT's pattern engine works by locating function expressions inside
//! statements and splicing mutated replacements back in (§7.1, "Pattern-Based
//! Generation"). These helpers provide that machinery: immutable walks for
//! collection and statistics, and mutable walks for in-place rewriting.

use crate::ast::*;

/// Calls `f` on every expression in the statement, pre-order.
pub fn visit_exprs<'a>(stmt: &'a Statement, f: &mut impl FnMut(&'a Expr)) {
    match stmt {
        Statement::Select(s) => visit_select(s, f),
        Statement::Insert(i) => {
            for row in &i.rows {
                for e in row {
                    visit_expr(e, f);
                }
            }
        }
        Statement::CreateTable(_) | Statement::DropTable { .. } => {}
    }
}

fn visit_select<'a>(stmt: &'a SelectStmt, f: &mut impl FnMut(&'a Expr)) {
    visit_body(&stmt.body, f);
    for o in &stmt.order_by {
        visit_expr(&o.expr, f);
    }
}

fn visit_body<'a>(body: &'a SelectBody, f: &mut impl FnMut(&'a Expr)) {
    match body {
        SelectBody::Query(q) => visit_query(q, f),
        SelectBody::Union { left, right, .. } => {
            visit_body(left, f);
            visit_body(right, f);
        }
    }
}

fn visit_query<'a>(q: &'a Query, f: &mut impl FnMut(&'a Expr)) {
    for item in &q.items {
        if let SelectItem::Expr { expr, .. } = item {
            visit_expr(expr, f);
        }
    }
    if let Some(TableRef::Subquery { query, .. }) = &q.from {
        visit_select(query, f);
    }
    if let Some(w) = &q.where_clause {
        visit_expr(w, f);
    }
    for g in &q.group_by {
        visit_expr(g, f);
    }
    if let Some(h) = &q.having {
        visit_expr(h, f);
    }
}

/// Calls `f` on `expr` and all sub-expressions, pre-order.
pub fn visit_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::Function(fx) => {
            for a in &fx.args {
                visit_expr(a, f);
            }
        }
        Expr::Cast { expr, .. } => visit_expr(expr, f),
        Expr::Case { operand, branches, else_expr } => {
            if let Some(op) = operand {
                visit_expr(op, f);
            }
            for (w, t) in branches {
                visit_expr(w, f);
                visit_expr(t, f);
            }
            if let Some(e) = else_expr {
                visit_expr(e, f);
            }
        }
        Expr::Unary { expr, .. } => visit_expr(expr, f),
        Expr::Binary { left, right, .. } => {
            visit_expr(left, f);
            visit_expr(right, f);
        }
        Expr::IsNull { expr, .. } => visit_expr(expr, f),
        Expr::InList { expr, list, .. } => {
            visit_expr(expr, f);
            for e in list {
                visit_expr(e, f);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            visit_expr(expr, f);
            visit_expr(low, f);
            visit_expr(high, f);
        }
        Expr::Row(items) | Expr::ArrayLiteral(items) => {
            for e in items {
                visit_expr(e, f);
            }
        }
        Expr::Subquery(q) | Expr::Exists(q) => visit_select(q, f),
        Expr::IntervalLiteral { quantity, .. } => visit_expr(quantity, f),
        Expr::Literal(_) | Expr::Column(_) | Expr::Star => {}
    }
}

/// Calls `f` on every expression in the statement, mutably, pre-order.
/// `f` may replace the node wholesale.
pub fn visit_exprs_mut(stmt: &mut Statement, f: &mut impl FnMut(&mut Expr)) {
    match stmt {
        Statement::Select(s) => visit_select_mut(s, f),
        Statement::Insert(i) => {
            for row in &mut i.rows {
                for e in row {
                    visit_expr_mut(e, f);
                }
            }
        }
        Statement::CreateTable(_) | Statement::DropTable { .. } => {}
    }
}

fn visit_select_mut(stmt: &mut SelectStmt, f: &mut impl FnMut(&mut Expr)) {
    visit_body_mut(&mut stmt.body, f);
    for o in &mut stmt.order_by {
        visit_expr_mut(&mut o.expr, f);
    }
}

fn visit_body_mut(body: &mut SelectBody, f: &mut impl FnMut(&mut Expr)) {
    match body {
        SelectBody::Query(q) => visit_query_mut(q, f),
        SelectBody::Union { left, right, .. } => {
            visit_body_mut(left, f);
            visit_body_mut(right, f);
        }
    }
}

fn visit_query_mut(q: &mut Query, f: &mut impl FnMut(&mut Expr)) {
    for item in &mut q.items {
        if let SelectItem::Expr { expr, .. } = item {
            visit_expr_mut(expr, f);
        }
    }
    if let Some(TableRef::Subquery { query, .. }) = &mut q.from {
        visit_select_mut(query, f);
    }
    if let Some(w) = &mut q.where_clause {
        visit_expr_mut(w, f);
    }
    for g in &mut q.group_by {
        visit_expr_mut(g, f);
    }
    if let Some(h) = &mut q.having {
        visit_expr_mut(h, f);
    }
}

/// Calls `f` on `expr` and all sub-expressions, mutably, pre-order.
pub fn visit_expr_mut(expr: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(expr);
    match expr {
        Expr::Function(fx) => {
            for a in &mut fx.args {
                visit_expr_mut(a, f);
            }
        }
        Expr::Cast { expr, .. } => visit_expr_mut(expr, f),
        Expr::Case { operand, branches, else_expr } => {
            if let Some(op) = operand {
                visit_expr_mut(op, f);
            }
            for (w, t) in branches {
                visit_expr_mut(w, f);
                visit_expr_mut(t, f);
            }
            if let Some(e) = else_expr {
                visit_expr_mut(e, f);
            }
        }
        Expr::Unary { expr, .. } => visit_expr_mut(expr, f),
        Expr::Binary { left, right, .. } => {
            visit_expr_mut(left, f);
            visit_expr_mut(right, f);
        }
        Expr::IsNull { expr, .. } => visit_expr_mut(expr, f),
        Expr::InList { expr, list, .. } => {
            visit_expr_mut(expr, f);
            for e in list {
                visit_expr_mut(e, f);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            visit_expr_mut(expr, f);
            visit_expr_mut(low, f);
            visit_expr_mut(high, f);
        }
        Expr::Row(items) | Expr::ArrayLiteral(items) => {
            for e in items {
                visit_expr_mut(e, f);
            }
        }
        Expr::Subquery(q) | Expr::Exists(q) => visit_select_mut(q, f),
        Expr::IntervalLiteral { quantity, .. } => visit_expr_mut(quantity, f),
        Expr::Literal(_) | Expr::Column(_) | Expr::Star => {}
    }
}

/// Collects clones of every function expression in the statement.
pub fn collect_function_exprs(stmt: &Statement) -> Vec<FunctionExpr> {
    let mut out = Vec::new();
    visit_exprs(stmt, &mut |e| {
        if let Expr::Function(fx) = e {
            out.push(fx.clone());
        }
    });
    out
}

/// Calls `f` with the as-written name of every function expression in the
/// statement (including inside subqueries), in visit order. Unlike
/// [`collect_function_exprs`] this clones nothing — it exists so statement
/// preparation can build its dispatch table without copying argument trees.
pub fn for_each_function_name(stmt: &Statement, mut f: impl FnMut(&str)) {
    visit_exprs(stmt, &mut |e| {
        if let Expr::Function(fx) = e {
            f(&fx.name);
        }
    });
}

/// Counts function expressions in the statement (the Table 2 metric).
pub fn count_function_exprs(stmt: &Statement) -> usize {
    let mut n = 0;
    visit_exprs(stmt, &mut |e| {
        if matches!(e, Expr::Function(_)) {
            n += 1;
        }
    });
    n
}

/// Maximum function-nesting depth of the statement (a bare call is 1,
/// `f(g(x))` is 2). Finding 3's "no more than two function expressions"
/// cap is enforced by the generator with this metric.
pub fn max_function_nesting(stmt: &Statement) -> usize {
    fn depth(expr: &Expr) -> usize {
        let inner = |items: &[Expr]| items.iter().map(depth).max().unwrap_or(0);
        match expr {
            Expr::Function(fx) => 1 + inner(&fx.args),
            Expr::Cast { expr, .. } | Expr::Unary { expr, .. } => depth(expr),
            Expr::Binary { left, right, .. } => depth(left).max(depth(right)),
            Expr::IsNull { expr, .. } => depth(expr),
            Expr::InList { expr, list, .. } => depth(expr).max(inner(list)),
            Expr::Between { expr, low, high, .. } => {
                depth(expr).max(depth(low)).max(depth(high))
            }
            Expr::Row(items) | Expr::ArrayLiteral(items) => inner(items),
            Expr::Case { operand, branches, else_expr } => {
                let mut d = operand.as_deref().map(depth).unwrap_or(0);
                for (w, t) in branches {
                    d = d.max(depth(w)).max(depth(t));
                }
                if let Some(e) = else_expr {
                    d = d.max(depth(e));
                }
                d
            }
            Expr::Subquery(q) | Expr::Exists(q) => {
                let mut d = 0;
                let mut stmt_depth = 0;
                crate::visit::visit_select(q, &mut |e| {
                    if matches!(e, Expr::Function(_)) {
                        // Rough: recompute on the subtree.
                        stmt_depth = stmt_depth.max(depth(e));
                    }
                });
                d = d.max(stmt_depth);
                d
            }
            Expr::IntervalLiteral { quantity, .. } => depth(quantity),
            Expr::Literal(_) | Expr::Column(_) | Expr::Star => 0,
        }
    }
    let mut best = 0;
    match stmt {
        Statement::Select(s) => {
            visit_select(s, &mut |e| {
                // Only measure from the top of each expression tree; pre-order
                // visits every node so taking the max over all is correct.
                best = best.max(depth(e));
            });
        }
        _ => {
            visit_exprs(stmt, &mut |e| {
                best = best.max(depth(e));
            });
        }
    }
    best
}

/// Replaces the `index`-th function expression (pre-order) with the result
/// of `f(original)`. Returns true if the index existed.
pub fn replace_function_expr(
    stmt: &mut Statement,
    index: usize,
    f: impl FnOnce(&FunctionExpr) -> Expr,
) -> bool {
    let mut seen = 0usize;
    let mut f = Some(f);
    let mut done = false;
    visit_exprs_mut(stmt, &mut |e| {
        if done {
            return;
        }
        if let Expr::Function(fx) = e {
            if seen == index {
                if let Some(f) = f.take() {
                    *e = f(fx);
                    done = true;
                }
            }
            seen += 1;
        }
    });
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    #[test]
    fn collect_functions() {
        let stmt =
            parse_statement("SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')").unwrap();
        let fns = collect_function_exprs(&stmt);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "JSON_LENGTH");
        assert_eq!(fns[1].name, "REPEAT");
    }

    #[test]
    fn count_functions_in_clauses() {
        let stmt = parse_statement(
            "SELECT f(a) FROM t WHERE g(b) > 0 GROUP BY h(c) HAVING COUNT(*) > i(1) ORDER BY j(d)",
        )
        .unwrap();
        assert_eq!(count_function_exprs(&stmt), 6);
    }

    #[test]
    fn nesting_depth() {
        let one = parse_statement("SELECT f(1)").unwrap();
        assert_eq!(max_function_nesting(&one), 1);
        let two = parse_statement("SELECT f(g(1))").unwrap();
        assert_eq!(max_function_nesting(&two), 2);
        let three = parse_statement("SELECT f(g(h(1)))").unwrap();
        assert_eq!(max_function_nesting(&three), 3);
        let sibling = parse_statement("SELECT f(g(1), h(2))").unwrap();
        assert_eq!(max_function_nesting(&sibling), 2);
        let none = parse_statement("SELECT 1 + 2").unwrap();
        assert_eq!(max_function_nesting(&none), 0);
    }

    #[test]
    fn replace_by_index() {
        let mut stmt = parse_statement("SELECT f(1), g(2)").unwrap();
        let ok = replace_function_expr(&mut stmt, 1, |orig| {
            assert_eq!(orig.name, "g");
            Expr::func("WRAPPED", vec![Expr::Function(orig.clone())])
        });
        assert!(ok);
        assert_eq!(stmt.to_string(), "SELECT f(1), WRAPPED(g(2))");
        // Out-of-range index leaves the statement untouched.
        let before = stmt.to_string();
        assert!(!replace_function_expr(&mut stmt, 9, |o| Expr::Function(o.clone())));
        assert_eq!(stmt.to_string(), before);
    }

    #[test]
    fn functions_inside_subqueries_are_visited() {
        let stmt =
            parse_statement("SELECT * FROM (SELECT IFNULL(CONVERT(NULL, UNSIGNED), NULL)) sq")
                .unwrap();
        let fns = collect_function_exprs(&stmt);
        // CONVERT parses as a cast, so only IFNULL is a function expression.
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "IFNULL");
    }
}
