//! SQL lexer, parser, AST and rewriting utilities for the SOFT reproduction.
//!
//! The grammar covers the SQL subset the paper's experiments exercise:
//! `SELECT` (with `DISTINCT`, `FROM`, `WHERE`, `GROUP BY`, `HAVING`,
//! `ORDER BY`, `LIMIT`, `UNION [ALL]`), `CREATE TABLE`, `INSERT`, `DROP
//! TABLE`, and an expression language with function calls (including `*`
//! arguments and aggregate `DISTINCT`), explicit casts in both `CAST(x AS t)`
//! and PostgreSQL `x::t` forms, `CASE`, `ROW(...)`, array literals, scalar
//! subqueries and interval literals.
//!
//! # Examples
//!
//! ```
//! use soft_parser::parse_statement;
//!
//! let stmt = parse_statement("SELECT REPEAT('[', 1000)::json").unwrap();
//! assert_eq!(stmt.to_string(), "SELECT REPEAT('[', 1000)::json");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod visit;

pub use ast::{Expr, FunctionExpr, Literal, Query, SelectBody, SelectItem, SelectStmt, Statement, TypeName};
pub use parser::{parse_expression, parse_script, parse_statement, ParseError};
